//! Int8 dot-product kernels behind the [`crate::simd`] dispatch layer.
//!
//! The quantized inference path stores weights as `i8` codes and quantizes
//! activations per call (`q = round(x / sx)` with `sx = max|x| / 127`), so
//! every kernel here multiplies two int8 operands and accumulates in `i32`.
//! Integer accumulation is *exact*: unlike the f32 kernels, every variant —
//! scalar at any unroll, AVX2 `maddubs`-style widening — returns the same
//! `i32` for the same inputs, so the bit-exactness contract of the f32
//! layer holds trivially (and more strongly) here. Dequantization happens
//! once, at the store site in the sparse kernels, never inside these.
//!
//! Overflow: a single `i8 × i8` product is at most `127 × 127 = 16129`, so
//! an `i32` accumulator absorbs over 130 000 terms before it could wrap.
//! The AVX2 path pairs products into `i16 × i16 → i32` lanes via
//! `_mm256_madd_epi16` after sign-extending both operands, which is exact
//! for the same reason (each madd term is at most `2 × 16129`).

use crate::simd::Variant;

/// Exact integer dot product `Σ a[i]·b[i]` with `i32` accumulation.
///
/// Every variant returns the same value; the variant only selects how much
/// instruction-level parallelism the loop exposes.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_i8_variant(v: Variant, a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8 length mismatch");
    match v {
        Variant::ScalarU1 | Variant::ScalarU4 | Variant::ScalarU8 => dot_i8_scalar(a, b),
        Variant::Vector => dot_i8_vector(a, b),
    }
}

/// [`dot_i8_variant`] at the policy-selected variant.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_variant(crate::simd::active_variant(), a, b)
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

fn dot_i8_vector(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::vector_available() {
            // Safety: vector_available() verified avx2 support at runtime.
            return unsafe { x86::dot_i8(a, b) };
        }
    }
    dot_i8_scalar(a, b)
}

/// Fused per-row BSPC int8 kernel: the row's values and gathered
/// activations are split into consecutive segments of `seg_lens[i]`
/// elements (one per column block), each segment gets an exact i32 dot,
/// and the result is `Σ_i scales[i] · (dot_i as f32)` accumulated in
/// segment order. One call replaces a dispatched [`dot_i8_variant`] per
/// block — at high compression the blocks are a handful of elements each,
/// so the per-call overhead used to dominate the actual multiplies.
///
/// Every variant returns the same value: the per-segment i32 dots are
/// exact regardless of vectorization, and the f32 combination happens in
/// the same segment order everywhere.
///
/// # Panics
///
/// Panics when `vals`/`gathered` differ in length, `seg_lens`/`scales`
/// differ in length, or the segment lengths do not sum to `vals.len()`.
pub fn row_block_dots_i8(
    v: Variant,
    vals: &[i8],
    gathered: &[i8],
    seg_lens: &[u32],
    scales: &[f32],
) -> f32 {
    assert_eq!(vals.len(), gathered.len(), "row_block_dots_i8 row length");
    assert_eq!(seg_lens.len(), scales.len(), "one scale per segment");
    assert_eq!(
        seg_lens.iter().map(|&l| l as usize).sum::<usize>(),
        vals.len(),
        "segment lengths cover the row"
    );
    match v {
        Variant::ScalarU1 | Variant::ScalarU4 | Variant::ScalarU8 => {
            row_block_dots_i8_scalar(vals, gathered, seg_lens, scales)
        }
        Variant::Vector => row_block_dots_i8_vector(vals, gathered, seg_lens, scales),
    }
}

fn row_block_dots_i8_scalar(vals: &[i8], gathered: &[i8], seg_lens: &[u32], scales: &[f32]) -> f32 {
    let mut acc_f = 0.0f32;
    let mut off = 0usize;
    for (&len, &scale) in seg_lens.iter().zip(scales) {
        let len = len as usize;
        if len > 0 {
            let acc = dot_i8_scalar(&vals[off..off + len], &gathered[off..off + len]);
            acc_f += acc as f32 * scale;
        }
        off += len;
    }
    acc_f
}

fn row_block_dots_i8_vector(vals: &[i8], gathered: &[i8], seg_lens: &[u32], scales: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::vector_available() {
            // Safety: vector_available() verified avx2 support at runtime.
            return unsafe { x86::row_block_dots_i8(vals, gathered, seg_lens, scales) };
        }
    }
    row_block_dots_i8_scalar(vals, gathered, seg_lens, scales)
}

/// Four-row [`row_block_dots_i8`]: the rows share one gathered activation
/// vector (BSP rows of the same stripe read the same kept columns), so the
/// vector path loads and widens each activation segment once and runs four
/// madds against it — the register-blocking that makes the int8 SpMV
/// faster than f32 even when blocks shrink to a dozen values. Exactness is
/// per row, identical to four single-row calls on every variant.
///
/// # Panics
///
/// Panics when any row's length differs from `gathered.len()`, when
/// `seg_lens`/`scales` differ in length, or when the segment lengths do
/// not sum to the row length.
pub fn row_quad_block_dots_i8(
    v: Variant,
    rows: [&[i8]; 4],
    gathered: &[i8],
    seg_lens: &[u32],
    scales: &[f32],
) -> [f32; 4] {
    for r in rows {
        assert_eq!(r.len(), gathered.len(), "row_quad_block_dots_i8 row length");
    }
    assert_eq!(seg_lens.len(), scales.len(), "one scale per segment");
    assert_eq!(
        seg_lens.iter().map(|&l| l as usize).sum::<usize>(),
        gathered.len(),
        "segment lengths cover the row"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if v == Variant::Vector && crate::simd::vector_available() {
            // Safety: vector_available() verified avx2 support at runtime.
            return unsafe { x86::row_quad_block_dots_i8(rows, gathered, seg_lens, scales) };
        }
    }
    let _ = v;
    rows.map(|r| row_block_dots_i8_scalar(r, gathered, seg_lens, scales))
}

/// Exact integer indexed dot `Σ vals[k]·x[idx[k]]` (the CSR/BSPC row shape).
///
/// The gather is scalar on every variant — integer accumulation is
/// order-insensitive, so there is nothing to keep bit-compatible and the
/// gather latency dominates any SIMD multiply.
///
/// # Panics
///
/// Panics if `vals` and `idx` differ in length or an index is out of range.
pub fn indexed_dot_i8_variant(_v: Variant, vals: &[i8], idx: &[u32], x: &[i8]) -> i32 {
    assert_eq!(vals.len(), idx.len(), "indexed_dot_i8 length mismatch");
    let mut acc = 0i32;
    for (&q, &i) in vals.iter().zip(idx) {
        acc += q as i32 * x[i as usize] as i32;
    }
    acc
}

/// Batched exact integer dot: `out[j] += Σ_k a[k]·xs[k·b + j]` for each of
/// the `b` lane-major columns of `xs`. Callers zero or seed `out`.
///
/// Dispatches on the process-global SIMD policy; every variant produces
/// the same `i32` lane sums (integer accumulation is exact and
/// order-insensitive), so this never affects any bit-exactness contract.
///
/// # Panics
///
/// Panics when `xs` is not `[a.len() × b]` or `out` is not `b` long.
pub fn dot_batch_i8_accumulate(a: &[i8], xs: &[i8], b: usize, out: &mut [i32]) {
    assert_eq!(out.len(), b, "dot_batch_i8 output length");
    assert_eq!(xs.len(), a.len() * b, "dot_batch_i8 input plane");
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::active_variant() == Variant::Vector
            && crate::simd::vector_available()
            && b >= 8
        {
            // Safety: vector_available() verified avx2 support at runtime.
            unsafe { x86::dot_batch_i8_accumulate(a, xs, b, out) };
            return;
        }
    }
    dot_batch_i8_scalar(a, xs, b, out);
}

fn dot_batch_i8_scalar(a: &[i8], xs: &[i8], b: usize, out: &mut [i32]) {
    for (k, &w) in a.iter().enumerate() {
        let w = w as i32;
        let lanes = &xs[k * b..(k + 1) * b];
        for (o, &x) in out.iter_mut().zip(lanes) {
            *o += w * x as i32;
        }
    }
}

/// Fused per-row *batched* int8 kernel — the lane-major register tile.
///
/// `gathered` is the row's activation plane, lane-major (`[len × b]` with
/// element `k` of lane `j` at `gathered[k·b + j]`), split into consecutive
/// segments of `seg_lens[i]` elements (one per column block). For every
/// lane `j`:
///
/// ```text
/// out[j] = sxs[j] · Σ_i scales[i] · (Σ_k vals[k]·gathered[k·b + j] over segment i)
/// ```
///
/// accumulated in segment order with empty segments skipped — exactly the
/// value the serial int8 SpMV produces for lane `j`'s column, so the
/// batched engines inherit the serial≡batched bit-exactness contract from
/// this one call.
///
/// This replaces the old three-pass shape (zero an `i32` scratch row, run
/// [`dot_batch_i8_accumulate`] through memory, fold a `partial` array per
/// block): lanes are processed in tiles of 8, the integer accumulator and
/// the f32 partial both live in registers for the whole row, and the
/// per-block scale fold touches memory once per row instead of once per
/// block. Every variant returns the same bits (exact i32 dots; identical
/// f32 combination order).
///
/// # Panics
///
/// Panics when `gathered` is not `[vals.len() × b]`, `seg_lens`/`scales`
/// differ in length, the segment lengths do not sum to `vals.len()`, or
/// `sxs`/`out` are not `b` long.
#[allow(clippy::too_many_arguments)]
pub fn row_block_dots_batch_i8(
    v: Variant,
    vals: &[i8],
    gathered: &[i8],
    b: usize,
    seg_lens: &[u32],
    scales: &[f32],
    sxs: &[f32],
    out: &mut [f32],
) {
    assert_eq!(gathered.len(), vals.len() * b, "lane-major plane shape");
    assert_eq!(seg_lens.len(), scales.len(), "one scale per segment");
    assert_eq!(
        seg_lens.iter().map(|&l| l as usize).sum::<usize>(),
        vals.len(),
        "segment lengths cover the row"
    );
    assert_eq!(sxs.len(), b, "one activation scale per lane");
    assert_eq!(out.len(), b, "one output per lane");
    #[cfg(target_arch = "x86_64")]
    {
        if v == Variant::Vector && crate::simd::vector_available() && b >= 8 {
            // Safety: vector_available() verified avx2 support at runtime.
            unsafe { x86::row_block_dots_batch_i8(vals, gathered, b, seg_lens, scales, sxs, out) };
            return;
        }
    }
    let _ = v;
    row_block_dots_batch_i8_scalar(vals, gathered, b, seg_lens, scales, sxs, out, 0);
}

/// Four-row [`row_block_dots_batch_i8`]: the rows share one lane-major
/// gathered activation plane (BSP rows of the same stripe read the same
/// kept columns), so the vector path widens and pair-interleaves each
/// 8-lane activation step once and runs one `madd` per row against it —
/// two stored elements per instruction, the same element-pairing that
/// makes the serial int8 SpMV faster than f32. `out` is row-major
/// `[4 × b]`: row `i`, lane `j` at `out[i·b + j]`. Exactness is per
/// (row, lane), identical to four single-row calls on every variant.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`row_block_dots_batch_i8`],
/// checked against every row, with `out` expected to be `4·b` long.
#[allow(clippy::too_many_arguments)]
pub fn row_quad_block_dots_batch_i8(
    v: Variant,
    rows: [&[i8]; 4],
    gathered: &[i8],
    b: usize,
    seg_lens: &[u32],
    scales: &[f32],
    sxs: &[f32],
    out: &mut [f32],
) {
    for r in rows {
        assert_eq!(gathered.len(), r.len() * b, "lane-major plane shape");
    }
    assert_eq!(seg_lens.len(), scales.len(), "one scale per segment");
    assert_eq!(
        seg_lens.iter().map(|&l| l as usize).sum::<usize>() * b,
        gathered.len(),
        "segment lengths cover the row"
    );
    assert_eq!(sxs.len(), b, "one activation scale per lane");
    assert_eq!(out.len(), 4 * b, "one output per row per lane");
    #[cfg(target_arch = "x86_64")]
    {
        if v == Variant::Vector && crate::simd::vector_available() && b >= 8 {
            // Safety: vector_available() verified avx2 support at runtime.
            unsafe {
                x86::row_quad_block_dots_batch_i8(rows, gathered, b, seg_lens, scales, sxs, out)
            };
            return;
        }
    }
    let _ = v;
    for (i, r) in rows.into_iter().enumerate() {
        row_block_dots_batch_i8_scalar(
            r,
            gathered,
            b,
            seg_lens,
            scales,
            sxs,
            &mut out[i * b..(i + 1) * b],
            0,
        );
    }
}

/// Scalar lane-tile realization of [`row_block_dots_batch_i8`] covering
/// lanes `j0..b`; the AVX2 path reuses it for the sub-8 lane tail so both
/// paths fold scales in the same order.
#[allow(clippy::too_many_arguments)]
fn row_block_dots_batch_i8_scalar(
    vals: &[i8],
    gathered: &[i8],
    b: usize,
    seg_lens: &[u32],
    scales: &[f32],
    sxs: &[f32],
    out: &mut [f32],
    j0: usize,
) {
    let mut j0 = j0;
    while j0 < b {
        let t = (b - j0).min(8);
        let mut partial = [0.0f32; 8];
        let mut off = 0usize;
        for (&len, &scale) in seg_lens.iter().zip(scales) {
            let len = len as usize;
            if len > 0 {
                let mut acc = [0i32; 8];
                for k in off..off + len {
                    let w = vals[k] as i32;
                    let lanes = &gathered[k * b + j0..k * b + j0 + t];
                    for (a, &x) in acc[..t].iter_mut().zip(lanes) {
                        *a += w * x as i32;
                    }
                }
                for (p, &a) in partial[..t].iter_mut().zip(&acc[..t]) {
                    *p += a as f32 * scale;
                }
            }
            off += len;
        }
        for i in 0..t {
            out[j0 + i] = sxs[j0 + i] * partial[i];
        }
        j0 += t;
    }
}

/// Quantizes activations symmetrically: `sx = max|x| / 127`,
/// `q = round(x / sx)` clamped to `[-127, 127]`, written into `out`
/// (resized to `x.len()`). Returns the scale `sx`.
///
/// An all-zero (or empty) input gets scale 1.0 and all-zero codes. Non-finite
/// inputs saturate to ±127 like any other out-of-range value, so a NaN/Inf
/// activation cannot poison the integer kernels (the health layer still sees
/// the fault in the f32 buffers it scans).
pub fn quantize_activations(x: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = x.iter().fold(
        0.0f32,
        |m, v| {
            if v.is_finite() {
                m.max(v.abs())
            } else {
                m
            }
        },
    );
    let sx = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    out.clear();
    out.extend(x.iter().map(|&v| {
        let q = (v / sx).round();
        if q.is_nan() {
            0
        } else {
            q.clamp(-127.0, 127.0) as i8
        }
    }));
    sx
}

/// Per-lane [`quantize_activations`] over a lane-major `[rows × b]` plane:
/// lane `j`'s scale is computed from column `j` alone, so lane `j`'s codes
/// are identical to a serial [`quantize_activations`] of that column — the
/// batched int8 kernels inherit the serial-vs-batched bit-exactness
/// contract from this.
///
/// `scales` is resized to `b`, `out` to `xs.len()`.
///
/// # Panics
///
/// Panics when `xs.len()` is not a multiple of `b` (with `b > 0`).
pub fn quantize_activations_lanes(xs: &[f32], b: usize, out: &mut Vec<i8>, scales: &mut Vec<f32>) {
    assert!(
        b > 0 && xs.len().is_multiple_of(b),
        "lane-major plane shape"
    );
    let rows = xs.len() / b;
    scales.clear();
    scales.resize(b, 1.0);
    for (j, s) in scales.iter_mut().enumerate() {
        let mut max_abs = 0.0f32;
        for r in 0..rows {
            let v = xs[r * b + j];
            if v.is_finite() {
                max_abs = max_abs.max(v.abs());
            }
        }
        if max_abs > 0.0 {
            *s = max_abs / 127.0;
        }
    }
    out.clear();
    out.resize(xs.len(), 0);
    for r in 0..rows {
        for j in 0..b {
            let v = xs[r * b + j];
            let q = (v / scales[j]).round();
            out[r * b + j] = if q.is_nan() {
                0
            } else {
                q.clamp(-127.0, 127.0) as i8
            };
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// AVX2 int8 dot: 16 products per step through sign-extend to i16 and
    /// `_mm256_madd_epi16` (the signed sibling of the `maddubs` idiom),
    /// accumulated in eight i32 lanes. Exact — integer adds commute.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut k = 0usize;
        while k + 16 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(k) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(k) as *const __m128i);
            let wa = _mm256_cvtepi8_epi16(va);
            let wb = _mm256_cvtepi8_epi16(vb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
            k += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total: i32 = lanes.iter().sum();
        while k < n {
            total += *a.get_unchecked(k) as i32 * *b.get_unchecked(k) as i32;
            k += 1;
        }
        total
    }

    /// One i32 dot of `a[off..off+len]`·`b[off..off+len]` with 16-wide,
    /// 8-wide, 4-wide and scalar steps. Exact — integer adds commute. The
    /// short-segment path matters: at 10× compression a BSP block holds a
    /// dozen-odd values, so the 256-bit reduction is skipped entirely and
    /// the tail runs through one zero-extended 4-wide madd instead of four
    /// scalar multiplies.
    #[target_feature(enable = "avx2")]
    unsafe fn segment_dot(a: &[i8], b: &[i8], off: usize, len: usize) -> i32 {
        let mut k = off;
        let end = off + len;
        let mut acc128 = _mm_setzero_si128();
        if len >= 16 {
            let mut acc = _mm256_setzero_si256();
            while k + 16 <= end {
                let va = _mm_loadu_si128(a.as_ptr().add(k) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(k) as *const __m128i);
                acc = _mm256_add_epi32(
                    acc,
                    _mm256_madd_epi16(_mm256_cvtepi8_epi16(va), _mm256_cvtepi8_epi16(vb)),
                );
                k += 16;
            }
            acc128 = _mm_add_epi32(
                _mm256_castsi256_si128(acc),
                _mm256_extracti128_si256(acc, 1),
            );
        }
        if k + 8 <= end {
            let va = _mm_loadl_epi64(a.as_ptr().add(k) as *const __m128i);
            let vb = _mm_loadl_epi64(b.as_ptr().add(k) as *const __m128i);
            acc128 = _mm_add_epi32(
                acc128,
                _mm_madd_epi16(_mm_cvtepi8_epi16(va), _mm_cvtepi8_epi16(vb)),
            );
            k += 8;
        }
        if k + 4 <= end {
            // 4 bytes zero-extended into the low lanes; the upper i16
            // lanes are zero so they contribute nothing to the madd.
            let la = (a.as_ptr().add(k) as *const i32).read_unaligned();
            let lb = (b.as_ptr().add(k) as *const i32).read_unaligned();
            acc128 = _mm_add_epi32(
                acc128,
                _mm_madd_epi16(
                    _mm_cvtepi8_epi16(_mm_cvtsi32_si128(la)),
                    _mm_cvtepi8_epi16(_mm_cvtsi32_si128(lb)),
                ),
            );
            k += 4;
        }
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc128);
        let mut total: i32 = lanes.iter().sum();
        while k < end {
            total += *a.get_unchecked(k) as i32 * *b.get_unchecked(k) as i32;
            k += 1;
        }
        total
    }

    /// AVX2 fused per-row block dots (see the dispatching wrapper for the
    /// contract). One `#[target_feature]` entry for the whole row keeps the
    /// per-segment cost at a few instructions even when high compression
    /// shrinks each block to a handful of elements.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_block_dots_i8(
        vals: &[i8],
        gathered: &[i8],
        seg_lens: &[u32],
        scales: &[f32],
    ) -> f32 {
        let mut acc_f = 0.0f32;
        let mut off = 0usize;
        for (&len, &scale) in seg_lens.iter().zip(scales) {
            let len = len as usize;
            if len > 0 {
                acc_f += segment_dot(vals, gathered, off, len) as f32 * scale;
            }
            off += len;
        }
        acc_f
    }

    /// Shared-activation four-row segment dot: widens each `b` step once
    /// and runs four madds against it. Per-row sums are identical to four
    /// [`segment_dot`] calls (integer adds commute).
    #[target_feature(enable = "avx2")]
    unsafe fn segment_dot4(rows: [&[i8]; 4], b: &[i8], off: usize, len: usize) -> [i32; 4] {
        let mut k = off;
        let end = off + len;
        let mut acc128 = [_mm_setzero_si128(); 4];
        if len >= 16 {
            let mut acc = [_mm256_setzero_si256(); 4];
            while k + 16 <= end {
                let wb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(k) as *const __m128i));
                for (a, r) in acc.iter_mut().zip(rows) {
                    let wa =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(r.as_ptr().add(k) as *const __m128i));
                    *a = _mm256_add_epi32(*a, _mm256_madd_epi16(wa, wb));
                }
                k += 16;
            }
            for (n, a) in acc128.iter_mut().zip(acc) {
                *n = _mm_add_epi32(_mm256_castsi256_si128(a), _mm256_extracti128_si256(a, 1));
            }
        }
        if k + 8 <= end {
            let wb = _mm_cvtepi8_epi16(_mm_loadl_epi64(b.as_ptr().add(k) as *const __m128i));
            for (a, r) in acc128.iter_mut().zip(rows) {
                let wa = _mm_cvtepi8_epi16(_mm_loadl_epi64(r.as_ptr().add(k) as *const __m128i));
                *a = _mm_add_epi32(*a, _mm_madd_epi16(wa, wb));
            }
            k += 8;
        }
        if k + 4 <= end {
            let lb = (b.as_ptr().add(k) as *const i32).read_unaligned();
            let wb = _mm_cvtepi8_epi16(_mm_cvtsi32_si128(lb));
            for (a, r) in acc128.iter_mut().zip(rows) {
                let la = (r.as_ptr().add(k) as *const i32).read_unaligned();
                *a = _mm_add_epi32(
                    *a,
                    _mm_madd_epi16(_mm_cvtepi8_epi16(_mm_cvtsi32_si128(la)), wb),
                );
            }
            k += 4;
        }
        let mut out = [0i32; 4];
        for (o, a) in out.iter_mut().zip(acc128) {
            let mut lanes = [0i32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, a);
            *o = lanes.iter().sum();
        }
        while k < end {
            let xb = *b.get_unchecked(k) as i32;
            for (o, r) in out.iter_mut().zip(rows) {
                *o += *r.get_unchecked(k) as i32 * xb;
            }
            k += 1;
        }
        out
    }

    /// AVX2 four-row fused block dots (see the dispatching wrapper for the
    /// contract).
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_quad_block_dots_i8(
        rows: [&[i8]; 4],
        gathered: &[i8],
        seg_lens: &[u32],
        scales: &[f32],
    ) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        let mut off = 0usize;
        for (&len, &scale) in seg_lens.iter().zip(scales) {
            let len = len as usize;
            if len > 0 {
                let d = segment_dot4(rows, gathered, off, len);
                for (o, di) in out.iter_mut().zip(d) {
                    *o += di as f32 * scale;
                }
            }
            off += len;
        }
        out
    }

    /// AVX2 lane-major register tile (see the dispatching wrapper for the
    /// contract). Eight lanes per tile: the i32 accumulator is zeroed per
    /// segment and the f32 partial per row, both staying in ymm registers —
    /// the output is touched exactly once per row per lane, versus the old
    /// load/store round trip per stored element the memory-bound
    /// [`dot_batch_i8_accumulate`] shape paid.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn row_block_dots_batch_i8(
        vals: &[i8],
        gathered: &[i8],
        b: usize,
        seg_lens: &[u32],
        scales: &[f32],
        sxs: &[f32],
        out: &mut [f32],
    ) {
        let tiles = b / 8 * 8;
        let mut j0 = 0usize;
        while j0 < tiles {
            let mut partial = _mm256_setzero_ps();
            let mut off = 0usize;
            for (&len, &scale) in seg_lens.iter().zip(scales) {
                let len = len as usize;
                if len > 0 {
                    let mut acc = _mm256_setzero_si256();
                    for k in off..off + len {
                        let w = _mm256_set1_epi32(*vals.get_unchecked(k) as i32);
                        let x = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                            gathered.as_ptr().add(k * b + j0) as *const __m128i,
                        ));
                        acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(w, x));
                    }
                    partial = _mm256_add_ps(
                        partial,
                        _mm256_mul_ps(_mm256_cvtepi32_ps(acc), _mm256_set1_ps(scale)),
                    );
                }
                off += len;
            }
            let s = _mm256_loadu_ps(sxs.as_ptr().add(j0));
            _mm256_storeu_ps(out.as_mut_ptr().add(j0), _mm256_mul_ps(s, partial));
            j0 += 8;
        }
        if j0 < b {
            super::row_block_dots_batch_i8_scalar(
                vals, gathered, b, seg_lens, scales, sxs, out, j0,
            );
        }
    }

    /// AVX2 four-row lane-major register tile (see the dispatching wrapper
    /// for the contract). Per 8-lane tile the segment loop walks stored
    /// elements in *pairs*: the two elements' activation bytes are widened
    /// to i16 and interleaved once (`(x_k, x_{k+1})` adjacent per lane),
    /// then each row contributes one `_mm256_madd_epi16` against its
    /// broadcast `(w_k, w_{k+1})` word — two multiplies per instruction,
    /// with the activation prep shared by all four value streams. Exact:
    /// each madd lane is `w_k·x_k + w_{k+1}·x_{k+1}` in i32 (|terms| ≤
    /// 2·16129), and integer adds commute.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn row_quad_block_dots_batch_i8(
        rows: [&[i8]; 4],
        gathered: &[i8],
        b: usize,
        seg_lens: &[u32],
        scales: &[f32],
        sxs: &[f32],
        out: &mut [f32],
    ) {
        let tiles = b / 8 * 8;
        let n = rows[0].len();
        let gp = gathered.as_ptr();
        let mut j0 = 0usize;
        while j0 < tiles {
            let mut partial = [_mm256_setzero_ps(); 4];
            let mut off = 0usize;
            for (&len, &scale) in seg_lens.iter().zip(scales) {
                let len = len as usize;
                if len > 0 {
                    let mut acc = [_mm256_setzero_si256(); 4];
                    let end = off + len;
                    let mut k = off;
                    // Interleave two elements' lane bytes, then one widen:
                    // 16-bit pair 2j/2j+1 holds (x_k[j], x_{k+1}[j]) — two
                    // shuffle uops of activation prep per pair, shared by
                    // all four value streams.
                    let pair_x = |k: usize| {
                        let xa = _mm_loadl_epi64(gp.add(k * b + j0) as *const __m128i);
                        let xb = _mm_loadl_epi64(gp.add((k + 1) * b + j0) as *const __m128i);
                        _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(xa, xb))
                    };
                    // Eight elements (four pairs) at a time: each row's
                    // eight weight bytes widen to four i16 pair-words with
                    // one load + one shuffle, and each pair-word broadcasts
                    // with a single vpshufd — no scalar pair assembly on
                    // the hot path.
                    while k + 8 <= end {
                        let x0 = pair_x(k);
                        let x1 = pair_x(k + 2);
                        let x2 = pair_x(k + 4);
                        let x3 = pair_x(k + 6);
                        for (a, r) in acc.iter_mut().zip(rows) {
                            let wq = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                                r.as_ptr().add(k) as *const __m128i
                            ));
                            let wy = _mm256_inserti128_si256(_mm256_castsi128_si256(wq), wq, 1);
                            let t0 = _mm256_madd_epi16(x0, _mm256_shuffle_epi32(wy, 0b0000_0000));
                            let t1 = _mm256_madd_epi16(x1, _mm256_shuffle_epi32(wy, 0b0101_0101));
                            let t2 = _mm256_madd_epi16(x2, _mm256_shuffle_epi32(wy, 0b1010_1010));
                            let t3 = _mm256_madd_epi16(x3, _mm256_shuffle_epi32(wy, 0b1111_1111));
                            let t = _mm256_add_epi32(
                                _mm256_add_epi32(t0, t1),
                                _mm256_add_epi32(t2, t3),
                            );
                            *a = _mm256_add_epi32(*a, t);
                        }
                        k += 8;
                    }
                    while k + 2 <= end {
                        let x = pair_x(k);
                        for (a, r) in acc.iter_mut().zip(rows) {
                            let w0 = *r.get_unchecked(k) as i16 as u16 as u32;
                            let w1 = *r.get_unchecked(k + 1) as i16 as u16 as u32;
                            let w = _mm256_set1_epi32((w0 | (w1 << 16)) as i32);
                            *a = _mm256_add_epi32(*a, _mm256_madd_epi16(x, w));
                        }
                        k += 2;
                    }
                    if k < end {
                        if k + 1 < n {
                            // Zero-padded pair: the partner element belongs
                            // to the next segment (or is garbage within
                            // bounds) but its weight is 0, so the madd term
                            // is exactly w_k·x_k.
                            let xa = _mm_loadl_epi64(gp.add(k * b + j0) as *const __m128i);
                            let xb = _mm_loadl_epi64(gp.add((k + 1) * b + j0) as *const __m128i);
                            let x = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(xa, xb));
                            for (a, r) in acc.iter_mut().zip(rows) {
                                let w0 = *r.get_unchecked(k) as i16 as u16 as u32;
                                let w = _mm256_set1_epi32(w0 as i32);
                                *a = _mm256_add_epi32(*a, _mm256_madd_epi16(x, w));
                            }
                        } else {
                            let x = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                                gp.add(k * b + j0) as *const __m128i
                            ));
                            for (a, r) in acc.iter_mut().zip(rows) {
                                let w = _mm256_set1_epi32(*r.get_unchecked(k) as i32);
                                *a = _mm256_add_epi32(*a, _mm256_mullo_epi32(w, x));
                            }
                        }
                    }
                    let sv = _mm256_set1_ps(scale);
                    for (p, a) in partial.iter_mut().zip(acc) {
                        *p = _mm256_add_ps(*p, _mm256_mul_ps(_mm256_cvtepi32_ps(a), sv));
                    }
                }
                off += len;
            }
            let s = _mm256_loadu_ps(sxs.as_ptr().add(j0));
            for (i, p) in partial.into_iter().enumerate() {
                _mm256_storeu_ps(out.as_mut_ptr().add(i * b + j0), _mm256_mul_ps(s, p));
            }
            j0 += 8;
        }
        if j0 < b {
            for (i, r) in rows.into_iter().enumerate() {
                super::row_block_dots_batch_i8_scalar(
                    r,
                    gathered,
                    b,
                    seg_lens,
                    scales,
                    sxs,
                    &mut out[i * b..(i + 1) * b],
                    j0,
                );
            }
        }
    }

    /// AVX2 batched int8 accumulate: 8 i32 lanes per step; the weight is
    /// broadcast and widened once per element. Exact (`|w·x| ≤ 16129`
    /// fits i32, `_mm256_mullo_epi32` is a full 32-bit multiply).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_batch_i8_accumulate(a: &[i8], xs: &[i8], b: usize, out: &mut [i32]) {
        let chunks = b / 8 * 8;
        for (k, &w) in a.iter().enumerate() {
            let wv = _mm256_set1_epi32(w as i32);
            let lanes = xs.as_ptr().add(k * b);
            let mut j = 0usize;
            while j < chunks {
                let x = _mm256_cvtepi8_epi32(_mm_loadl_epi64(lanes.add(j) as *const __m128i));
                let o = out.as_mut_ptr().add(j) as *mut __m256i;
                _mm256_storeu_si256(
                    o,
                    _mm256_add_epi32(_mm256_loadu_si256(o), _mm256_mullo_epi32(wv, x)),
                );
                j += 8;
            }
            while j < b {
                *out.get_unchecked_mut(j) += w as i32 * *lanes.add(j) as i32;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::Variant;

    fn codes(n: usize, seed: i32) -> Vec<i8> {
        (0..n)
            .map(|i| (((i as i32 * 37 + seed * 101) % 255) - 127) as i8)
            .collect()
    }

    #[test]
    fn all_variants_agree_exactly() {
        for n in [0usize, 1, 7, 15, 16, 17, 33, 100, 257] {
            let a = codes(n, 1);
            let b = codes(n, 2);
            let reference = dot_i8_variant(Variant::ScalarU1, &a, &b);
            for v in Variant::ALL {
                assert_eq!(dot_i8_variant(v, &a, &b), reference, "n={n} {v:?}");
            }
        }
    }

    #[test]
    fn extreme_codes_do_not_overflow() {
        // 4096 maxed-out products: 4096 * 16129 ≈ 6.6e7, far inside i32.
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        let want = -(127i32 * 127) * 4096;
        for v in Variant::ALL {
            assert_eq!(dot_i8_variant(v, &a, &b), want, "{v:?}");
        }
    }

    #[test]
    fn indexed_matches_gathered_dense() {
        let vals = codes(50, 3);
        let x = codes(80, 4);
        let idx: Vec<u32> = (0..50).map(|i| ((i * 13) % 80) as u32).collect();
        let gathered: Vec<i8> = idx.iter().map(|&i| x[i as usize]).collect();
        for v in Variant::ALL {
            assert_eq!(
                indexed_dot_i8_variant(v, &vals, &idx, &x),
                dot_i8_variant(v, &vals, &gathered),
                "{v:?}"
            );
        }
    }

    #[test]
    fn row_block_dots_matches_per_block_reference() {
        // Segment lengths straddle every SIMD step width (16, 8, tails).
        let seg_lens: Vec<u32> = vec![0, 3, 16, 13, 8, 1, 40, 0, 25];
        let n: usize = seg_lens.iter().map(|&l| l as usize).sum();
        let vals = codes(n, 7);
        let gathered = codes(n, 8);
        let scales: Vec<f32> = (0..seg_lens.len())
            .map(|i| 0.01 + 0.003 * i as f32)
            .collect();
        let mut want = 0.0f32;
        let mut off = 0usize;
        for (&len, &scale) in seg_lens.iter().zip(&scales) {
            let len = len as usize;
            if len > 0 {
                let d = dot_i8_variant(
                    Variant::ScalarU1,
                    &vals[off..off + len],
                    &gathered[off..off + len],
                );
                want += d as f32 * scale;
            }
            off += len;
        }
        for v in Variant::ALL {
            let got = row_block_dots_i8(v, &vals, &gathered, &seg_lens, &scales);
            assert_eq!(got.to_bits(), want.to_bits(), "{v:?}");
        }
    }

    #[test]
    fn quad_row_dots_match_four_single_rows_exactly() {
        // Same segment structure as the single-row test; the quad kernel
        // must be bit-identical to four independent single-row calls on
        // every variant (exact i32 accumulation, identical dequantize
        // order).
        let seg_lens: Vec<u32> = vec![0, 3, 16, 13, 8, 1, 40, 0, 25, 4, 12];
        let n: usize = seg_lens.iter().map(|&l| l as usize).sum();
        let gathered = codes(n, 21);
        let scales: Vec<f32> = (0..seg_lens.len())
            .map(|i| 0.02 + 0.005 * i as f32)
            .collect();
        let rows: Vec<Vec<i8>> = (0..4).map(|i| codes(n, 30 + i)).collect();
        let row_refs = [
            rows[0].as_slice(),
            rows[1].as_slice(),
            rows[2].as_slice(),
            rows[3].as_slice(),
        ];
        for v in Variant::ALL {
            let want: Vec<f32> = rows
                .iter()
                .map(|r| row_block_dots_i8(v, r, &gathered, &seg_lens, &scales))
                .collect();
            let got = row_quad_block_dots_i8(v, row_refs, &gathered, &seg_lens, &scales);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "{v:?}");
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            if crate::simd::vector_available() {
                let want: Vec<f32> = rows
                    .iter()
                    .map(|r| row_block_dots_i8_scalar(r, &gathered, &seg_lens, &scales))
                    .collect();
                let hw =
                    unsafe { x86::row_quad_block_dots_i8(row_refs, &gathered, &seg_lens, &scales) };
                for (g, w) in hw.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "direct avx2");
                }
            }
        }
    }

    #[test]
    fn batch_accumulate_variants_agree_exactly() {
        // Lane counts around the 8-wide AVX2 step, element counts with tails.
        for (n, b) in [
            (1usize, 1usize),
            (5, 7),
            (33, 8),
            (40, 9),
            (17, 16),
            (3, 24),
        ] {
            let a = codes(n, 9);
            let xs = codes(n * b, 10);
            let mut want = vec![0i32; b];
            dot_batch_i8_scalar(&a, &xs, b, &mut want);
            let mut got = vec![0i32; b];
            dot_batch_i8_accumulate(&a, &xs, b, &mut got);
            assert_eq!(got, want, "n={n} b={b}");
            #[cfg(target_arch = "x86_64")]
            {
                if crate::simd::vector_available() {
                    let mut hw = vec![0i32; b];
                    unsafe { x86::dot_batch_i8_accumulate(&a, &xs, b, &mut hw) };
                    assert_eq!(hw, want, "avx2 n={n} b={b}");
                }
            }
        }
    }

    #[test]
    fn fused_batch_lane_matches_serial_row_dots() {
        // Segment lengths straddle the 8-element weight blocks, the pair
        // step, the zero-padded odd tail and the final-element scalar path.
        let seg_lens: Vec<u32> = vec![0, 3, 16, 13, 8, 1, 40, 0, 25, 9];
        let n: usize = seg_lens.iter().map(|&l| l as usize).sum();
        let vals = codes(n, 11);
        let scales: Vec<f32> = (0..seg_lens.len())
            .map(|i| 0.015 + 0.004 * i as f32)
            .collect();
        for b in [1usize, 5, 7, 8, 9, 16, 24] {
            let gathered = codes(n * b, 12);
            let sxs: Vec<f32> = (0..b).map(|j| 0.02 + 0.001 * j as f32).collect();
            for v in Variant::ALL {
                let mut out = vec![f32::NAN; b];
                row_block_dots_batch_i8(v, &vals, &gathered, b, &seg_lens, &scales, &sxs, &mut out);
                for j in 0..b {
                    let col: Vec<i8> = (0..n).map(|k| gathered[k * b + j]).collect();
                    let want = sxs[j]
                        * row_block_dots_i8(Variant::ScalarU1, &vals, &col, &seg_lens, &scales);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "{v:?} b={b} lane {j}");
                }
            }
        }
    }

    #[test]
    fn fused_quad_batch_matches_four_single_rows_exactly() {
        let seg_lens: Vec<u32> = vec![2, 17, 0, 8, 5, 17, 33, 1];
        let n: usize = seg_lens.iter().map(|&l| l as usize).sum();
        let scales: Vec<f32> = (0..seg_lens.len())
            .map(|i| 0.01 + 0.006 * i as f32)
            .collect();
        let rows: Vec<Vec<i8>> = (0..4).map(|i| codes(n, 40 + i)).collect();
        let row_refs = [
            rows[0].as_slice(),
            rows[1].as_slice(),
            rows[2].as_slice(),
            rows[3].as_slice(),
        ];
        for b in [1usize, 8, 11, 16] {
            let gathered = codes(n * b, 44);
            let sxs: Vec<f32> = (0..b).map(|j| 0.03 + 0.002 * j as f32).collect();
            for v in Variant::ALL {
                let mut got = vec![f32::NAN; 4 * b];
                row_quad_block_dots_batch_i8(
                    v, row_refs, &gathered, b, &seg_lens, &scales, &sxs, &mut got,
                );
                for (i, r) in rows.iter().enumerate() {
                    let mut want = vec![f32::NAN; b];
                    row_block_dots_batch_i8(
                        v, r, &gathered, b, &seg_lens, &scales, &sxs, &mut want,
                    );
                    for j in 0..b {
                        assert_eq!(
                            got[i * b + j].to_bits(),
                            want[j].to_bits(),
                            "{v:?} b={b} row {i} lane {j}"
                        );
                    }
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            if crate::simd::vector_available() {
                let b = 8usize;
                let gathered = codes(n * b, 44);
                let sxs: Vec<f32> = (0..b).map(|j| 0.03 + 0.002 * j as f32).collect();
                let mut hw = vec![f32::NAN; 4 * b];
                unsafe {
                    x86::row_quad_block_dots_batch_i8(
                        row_refs, &gathered, b, &seg_lens, &scales, &sxs, &mut hw,
                    )
                };
                for (i, r) in rows.iter().enumerate() {
                    let mut want = vec![f32::NAN; b];
                    row_block_dots_batch_i8_scalar(
                        r, &gathered, b, &seg_lens, &scales, &sxs, &mut want, 0,
                    );
                    for j in 0..b {
                        assert_eq!(
                            hw[i * b + j].to_bits(),
                            want[j].to_bits(),
                            "direct avx2 row {i} lane {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_lane_matches_serial_column() {
        let a = codes(40, 5);
        let b = 6usize;
        let xs = codes(40 * b, 6);
        let mut out = vec![0i32; b];
        dot_batch_i8_accumulate(&a, &xs, b, &mut out);
        for j in 0..b {
            let col: Vec<i8> = (0..40).map(|k| xs[k * b + j]).collect();
            assert_eq!(
                out[j],
                dot_i8_variant(Variant::ScalarU8, &a, &col),
                "lane {j}"
            );
        }
    }

    #[test]
    fn activation_quantization_contract() {
        let x: Vec<f32> = (0..33).map(|i| ((i as f32) * 0.7).sin() * 2.5).collect();
        let mut q = Vec::new();
        let sx = quantize_activations(&x, &mut q);
        let max_abs = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!((sx - max_abs / 127.0).abs() < 1e-9);
        for (&xi, &qi) in x.iter().zip(&q) {
            assert!((qi as f32 * sx - xi).abs() <= sx * 0.5 + 1e-6);
        }
        // Zero input: safe scale, zero codes.
        let sx = quantize_activations(&[0.0, 0.0], &mut q);
        assert_eq!(sx, 1.0);
        assert_eq!(q, vec![0, 0]);
        // Non-finite values saturate instead of poisoning the codes.
        let sx = quantize_activations(&[1.0, f32::INFINITY, f32::NAN], &mut q);
        assert_eq!(sx, 1.0 / 127.0);
        assert_eq!(q, vec![127, 127, 0]);
    }

    #[test]
    fn lane_quantization_matches_serial_per_column() {
        let rows = 20usize;
        let b = 5usize;
        let xs: Vec<f32> = (0..rows * b)
            .map(|i| ((i as f32) * 0.31).cos() * (1.0 + (i % b) as f32))
            .collect();
        let mut q = Vec::new();
        let mut scales = Vec::new();
        quantize_activations_lanes(&xs, b, &mut q, &mut scales);
        for j in 0..b {
            let col: Vec<f32> = (0..rows).map(|r| xs[r * b + j]).collect();
            let mut qc = Vec::new();
            let s = quantize_activations(&col, &mut qc);
            assert_eq!(scales[j], s, "lane {j} scale");
            let lane: Vec<i8> = (0..rows).map(|r| q[r * b + j]).collect();
            assert_eq!(lane, qc, "lane {j} codes");
        }
    }
}
