//! Symmetric per-tensor int8 weight quantization.
//!
//! DESIGN.md §6 lists a "quantized int8 CPU path as a what-if study": mobile
//! CPUs execute int8 dot products at twice the fp32 rate and quarter the
//! weight traffic, at the cost of quantization error. [`QuantizedMatrix`]
//! implements the standard symmetric scheme — `q = round(w / scale)` with
//! `scale = max|w| / 127` — with dequantizing GEMV for the functional
//! runtime and exact error-bound accounting for the tests.

use crate::matrix::{Matrix, ShapeError};

/// A matrix quantized to int8 with one symmetric scale per tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: f32,
}

impl QuantizedMatrix {
    /// Quantizes `m` symmetrically: `scale = max|w| / 127`,
    /// `q = round(w / scale)` clamped to `[-127, 127]`.
    ///
    /// An all-zero matrix gets scale 1.0 (every entry quantizes to 0).
    pub fn quantize(m: &Matrix) -> QuantizedMatrix {
        let max_abs = m.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        QuantizedMatrix::with_scale(m, if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 })
    }

    /// Quantizes with a percentile-clipped (saturating) scale: the scale is
    /// set from the `percentile`-th largest absolute weight instead of the
    /// maximum, and the tail beyond it saturates to ±127.
    ///
    /// A heavy-tailed weight matrix — a handful of outliers atop a tight
    /// bulk — wastes almost the whole int8 range on the outliers under
    /// [`QuantizedMatrix::quantize`]: `scale = max|w|/127` makes the step
    /// huge for the 99% of weights near zero. Clipping at, say, the 99.5th
    /// percentile shrinks the step for the bulk at the cost of a bounded
    /// saturation error on the few clipped weights, tightening the overall
    /// reconstruction error (see the heavy-tail unit test).
    ///
    /// `percentile` is a fraction in `(0, 1]`; `1.0` reproduces
    /// [`QuantizedMatrix::quantize`] exactly.
    ///
    /// # Panics
    ///
    /// Panics when `percentile` is not in `(0, 1]`.
    pub fn quantize_clipped(m: &Matrix, percentile: f32) -> QuantizedMatrix {
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0, 1], got {percentile}"
        );
        let mut mags: Vec<f32> = m.as_slice().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
        let clip = if mags.is_empty() {
            0.0
        } else {
            let rank = ((mags.len() as f32 * percentile).ceil() as usize).clamp(1, mags.len());
            mags[rank - 1]
        };
        QuantizedMatrix::with_scale(m, if clip > 0.0 { clip / 127.0 } else { 1.0 })
    }

    fn with_scale(m: &Matrix, scale: f32) -> QuantizedMatrix {
        let data = m
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scale,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The symmetric scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw int8 payload (row-major).
    pub fn as_i8_slice(&self) -> &[i8] {
        &self.data
    }

    /// Storage bytes: one per weight plus the 4-byte scale.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + 4
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
        .expect("shape preserved")
    }

    /// `y = Q x` with int32 accumulation per row and one final scale —
    /// the int8 kernel shape mobile CPUs execute (SDOT-style).
    ///
    /// The *input* stays f32 here (weight-only quantization); each product
    /// accumulates `q_ij * x_j` in f32 after an exact i32 → f32 widening of
    /// the weight.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn gemv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError {
                op: "quantized_gemv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (&q, &xv) in row.iter().zip(x) {
                acc += q as f32 * xv;
            }
            *yr = acc * self.scale;
        }
        Ok(y)
    }

    /// The worst-case absolute quantization error per weight: half a
    /// quantization step.
    pub fn error_bound(&self) -> f32 {
        self.scale * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        let mut rng = crate::init::rng_from_seed(3);
        let m = crate::init::uniform(16, 16, -2.0, 2.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let d = q.dequantize();
        let bound = q.error_bound() + 1e-6;
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn extremes_map_to_127() {
        let m = Matrix::from_rows(&[&[2.0, -2.0, 0.0]]).unwrap();
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.as_i8_slice(), &[127, -127, 0]);
        assert!((q.scale() - 2.0 / 127.0).abs() < 1e-9);
    }

    #[test]
    fn zero_matrix_safe() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(3, 3));
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), Matrix::zeros(3, 3));
    }

    #[test]
    fn gemv_close_to_f32() {
        let mut rng = crate::init::rng_from_seed(7);
        let m = crate::init::uniform(8, 12, -1.0, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).cos()).collect();
        let exact = crate::gemm::gemv(&m, &x).unwrap();
        let approx = q.gemv(&x).unwrap();
        // Worst case error: cols * error_bound * max|x|.
        let bound = 12.0 * q.error_bound() * 1.0 + 1e-4;
        for (a, b) in exact.iter().zip(&approx) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn gemv_shape_error() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(2, 3));
        assert!(q.gemv(&[1.0]).is_err());
    }

    #[test]
    fn storage_is_one_byte_per_weight() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(10, 10));
        assert_eq!(q.storage_bytes(), 104);
        assert_eq!(q.rows(), 10);
        assert_eq!(q.cols(), 10);
    }

    #[test]
    fn clipped_scale_tightens_heavy_tailed_error() {
        // A tight bulk plus a few large outliers: the classic failure mode
        // of max-abs scaling.
        let mut rng = crate::init::rng_from_seed(11);
        let mut m = crate::init::uniform(24, 24, -0.1, 0.1, &mut rng);
        for (i, v) in [(5usize, 4.0f32), (100, -3.5), (400, 5.0)] {
            let (r, c) = (i / 24, i % 24);
            m[(r, c)] = v;
        }
        let plain = QuantizedMatrix::quantize(&m);
        let clipped = QuantizedMatrix::quantize_clipped(&m, 0.99);

        // The clipped step is an order of magnitude smaller.
        assert!(
            clipped.scale() < plain.scale() / 10.0,
            "clip {} vs max-abs {}",
            clipped.scale(),
            plain.scale()
        );
        // Every *bulk* weight reconstructs within the (much tighter)
        // clipped bound; the outliers saturate to ±clip.
        let clip = clipped.scale() * 127.0;
        let dc = clipped.dequantize();
        for (a, b) in m.as_slice().iter().zip(dc.as_slice()) {
            if a.abs() <= clip {
                assert!((a - b).abs() <= clipped.error_bound() + 1e-6, "{a} vs {b}");
            } else {
                assert!((b.abs() - clip).abs() <= clipped.error_bound() + 1e-6);
            }
        }
        // The per-weight error bound tightens by the same order — this is
        // the bound the kernel error analyses consume.
        assert!(clipped.error_bound() < plain.error_bound() / 10.0);
        // And the bulk (everything inside the clip, 99%+ of the weights)
        // reconstructs far more accurately than under max-abs scaling.
        let bulk_err = |q: &QuantizedMatrix| {
            let d = q.dequantize();
            let (sum, n) = m
                .as_slice()
                .iter()
                .zip(d.as_slice())
                .filter(|(a, _)| a.abs() <= clip)
                .fold((0.0f32, 0usize), |(s, n), (a, b)| {
                    (s + (a - b).abs(), n + 1)
                });
            sum / n as f32
        };
        assert!(
            bulk_err(&clipped) < bulk_err(&plain) / 4.0,
            "clipped {} vs plain {}",
            bulk_err(&clipped),
            bulk_err(&plain)
        );
        // percentile = 1.0 reproduces the max-abs scheme exactly.
        let full = QuantizedMatrix::quantize_clipped(&m, 1.0);
        assert_eq!(full, plain);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn clipped_rejects_bad_percentile() {
        let _ = QuantizedMatrix::quantize_clipped(&Matrix::zeros(2, 2), 0.0);
    }

    #[test]
    fn prop_quantization_contract() {
        for seed in 0u64..300 {
            let mut rng = crate::init::rng_from_seed(seed);
            let m = crate::init::uniform(6, 6, -3.0, 3.0, &mut rng);
            let q = QuantizedMatrix::quantize(&m);
            let d = q.dequantize();
            // Error bounded and zeros preserved exactly.
            for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
                assert!((a - b).abs() <= q.error_bound() + 1e-6, "seed {seed}");
                if *a == 0.0 {
                    assert_eq!(*b, 0.0, "seed {seed}");
                }
            }
        }
    }
}
