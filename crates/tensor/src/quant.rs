//! Symmetric per-tensor int8 weight quantization.
//!
//! DESIGN.md §6 lists a "quantized int8 CPU path as a what-if study": mobile
//! CPUs execute int8 dot products at twice the fp32 rate and quarter the
//! weight traffic, at the cost of quantization error. [`QuantizedMatrix`]
//! implements the standard symmetric scheme — `q = round(w / scale)` with
//! `scale = max|w| / 127` — with dequantizing GEMV for the functional
//! runtime and exact error-bound accounting for the tests.

use crate::matrix::{Matrix, ShapeError};

/// A matrix quantized to int8 with one symmetric scale per tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: f32,
}

impl QuantizedMatrix {
    /// Quantizes `m` symmetrically: `scale = max|w| / 127`,
    /// `q = round(w / scale)` clamped to `[-127, 127]`.
    ///
    /// An all-zero matrix gets scale 1.0 (every entry quantizes to 0).
    pub fn quantize(m: &Matrix) -> QuantizedMatrix {
        let max_abs = m.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let data = m
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scale,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The symmetric scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw int8 payload (row-major).
    pub fn as_i8_slice(&self) -> &[i8] {
        &self.data
    }

    /// Storage bytes: one per weight plus the 4-byte scale.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + 4
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
        .expect("shape preserved")
    }

    /// `y = Q x` with int32 accumulation per row and one final scale —
    /// the int8 kernel shape mobile CPUs execute (SDOT-style).
    ///
    /// The *input* stays f32 here (weight-only quantization); each product
    /// accumulates `q_ij * x_j` in f32 after an exact i32 → f32 widening of
    /// the weight.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn gemv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError {
                op: "quantized_gemv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (&q, &xv) in row.iter().zip(x) {
                acc += q as f32 * xv;
            }
            *yr = acc * self.scale;
        }
        Ok(y)
    }

    /// The worst-case absolute quantization error per weight: half a
    /// quantization step.
    pub fn error_bound(&self) -> f32 {
        self.scale * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        let mut rng = crate::init::rng_from_seed(3);
        let m = crate::init::uniform(16, 16, -2.0, 2.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let d = q.dequantize();
        let bound = q.error_bound() + 1e-6;
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn extremes_map_to_127() {
        let m = Matrix::from_rows(&[&[2.0, -2.0, 0.0]]).unwrap();
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.as_i8_slice(), &[127, -127, 0]);
        assert!((q.scale() - 2.0 / 127.0).abs() < 1e-9);
    }

    #[test]
    fn zero_matrix_safe() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(3, 3));
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), Matrix::zeros(3, 3));
    }

    #[test]
    fn gemv_close_to_f32() {
        let mut rng = crate::init::rng_from_seed(7);
        let m = crate::init::uniform(8, 12, -1.0, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).cos()).collect();
        let exact = crate::gemm::gemv(&m, &x).unwrap();
        let approx = q.gemv(&x).unwrap();
        // Worst case error: cols * error_bound * max|x|.
        let bound = 12.0 * q.error_bound() * 1.0 + 1e-4;
        for (a, b) in exact.iter().zip(&approx) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn gemv_shape_error() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(2, 3));
        assert!(q.gemv(&[1.0]).is_err());
    }

    #[test]
    fn storage_is_one_byte_per_weight() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(10, 10));
        assert_eq!(q.storage_bytes(), 104);
        assert_eq!(q.rows(), 10);
        assert_eq!(q.cols(), 10);
    }

    #[test]
    fn prop_quantization_contract() {
        for seed in 0u64..300 {
            let mut rng = crate::init::rng_from_seed(seed);
            let m = crate::init::uniform(6, 6, -3.0, 3.0, &mut rng);
            let q = QuantizedMatrix::quantize(&m);
            let d = q.dequantize();
            // Error bounded and zeros preserved exactly.
            for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
                assert!((a - b).abs() <= q.error_bound() + 1e-6, "seed {seed}");
                if *a == 0.0 {
                    assert_eq!(*b, 0.0, "seed {seed}");
                }
            }
        }
    }
}
