//! The [`PrunableNetwork`] abstraction: what a model must expose for the
//! ADMM/BSP engines to prune it.
//!
//! The engines never look inside the architecture — they need named weight
//! matrices (to project/mask) and a way to take gradient steps on sequence
//! data (to retrain under the augmented-Lagrangian penalty and the final
//! mask). Both the paper's GRU model and the LSTM extension implement this,
//! which is what makes the pruning machinery architecture-agnostic.

use rtm_rnn::optimizer::{GradClip, Optimizer};
use rtm_rnn::{BiGruNetwork, GruNetwork, LstmNetwork};
use rtm_tensor::Matrix;

/// A trainable network exposing its prunable weight matrices by stable
/// names.
pub trait PrunableNetwork {
    /// Shared references to every prunable weight matrix, with stable
    /// hierarchical names. Biases and classifier heads are excluded,
    /// matching the paper's pruning scope.
    fn prunable(&self) -> Vec<(String, &Matrix)>;

    /// Mutable variant of [`PrunableNetwork::prunable`]; must yield the
    /// same names in the same order.
    fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)>;

    /// One optimizer step on a single `(frames, targets)` sequence;
    /// returns the data loss.
    fn train_sequence(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32;

    /// Nonzero prunable weights (Table I's "Para. No.").
    fn nonzero_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.count_nonzero()).sum()
    }

    /// Total prunable weights.
    fn total_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.len()).sum()
    }
}

impl PrunableNetwork for GruNetwork {
    fn prunable(&self) -> Vec<(String, &Matrix)> {
        GruNetwork::prunable(self)
    }

    fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        GruNetwork::prunable_mut(self)
    }

    fn train_sequence(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32 {
        self.train_step(frames, targets, opt, clip).loss
    }
}

impl PrunableNetwork for LstmNetwork {
    fn prunable(&self) -> Vec<(String, &Matrix)> {
        LstmNetwork::prunable(self)
    }

    fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        LstmNetwork::prunable_mut(self)
    }

    fn train_sequence(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32 {
        self.train_step(frames, targets, opt, clip)
    }
}

impl PrunableNetwork for BiGruNetwork {
    fn prunable(&self) -> Vec<(String, &Matrix)> {
        BiGruNetwork::prunable(self)
    }

    fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        BiGruNetwork::prunable_mut(self)
    }

    fn train_sequence(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32 {
        self.train_step(frames, targets, opt, clip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::model::NetworkConfig;

    fn cfg() -> NetworkConfig {
        NetworkConfig {
            input_dim: 3,
            hidden_dims: vec![6],
            num_classes: 2,
        }
    }

    #[test]
    fn gru_implements_trait() {
        let mut net = GruNetwork::new(&cfg(), 1);
        let total = PrunableNetwork::total_prunable_params(&net);
        // 3 gates x (6x3 input + 6x6 recurrent) weights.
        assert_eq!(total, 3 * (18 + 36));
        assert_eq!(total, PrunableNetwork::nonzero_prunable_params(&net));
        let mut opt = rtm_rnn::Adam::new(0.01);
        let loss =
            PrunableNetwork::train_sequence(&mut net, &[vec![0.1, 0.2, 0.3]], &[0], &mut opt, None);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn bigru_implements_trait_and_prunes() {
        use crate::bsp::{BspConfig, BspPruner};
        use crate::schedule::CompressionTarget;
        let mut net = BiGruNetwork::new(&cfg(), 4);
        let report = BspPruner::new(BspConfig {
            num_stripes: 3,
            num_blocks: 2,
            target: CompressionTarget::new(3.0, 1.0),
            admm: crate::admm::AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..crate::admm::AdmmConfig::default()
            },
        })
        .prune(&mut net, &[]);
        assert!(report.achieved_rate > 2.0, "rate {}", report.achieved_rate);
        // Both directions were pruned.
        assert!(report.mask.get("layer0.fwd.u_z").is_some());
        assert!(report.mask.get("layer0.bwd.u_z").is_some());
    }

    #[test]
    fn lstm_implements_trait() {
        let mut net = LstmNetwork::new(&cfg(), 1);
        assert_eq!(PrunableNetwork::prunable(&net).len(), 8);
        let mut opt = rtm_rnn::Adam::new(0.01);
        let loss = PrunableNetwork::train_sequence(
            &mut net,
            &[vec![0.1, 0.2, 0.3]],
            &[1],
            &mut opt,
            Some(GradClip::new(1.0)),
        );
        assert!(loss.is_finite());
    }
}
