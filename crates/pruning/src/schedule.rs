//! Compression-rate targets and arithmetic (Table I's rate columns).
//!
//! Table I specifies each BSP point as a *(column compression rate, row
//! compression rate)* pair — e.g. `16× columns, 2× rows ⇒ 29× overall` after
//! the rounding the paper reports. [`CompressionTarget`] carries that pair,
//! converts it to the keep-ratios the projections consume, and predicts the
//! overall rate; [`table1_targets`] lists the exact sweep of the paper.

/// A `(column, row)` compression-rate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionTarget {
    /// Column compression rate (`Numc` selection keeps `1/col_rate` of the
    /// columns in each block). `1.0` means no column pruning.
    pub col_rate: f64,
    /// Row compression rate (`1/row_rate` of rows survive). `1.0` = none.
    pub row_rate: f64,
}

impl CompressionTarget {
    /// Creates a target.
    ///
    /// # Panics
    ///
    /// Panics if either rate is below 1.0.
    pub fn new(col_rate: f64, row_rate: f64) -> CompressionTarget {
        assert!(col_rate >= 1.0 && row_rate >= 1.0, "rates must be >= 1");
        CompressionTarget { col_rate, row_rate }
    }

    /// The dense (identity) target.
    pub fn dense() -> CompressionTarget {
        CompressionTarget::new(1.0, 1.0)
    }

    /// Fraction of columns kept per block.
    pub fn col_keep_ratio(&self) -> f64 {
        1.0 / self.col_rate
    }

    /// Fraction of rows kept.
    pub fn row_keep_ratio(&self) -> f64 {
        1.0 / self.row_rate
    }

    /// Nominal overall compression rate (`col × row`); the achieved rate
    /// differs slightly through per-block rounding, exactly as Table I's
    /// pairs do (16×2 → 29×, not 32×).
    pub fn nominal_overall(&self) -> f64 {
        self.col_rate * self.row_rate
    }

    /// Whether this is the dense baseline.
    pub fn is_dense(&self) -> bool {
        self.col_rate == 1.0 && self.row_rate == 1.0
    }
}

impl Default for CompressionTarget {
    fn default() -> CompressionTarget {
        CompressionTarget::dense()
    }
}

/// One row of Table I for the BSP sweep: the target pair and the overall
/// rate the paper reports for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Point {
    /// Column/row target.
    pub target: CompressionTarget,
    /// Overall compression rate as printed in Table I.
    pub paper_overall: f64,
    /// Parameters preserved, in millions, as printed in Table I.
    pub paper_params_m: f64,
    /// PER degradation (percentage points) as printed in Table I.
    pub paper_per_degradation: f64,
}

/// The ten BSP rows of Table I, in order.
pub fn table1_targets() -> Vec<Table1Point> {
    let p = |col: f64, row: f64, overall: f64, params: f64, degr: f64| Table1Point {
        target: CompressionTarget::new(col, row),
        paper_overall: overall,
        paper_params_m: params,
        paper_per_degradation: degr,
    };
    vec![
        p(1.0, 1.0, 1.0, 9.6, 0.0),
        p(10.0, 1.0, 10.0, 0.96, 0.0),
        p(16.0, 1.25, 19.0, 0.48, 0.60),
        p(16.0, 2.0, 29.0, 0.33, 0.80),
        p(16.0, 5.0, 43.0, 0.22, 1.80),
        p(20.0, 8.0, 80.0, 0.12, 2.70),
        p(16.0, 16.0, 103.0, 0.09, 4.40),
        p(20.0, 10.0, 153.0, 0.06, 5.40),
        p(20.0, 16.0, 245.0, 0.04, 5.40),
        p(20.0, 20.0, 301.0, 0.03, 6.70),
    ]
}

/// The compression rates of the Table II / Figure 4 performance sweep.
pub fn table2_rates() -> Vec<f64> {
    vec![
        1.0, 10.0, 19.0, 29.0, 43.0, 80.0, 103.0, 153.0, 245.0, 301.0,
    ]
}

/// A per-tensor compression schedule: the first rule whose name prefix
/// matches a tensor wins; unmatched tensors use the default target.
///
/// Mixed per-layer rates are a DESIGN.md §6 extension: input-side matrices
/// usually tolerate less pruning than the (much larger) recurrent ones, so
/// a schedule like `layer0.w → 4×, everything else → 16×` preserves more
/// accuracy at nearly the same overall rate.
///
/// # Example
///
/// ```
/// use rtm_pruning::schedule::{CompressionTarget, LayerSchedule};
///
/// let sched = LayerSchedule::new(CompressionTarget::new(16.0, 2.0))
///     .with_rule("layer0.w", CompressionTarget::new(4.0, 1.0));
/// assert_eq!(sched.target_for("layer0.w_z").col_rate, 4.0);
/// assert_eq!(sched.target_for("layer1.u_n").col_rate, 16.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSchedule {
    rules: Vec<(String, CompressionTarget)>,
    default: CompressionTarget,
}

impl LayerSchedule {
    /// Creates a schedule with only a default target.
    pub fn new(default: CompressionTarget) -> LayerSchedule {
        LayerSchedule {
            rules: Vec::new(),
            default,
        }
    }

    /// Appends a prefix rule (first match wins, in insertion order).
    pub fn with_rule(
        mut self,
        prefix: impl Into<String>,
        target: CompressionTarget,
    ) -> LayerSchedule {
        self.rules.push((prefix.into(), target));
        self
    }

    /// The target for a tensor name.
    pub fn target_for(&self, name: &str) -> CompressionTarget {
        self.rules
            .iter()
            .find(|(prefix, _)| name.starts_with(prefix.as_str()))
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }

    /// The default target.
    pub fn default_target(&self) -> CompressionTarget {
        self.default
    }

    /// Whether any tensor could be row-pruned under this schedule.
    pub fn any_row_pruning(&self) -> bool {
        self.default.row_rate > 1.0 || self.rules.iter().any(|(_, t)| t.row_rate > 1.0)
    }

    /// Whether any tensor could be column-pruned under this schedule.
    pub fn any_col_pruning(&self) -> bool {
        self.default.col_rate > 1.0 || self.rules.iter().any(|(_, t)| t.col_rate > 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_arithmetic() {
        let t = CompressionTarget::new(16.0, 2.0);
        assert!((t.col_keep_ratio() - 0.0625).abs() < 1e-12);
        assert!((t.row_keep_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(t.nominal_overall(), 32.0);
        assert!(!t.is_dense());
    }

    #[test]
    fn dense_target() {
        let d = CompressionTarget::dense();
        assert!(d.is_dense());
        assert_eq!(d.nominal_overall(), 1.0);
        assert_eq!(CompressionTarget::default(), d);
    }

    #[test]
    #[should_panic(expected = "rates must be >= 1")]
    fn sub_unit_rate_rejected() {
        CompressionTarget::new(0.5, 1.0);
    }

    #[test]
    fn table1_has_ten_bsp_rows() {
        let rows = table1_targets();
        assert_eq!(rows.len(), 10);
        assert!(rows[0].target.is_dense());
        assert_eq!(rows[9].paper_overall, 301.0);
        // Overall rates strictly increase down the table.
        for w in rows.windows(2) {
            assert!(w[1].paper_overall > w[0].paper_overall);
        }
        // PER degradation is non-decreasing down the table.
        for w in rows.windows(2) {
            assert!(w[1].paper_per_degradation >= w[0].paper_per_degradation);
        }
    }

    #[test]
    fn nominal_bounds_paper_overall() {
        // The paper's reported overall rate is the *achieved* rate, which
        // per-block keep-count rounding keeps below the nominal col×row
        // product (e.g. 16×16 blocks still keep ≥1 column each → 103× not
        // 256×). It never exceeds the nominal and stays within ~3× of it.
        for row in table1_targets().iter().skip(1) {
            let nominal = row.target.nominal_overall();
            assert!(
                row.paper_overall >= nominal * 0.35 && row.paper_overall <= nominal * 1.05,
                "paper {} vs nominal {}",
                row.paper_overall,
                nominal
            );
        }
    }

    #[test]
    fn layer_schedule_matching() {
        let sched = LayerSchedule::new(CompressionTarget::new(16.0, 2.0))
            .with_rule("layer0.w", CompressionTarget::new(4.0, 1.0))
            .with_rule("layer0", CompressionTarget::new(8.0, 1.0));
        // First match wins.
        assert_eq!(sched.target_for("layer0.w_z").col_rate, 4.0);
        assert_eq!(sched.target_for("layer0.u_z").col_rate, 8.0);
        assert_eq!(sched.target_for("layer1.w_z").col_rate, 16.0);
        assert_eq!(sched.default_target().col_rate, 16.0);
        assert!(sched.any_row_pruning());
        assert!(sched.any_col_pruning());
        let none = LayerSchedule::new(CompressionTarget::dense());
        assert!(!none.any_row_pruning());
        assert!(!none.any_col_pruning());
    }

    #[test]
    fn table2_matches_table1_rates() {
        let t2 = table2_rates();
        let t1: Vec<f64> = table1_targets().iter().map(|p| p.paper_overall).collect();
        assert_eq!(t2, t1);
    }
}
