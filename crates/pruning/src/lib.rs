#![warn(missing_docs)]

//! # rtm-pruning
//!
//! Model-compression algorithms for the RTMobile reproduction: the paper's
//! **Block-based Structured Pruning (BSP)** driven by an **ADMM** engine,
//! plus re-implementations of every baseline scheme Table I compares
//! against.
//!
//! * [`projection`] — constraint-set projections (the ADMM `Z`-update,
//!   Eq. (4)): BSP's per-block column selection, global row pruning,
//!   unstructured magnitude (ESE), bank-balanced (BBS), whole-column (Wang)
//!   and block-circulant (C-LSTM);
//! * [`admm`] — the augmented-Lagrangian loop of Eqs. (2)–(5): retrain `W`
//!   under the `ρ/2‖W − Z + U‖²` penalty, project to get `Z`, update the
//!   dual `U`;
//! * [`bsp`] — Algorithm 1: step 1 row-based column-block pruning, step 2
//!   column-based row pruning, then masked fine-tuning;
//! * [`baselines`] — one-call wrappers reproducing each comparison row of
//!   Table I;
//! * [`mask`] — named binary masks, application and compression accounting;
//! * [`schedule`] — the `(column rate, row rate)` compression targets of
//!   Table I and their arithmetic.
//!
//! # Example
//!
//! ```
//! use rtm_pruning::projection::{Projection, UnstructuredMagnitude};
//! use rtm_tensor::Matrix;
//!
//! let w = Matrix::from_rows(&[&[0.1, -2.0], &[3.0, 0.2]]).unwrap();
//! let proj = UnstructuredMagnitude::new(0.5);
//! let z = proj.project(&w);
//! assert_eq!(z.count_nonzero(), 2); // kept the two largest magnitudes
//! ```

pub mod admm;
pub mod baselines;
pub mod bsp;
pub mod gradual;
pub mod mask;
pub mod network;
pub mod projection;
pub mod schedule;

pub use admm::{AdmmConfig, AdmmPruner};
pub use bsp::{BspConfig, BspPruner, BspReport};
pub use mask::MaskSet;
pub use network::PrunableNetwork;
pub use projection::Projection;
pub use schedule::CompressionTarget;
