//! Gradual (multi-stage) pruning — the Han et al. iterate-prune-retrain
//! alternative to one-shot ADMM hard pruning.
//!
//! §II-B-a cites the "early work proposed by Han et al. \[that\] leverages a
//! heuristic method to iteratively prune weights with small magnitudes".
//! This module implements that schedule generically over any projection
//! family: the keep-ratio tightens geometrically from 1.0 to the final
//! target across `stages`, with masked retraining between stages. It
//! serves both as a historical baseline and as an ablation against the
//! ADMM path (same final constraint, different trajectory).

use crate::admm::Sequence;
use crate::mask::MaskSet;
use crate::network::PrunableNetwork;
use crate::projection::Projection;
use rtm_rnn::optimizer::{Adam, GradClip};

/// Configuration of a gradual pruning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradualConfig {
    /// Number of prune-retrain stages.
    pub stages: usize,
    /// Retraining epochs after each stage.
    pub epochs_per_stage: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Optional gradient clip.
    pub clip: Option<GradClip>,
}

impl Default for GradualConfig {
    fn default() -> GradualConfig {
        GradualConfig {
            stages: 4,
            epochs_per_stage: 5,
            lr: 3e-3,
            clip: Some(GradClip::new(5.0)),
        }
    }
}

/// Outcome of a gradual pruning run.
#[derive(Debug, Clone)]
pub struct GradualOutcome {
    /// Final mask.
    pub mask: MaskSet,
    /// Keep-ratio used at each stage (descending to the target).
    pub stage_ratios: Vec<f64>,
    /// Mean loss after each retraining epoch.
    pub loss_history: Vec<f32>,
}

/// Runs gradual pruning toward `final_keep_ratio`, building per-stage
/// projections via `projection_at(name, tensor, stage_keep_ratio)`.
///
/// The stage ratios interpolate geometrically: stage `k` of `n` keeps
/// `final^(k/n)` of the weights, so early stages prune gently and later
/// stages tighten onto the target — Han et al.'s schedule.
///
/// # Panics
///
/// Panics if `cfg.stages == 0` or `final_keep_ratio` is outside `(0, 1]`.
pub fn prune_gradually<N: PrunableNetwork>(
    net: &mut N,
    data: &[Sequence],
    final_keep_ratio: f64,
    cfg: GradualConfig,
    projection_at: &dyn Fn(&str, &rtm_tensor::Matrix, f64) -> Box<dyn Projection>,
) -> GradualOutcome {
    assert!(cfg.stages > 0, "need at least one stage");
    assert!(
        final_keep_ratio > 0.0 && final_keep_ratio <= 1.0,
        "keep ratio must be in (0, 1]"
    );

    let mut stage_ratios = Vec::with_capacity(cfg.stages);
    let mut loss_history = Vec::new();
    let mut mask = MaskSet::ones_like(net);
    let mut opt = Adam::new(cfg.lr);

    for stage in 1..=cfg.stages {
        let ratio = final_keep_ratio.powf(stage as f64 / cfg.stages as f64);
        stage_ratios.push(ratio);

        // Project every tensor at this stage's ratio; intersect with the
        // existing mask so pruned weights never revive.
        let mut stage_mask = MaskSet::new();
        for (name, w) in net.prunable() {
            let proj = projection_at(&name, w, ratio);
            if let Some(m) = proj.mask(w) {
                stage_mask.insert(name, m);
            }
        }
        mask = mask.intersect(&stage_mask);
        mask.apply(net);

        // Masked retraining.
        for _ in 0..cfg.epochs_per_stage {
            if data.is_empty() {
                break;
            }
            let mut total = 0.0f32;
            for (frames, targets) in data {
                total += net.train_sequence(frames, targets, &mut opt, cfg.clip);
                mask.apply(net);
            }
            loss_history.push(total / data.len() as f32);
        }
    }

    GradualOutcome {
        mask,
        stage_ratios,
        loss_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::UnstructuredMagnitude;
    use rtm_rnn::{GruNetwork, NetworkConfig};

    fn net(seed: u64) -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 6,
                hidden_dims: vec![12],
                num_classes: 3,
            },
            seed,
        )
    }

    #[test]
    fn stages_tighten_geometrically() {
        let mut m = net(1);
        let out = prune_gradually(
            &mut m,
            &[],
            0.125,
            GradualConfig {
                stages: 3,
                epochs_per_stage: 0,
                ..GradualConfig::default()
            },
            &|_, _, r| Box::new(UnstructuredMagnitude::new(r)),
        );
        assert_eq!(out.stage_ratios.len(), 3);
        // 0.125^(1/3) = 0.5, 0.125^(2/3) = 0.25, final = 0.125.
        assert!((out.stage_ratios[0] - 0.5).abs() < 1e-9);
        assert!((out.stage_ratios[1] - 0.25).abs() < 1e-9);
        assert!((out.stage_ratios[2] - 0.125).abs() < 1e-9);
        // Final sparsity honoured.
        let keep = m.nonzero_prunable_params() as f64 / m.total_prunable_params() as f64;
        assert!((keep - 0.125).abs() < 0.01, "keep {keep}");
    }

    #[test]
    fn masks_never_revive_weights() {
        let mut m = net(2);
        let data = {
            let frames: Vec<Vec<f32>> = (0..5).map(|_| vec![0.5; 6]).collect();
            vec![(frames, vec![1usize; 5])]
        };
        let out = prune_gradually(
            &mut m,
            &data,
            0.25,
            GradualConfig {
                stages: 2,
                epochs_per_stage: 3,
                ..GradualConfig::default()
            },
            &|_, _, r| Box::new(UnstructuredMagnitude::new(r)),
        );
        for (name, w) in m.prunable() {
            let mask = out.mask.get(&name).expect("mask exists");
            for (wi, mi) in w.as_slice().iter().zip(mask.as_slice()) {
                if *mi == 0.0 {
                    assert_eq!(*wi, 0.0, "{name}");
                }
            }
        }
        assert!(!out.loss_history.is_empty());
        assert!(out.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn gradual_reaches_same_rate_as_one_shot() {
        let mut a = net(3);
        let mut b = net(3);
        prune_gradually(
            &mut a,
            &[],
            0.1,
            GradualConfig {
                stages: 5,
                epochs_per_stage: 0,
                ..GradualConfig::default()
            },
            &|_, _, r| Box::new(UnstructuredMagnitude::new(r)),
        );
        // One-shot comparison.
        let proj = UnstructuredMagnitude::new(0.1);
        for (_, w) in b.prunable_mut() {
            let z = crate::projection::Projection::project(&proj, w);
            *w = z;
        }
        let rate =
            |n: &GruNetwork| n.total_prunable_params() as f64 / n.nonzero_prunable_params() as f64;
        assert!(
            (rate(&a) - rate(&b)).abs() / rate(&b) < 0.15,
            "{} vs {}",
            rate(&a),
            rate(&b)
        );
    }

    #[test]
    #[should_panic(expected = "need at least one stage")]
    fn zero_stages_rejected() {
        let mut m = net(4);
        prune_gradually(
            &mut m,
            &[],
            0.5,
            GradualConfig {
                stages: 0,
                ..GradualConfig::default()
            },
            &|_, _, r| Box::new(UnstructuredMagnitude::new(r)),
        );
    }
}
