//! The comparison schemes of Table I, each as a one-call wrapper around the
//! shared ADMM engine.
//!
//! | Function | Table I row | Scheme |
//! |---|---|---|
//! | [`prune_unstructured`] | ESE \[19\] | iterative magnitude pruning at arbitrary positions |
//! | [`prune_block_circulant`] | C-LSTM \[20\] | block-circulant weight matrices |
//! | [`prune_bank_balanced`] | BBS \[35\] | per-row bank-balanced sparsity |
//! | [`prune_column_row`] | Wang \[36\] | whole-column + whole-row structured pruning |
//!
//! E-RNN \[37\] is block-circulant with ADMM-optimized per-layer block sizes,
//! implemented by [`prune_block_circulant_tuned`].

use crate::admm::{AdmmConfig, AdmmPruner, Sequence};
use crate::mask::MaskSet;
use crate::network::PrunableNetwork;
use crate::projection::{
    BankBalanced, BlockCirculant, ColumnPrune, Projection, RowPrune, UnstructuredMagnitude,
};

/// Result of a baseline pruning run.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Scheme label for the result tables.
    pub scheme: &'static str,
    /// Final mask (empty for block-circulant, which transforms values).
    pub mask: MaskSet,
    /// Achieved compression rate counting stored parameters.
    pub achieved_rate: f64,
    /// Stored (distinct) parameter count.
    pub kept_params: usize,
    /// Loss history across ADMM epochs.
    pub loss_history: Vec<f32>,
}

fn support_rate<N: PrunableNetwork>(net: &N) -> (f64, usize) {
    let kept = net.nonzero_prunable_params();
    let total = net.total_prunable_params();
    let rate = if kept == 0 {
        f64::INFINITY
    } else {
        total as f64 / kept as f64
    };
    (rate, kept)
}

/// ESE-style non-structured magnitude pruning to an overall `rate`×
/// compression (keeping `1/rate` of the weights), with ADMM retraining.
///
/// # Panics
///
/// Panics if `rate < 1.0`.
pub fn prune_unstructured<N: PrunableNetwork>(
    net: &mut N,
    data: &[Sequence],
    rate: f64,
    admm: AdmmConfig,
) -> BaselineReport {
    assert!(rate >= 1.0, "rate must be >= 1");
    let keep = 1.0 / rate;
    let out = AdmmPruner::new(admm).run(net, data, &move |_, _| {
        Box::new(UnstructuredMagnitude::new(keep))
    });
    let (achieved_rate, kept_params) = support_rate(net);
    BaselineReport {
        scheme: "ESE (unstructured magnitude)",
        mask: out.mask,
        achieved_rate,
        kept_params,
        loss_history: out.loss_history,
    }
}

/// BBS-style bank-balanced pruning: every row keeps `1/rate` of its entries
/// in each of `num_banks` banks.
///
/// # Panics
///
/// Panics if `rate < 1.0` or `num_banks == 0`.
pub fn prune_bank_balanced<N: PrunableNetwork>(
    net: &mut N,
    data: &[Sequence],
    rate: f64,
    num_banks: usize,
    admm: AdmmConfig,
) -> BaselineReport {
    assert!(rate >= 1.0, "rate must be >= 1");
    let keep = 1.0 / rate;
    let out = AdmmPruner::new(admm).run(net, data, &move |_, w| {
        Box::new(BankBalanced::new(num_banks.min(w.cols().max(1)), keep))
    });
    let (achieved_rate, kept_params) = support_rate(net);
    BaselineReport {
        scheme: "BBS (bank-balanced)",
        mask: out.mask,
        achieved_rate,
        kept_params,
        loss_history: out.loss_history,
    }
}

/// Wang-style coarse structured pruning: whole columns at `col_rate`× and
/// whole rows at `row_rate`×, both via ADMM.
///
/// # Panics
///
/// Panics if either rate is below 1.0.
pub fn prune_column_row<N: PrunableNetwork>(
    net: &mut N,
    data: &[Sequence],
    col_rate: f64,
    row_rate: f64,
    admm: AdmmConfig,
) -> BaselineReport {
    assert!(col_rate >= 1.0 && row_rate >= 1.0, "rates must be >= 1");
    let engine = AdmmPruner::new(admm);
    let mut history = Vec::new();
    let col_keep = 1.0 / col_rate;
    let row_keep = 1.0 / row_rate;

    let mask_col = if col_rate > 1.0 {
        let out = engine.run(net, data, &move |_, _| Box::new(ColumnPrune::new(col_keep)));
        history.extend(out.loss_history);
        out.mask
    } else {
        MaskSet::ones_like(net)
    };
    let mask_row = if row_rate > 1.0 {
        let out = engine.run(net, data, &move |_, _| Box::new(RowPrune::new(row_keep)));
        history.extend(out.loss_history);
        out.mask
    } else {
        MaskSet::ones_like(net)
    };
    let mask = mask_col.intersect(&mask_row);
    mask.apply(net);
    let (achieved_rate, kept_params) = support_rate(net);
    BaselineReport {
        scheme: "Wang (column+row structured)",
        mask,
        achieved_rate,
        kept_params,
        loss_history: history,
    }
}

/// C-LSTM-style block-circulant compression with blocks of `block_size`
/// (which is also the per-block compression rate).
///
/// Per the paper's §III-B discussion, the original C-LSTM training cannot
/// use ADMM; here the projection *is* run through the ADMM engine for
/// uniformity, which if anything flatters this baseline.
///
/// # Panics
///
/// Panics if `block_size == 0`.
pub fn prune_block_circulant<N: PrunableNetwork>(
    net: &mut N,
    data: &[Sequence],
    block_size: usize,
    admm: AdmmConfig,
) -> BaselineReport {
    assert!(block_size > 0, "block size must be positive");
    let out = AdmmPruner::new(admm).run(net, data, &move |_, _| {
        Box::new(BlockCirculant::new(block_size))
    });
    // Compression counts distinct stored parameters, not nonzeros.
    let proj = BlockCirculant::new(block_size);
    let mut stored = 0usize;
    let mut total = 0usize;
    for (_, w) in net.prunable() {
        stored += proj.stored_params(w.rows(), w.cols());
        total += w.len();
    }
    BaselineReport {
        scheme: "C-LSTM (block-circulant)",
        mask: out.mask,
        achieved_rate: total as f64 / stored.max(1) as f64,
        kept_params: stored,
        loss_history: out.loss_history,
    }
}

/// E-RNN-style block-circulant compression: per-tensor block-size selection.
///
/// E-RNN \[37\] extends C-LSTM by *optimizing the block size per layer* under
/// a compression constraint. This implementation searches `candidates` for
/// each tensor independently: among block sizes reaching at least
/// `min_rate`× compression on that tensor, it picks the one with the
/// smallest Frobenius projection error, then runs the usual ADMM retraining
/// with the chosen per-tensor projections.
///
/// # Panics
///
/// Panics if `candidates` is empty or `min_rate < 1.0`.
pub fn prune_block_circulant_tuned<N: PrunableNetwork>(
    net: &mut N,
    data: &[Sequence],
    candidates: &[usize],
    min_rate: f64,
    admm: AdmmConfig,
) -> BaselineReport {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate block size"
    );
    assert!(min_rate >= 1.0, "rate must be >= 1");

    // Choose a block size per tensor by projection error.
    let mut chosen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for (name, w) in net.prunable() {
        let mut best: Option<(usize, f32)> = None;
        for &b in candidates {
            if b == 0 || b > w.rows().min(w.cols()) {
                continue;
            }
            let proj = BlockCirculant::new(b);
            let rate = w.len() as f64 / proj.stored_params(w.rows(), w.cols()).max(1) as f64;
            if rate + 1e-9 < min_rate {
                continue;
            }
            let err = w
                .zip_map(&proj.project(w), |a, z| (a - z) * (a - z))
                .expect("same shape")
                .sum()
                .sqrt();
            if best.is_none_or(|(_, e)| err < e) {
                best = Some((b, err));
            }
        }
        // Fall back to the largest candidate when none meets the rate
        // (narrow tensors): maximal compression is the E-RNN tie-break.
        let pick = best.map(|(b, _)| b).unwrap_or_else(|| {
            *candidates
                .iter()
                .filter(|&&b| b <= w.rows().min(w.cols()).max(1))
                .max()
                .unwrap_or(&1)
        });
        chosen.insert(name, pick);
    }

    let table = chosen.clone();
    let out = AdmmPruner::new(admm).run(net, data, &move |name, _| {
        Box::new(BlockCirculant::new(*table.get(name).unwrap_or(&1)))
    });

    let mut stored = 0usize;
    let mut total = 0usize;
    for (name, w) in net.prunable() {
        let b = chosen[&name];
        stored += BlockCirculant::new(b).stored_params(w.rows(), w.cols());
        total += w.len();
    }
    BaselineReport {
        scheme: "E-RNN (tuned block-circulant)",
        mask: out.mask,
        achieved_rate: total as f64 / stored.max(1) as f64,
        kept_params: stored,
        loss_history: out.loss_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::{GruNetwork, NetworkConfig};

    fn net(seed: u64) -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 8,
                hidden_dims: vec![16],
                num_classes: 2,
            },
            seed,
        )
    }

    fn oneshot() -> AdmmConfig {
        AdmmConfig {
            admm_iterations: 1,
            epochs_per_iteration: 0,
            finetune_epochs: 0,
            ..AdmmConfig::default()
        }
    }

    #[test]
    fn unstructured_hits_target_rate() {
        let mut m = net(1);
        let r = prune_unstructured(&mut m, &[], 8.0, oneshot());
        assert!(
            (r.achieved_rate - 8.0).abs() < 0.5,
            "rate {}",
            r.achieved_rate
        );
        assert_eq!(r.scheme, "ESE (unstructured magnitude)");
        assert!(!r.mask.is_empty());
    }

    #[test]
    fn bank_balanced_rows_are_balanced() {
        let mut m = net(2);
        let r = prune_bank_balanced(&mut m, &[], 4.0, 4, oneshot());
        // Narrow input tensors (8 cols / 4 banks = width-2 banks) keep at
        // least one entry per bank, so the achieved rate lands below the
        // nominal 4x — the same rounding effect the paper's rates show.
        assert!(
            r.achieved_rate > 2.5 && r.achieved_rate <= 4.2,
            "rate {}",
            r.achieved_rate
        );
        // Every row of every tensor has the same nnz as its siblings.
        for (name, w) in m.prunable() {
            let nnz0 = w.row(0).iter().filter(|&&v| v != 0.0).count();
            for row in 0..w.rows() {
                let nnz = w.row(row).iter().filter(|&&v| v != 0.0).count();
                assert_eq!(nnz, nnz0, "{name} row {row} unbalanced");
            }
        }
    }

    #[test]
    fn column_row_structure() {
        let mut m = net(3);
        let r = prune_column_row(&mut m, &[], 2.0, 2.0, oneshot());
        assert!(r.achieved_rate > 3.0, "rate {}", r.achieved_rate);
        for (name, w) in m.prunable() {
            // Each column all-zero or dense over surviving rows.
            let kept_rows: Vec<usize> = (0..w.rows())
                .filter(|&row| w.row(row).iter().any(|&v| v != 0.0))
                .collect();
            assert_eq!(kept_rows.len(), w.rows() / 2, "{name} rows");
            for c in 0..w.cols() {
                let states: Vec<bool> = kept_rows.iter().map(|&row| w[(row, c)] != 0.0).collect();
                assert!(states.windows(2).all(|p| p[0] == p[1]), "{name} col {c}");
            }
        }
    }

    #[test]
    fn block_circulant_rate_near_block_size() {
        let mut m = net(4);
        let r = prune_block_circulant(&mut m, &[], 8, oneshot());
        // All tensors are 16x8 or 16x16, divisible by 8 -> rate == 8 exactly.
        assert!(
            (r.achieved_rate - 8.0).abs() < 1e-9,
            "rate {}",
            r.achieved_rate
        );
        assert!(r.mask.is_empty(), "circulant has no mask");
    }

    #[test]
    fn tuned_block_circulant_meets_rate_with_least_error() {
        let mut m = net(6);
        let r = prune_block_circulant_tuned(&mut m, &[], &[4, 8, 16], 4.0, oneshot());
        assert_eq!(r.scheme, "E-RNN (tuned block-circulant)");
        // Every tensor is at least 4x compressed, so the total is too.
        assert!(r.achieved_rate >= 4.0, "rate {}", r.achieved_rate);
        // With error as the objective, the smallest admissible block (4)
        // should dominate, keeping the rate close to 4.
        assert!(r.achieved_rate < 8.5, "rate {}", r.achieved_rate);
        // All u_* tensors are block-circulant at some candidate size.
        let u = &m.layers[0].u_z;
        let mut circulant_at = None;
        'outer: for &b in &[4usize, 8, 16] {
            for d in 0..b {
                let v0 = u[(0, d)];
                for i in 1..b {
                    if (u[(i, (i + d) % b)] - v0).abs() > 1e-5 {
                        continue 'outer;
                    }
                }
            }
            circulant_at = Some(b);
            break;
        }
        assert!(
            circulant_at.is_some(),
            "u_z must be circulant at a candidate size"
        );
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn tuned_circulant_needs_candidates() {
        let mut m = net(7);
        prune_block_circulant_tuned(&mut m, &[], &[], 4.0, oneshot());
    }

    #[test]
    #[should_panic(expected = "rate must be >= 1")]
    fn invalid_rate_rejected() {
        let mut m = net(5);
        prune_unstructured(&mut m, &[], 0.5, oneshot());
    }
}
