//! The ADMM pruning engine (paper §III-C, Eqs. (1)–(5)).
//!
//! The constrained problem `min f(W) s.t. W ∈ S` is relaxed to the augmented
//! Lagrangian of Eq. (2) and solved by alternating:
//!
//! 1. **W-update (Eq. 3)** — a few epochs of ordinary training with the
//!    extra quadratic penalty `ρ/2 ‖W − Z + U‖²_F`, whose gradient
//!    `ρ (W − Z + U)` is simply added to each prunable tensor's gradient;
//! 2. **Z-update (Eq. 4)** — the Euclidean projection of `W + U` onto the
//!    constraint set, supplied by a [`Projection`];
//! 3. **U-update (Eq. 5)** — the running dual residual `U += W − Z`.
//!
//! After the outer iterations converge, the network is *hard-pruned* to the
//! final `Z`'s support and fine-tuned with the mask pinned (masked
//! retraining), exactly as Algorithm 1 prescribes. The same engine drives
//! BSP's two steps and every baseline scheme — they differ only in the
//! projection.

use crate::mask::MaskSet;
use crate::network::PrunableNetwork;
use crate::projection::Projection;
use rtm_rnn::optimizer::{Adam, GradClip, Optimizer};
use rtm_tensor::Matrix;
use std::collections::BTreeMap;

/// One training sequence: frames and per-frame targets.
pub type Sequence = (Vec<Vec<f32>>, Vec<usize>);

/// Hyper-parameters of the ADMM loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmConfig {
    /// Penalty coefficient ρ (per-tensor, uniform).
    pub rho: f32,
    /// Number of outer ADMM iterations (`k` in Eqs. (3)–(5)).
    pub admm_iterations: usize,
    /// W-update epochs per outer iteration.
    pub epochs_per_iteration: usize,
    /// Masked fine-tuning epochs after hard pruning.
    pub finetune_epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Optional global-norm gradient clip.
    pub clip: Option<GradClip>,
}

impl Default for AdmmConfig {
    fn default() -> AdmmConfig {
        AdmmConfig {
            rho: 5.0,
            admm_iterations: 3,
            epochs_per_iteration: 2,
            finetune_epochs: 3,
            lr: 3e-3,
            clip: Some(GradClip::new(5.0)),
        }
    }
}

/// Result of an ADMM pruning run.
#[derive(Debug, Clone)]
pub struct AdmmOutcome {
    /// Final binary masks for mask-style schemes (`None` entries for
    /// value-transforming schemes like block-circulant never appear here;
    /// the whole mask set is empty in that case).
    pub mask: MaskSet,
    /// Mean training loss after each epoch (W-update and fine-tune).
    pub loss_history: Vec<f32>,
    /// Frobenius primal residual `‖W − Z‖` after each outer iteration.
    pub residuals: Vec<f32>,
    /// Relative primal residual `‖W − Z‖ / ‖W‖` after each outer iteration —
    /// the scale-free convergence measure (training grows `‖W‖`, so the
    /// absolute residual alone can rise while ADMM is converging).
    pub relative_residuals: Vec<f32>,
}

/// The ADMM pruning engine. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct AdmmPruner {
    cfg: AdmmConfig,
}

impl AdmmPruner {
    /// Creates an engine with the given hyper-parameters.
    pub fn new(cfg: AdmmConfig) -> AdmmPruner {
        AdmmPruner { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }

    /// Runs ADMM pruning of `net` on `data`, building one projection per
    /// prunable tensor via `projection_for(name, tensor)`. Works on any
    /// [`PrunableNetwork`] — the paper's GRU and the LSTM extension alike.
    ///
    /// With empty `data` the W-updates are skipped and the method reduces to
    /// one-shot projection + hard pruning (useful for performance-only
    /// experiments that do not need accuracy).
    pub fn run<N: PrunableNetwork>(
        &self,
        net: &mut N,
        data: &[Sequence],
        projection_for: &dyn Fn(&str, &Matrix) -> Box<dyn Projection>,
    ) -> AdmmOutcome {
        // Build per-tensor projections and initialize Z = project(W), U = 0.
        let mut projections: BTreeMap<String, Box<dyn Projection>> = BTreeMap::new();
        let mut z: BTreeMap<String, Matrix> = BTreeMap::new();
        let mut u: BTreeMap<String, Matrix> = BTreeMap::new();
        for (name, w) in net.prunable() {
            let proj = projection_for(&name, w);
            z.insert(name.clone(), proj.project(w));
            u.insert(name.clone(), Matrix::zeros(w.rows(), w.cols()));
            projections.insert(name, proj);
        }

        let mut loss_history = Vec::new();
        let mut residuals = Vec::new();
        let mut relative_residuals = Vec::new();
        let mut opt = Adam::new(self.cfg.lr);

        for _iter in 0..self.cfg.admm_iterations {
            // W-update: train with the augmented-Lagrangian penalty.
            for _epoch in 0..self.cfg.epochs_per_iteration {
                if data.is_empty() {
                    break;
                }
                let mean = self.penalized_epoch(net, data, &z, &u, &mut opt);
                loss_history.push(mean);
            }
            // Z-update and U-update.
            let mut sq_residual = 0.0f32;
            let mut sq_weight = 0.0f32;
            for (_name, w) in net.prunable() {
                sq_weight += w.as_slice().iter().map(|v| v * v).sum::<f32>();
            }
            for (name, w) in net.prunable() {
                let proj = &projections[&name];
                let zu = {
                    let ui = &u[&name];
                    w.zip_map(ui, |a, b| a + b).expect("shapes match")
                };
                let z_new = proj.project(&zu);
                let r = w.zip_map(&z_new, |a, b| a - b).expect("shapes match");
                sq_residual += r.as_slice().iter().map(|v| v * v).sum::<f32>();
                let u_entry = u.get_mut(&name).expect("u initialized");
                *u_entry = zu.zip_map(&z_new, |a, b| a - b).expect("shapes match");
                z.insert(name, z_new);
            }
            residuals.push(sq_residual.sqrt());
            relative_residuals.push(sq_residual.sqrt() / sq_weight.sqrt().max(1e-12));
        }

        // Hard prune: mask-style tensors get masked; value-transforming
        // tensors are replaced by their projection.
        let mut mask_set = MaskSet::new();
        for (name, w) in net.prunable_mut() {
            let proj = &projections[&name];
            match proj.mask(&z[&name]) {
                Some(mask) => {
                    for (wi, mi) in w.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                        *wi *= mi;
                    }
                    mask_set.insert(name, mask);
                }
                None => {
                    *w = z[&name].clone();
                }
            }
        }

        // Masked fine-tuning: keep pruned coordinates at zero (and keep
        // value-transforming tensors on their constraint set) after every
        // optimizer step. The learning rate decays geometrically — hard
        // pruning is a large perturbation and a fixed-lr Adam recovery is
        // noisy across seeds; the decay anneals into the recovered basin.
        let mut ft_opt = Adam::new(self.cfg.lr);
        for epoch in 0..self.cfg.finetune_epochs {
            if data.is_empty() {
                break;
            }
            ft_opt.set_learning_rate(self.cfg.lr * 0.92f32.powi(epoch as i32));
            let mut total = 0.0f32;
            for (frames, targets) in data {
                total +=
                    self.masked_step(net, frames, targets, &mut ft_opt, &mask_set, &projections);
            }
            loss_history.push(total / data.len() as f32);
        }

        AdmmOutcome {
            mask: mask_set,
            loss_history,
            residuals,
            relative_residuals,
        }
    }

    /// One epoch of penalized training; returns the mean data loss.
    ///
    /// The data loss is minimized through the network's own training step
    /// (Adam + optional clipping); the ADMM penalty `ρ/2 ‖W − Z + U‖²` is
    /// applied as a *decoupled* proximal step after each update
    /// (`W -= lr·ρ·(W − Z + U)`), the same decoupling AdamW uses for weight
    /// decay. Folding the penalty into the Adam gradient instead would let
    /// Adam's per-coordinate normalization erase the ρ scaling and stall
    /// convergence toward the constraint set.
    fn penalized_epoch<N: PrunableNetwork>(
        &self,
        net: &mut N,
        data: &[Sequence],
        z: &BTreeMap<String, Matrix>,
        u: &BTreeMap<String, Matrix>,
        opt: &mut Adam,
    ) -> f32 {
        // Contraction factor per step toward Z - U; clamp for stability.
        let step = (self.cfg.rho * self.cfg.lr).min(0.9);
        let mut total = 0.0f32;
        for (frames, targets) in data {
            total += net.train_sequence(frames, targets, opt, self.cfg.clip);

            // Decoupled proximal penalty step.
            for (name, w) in net.prunable_mut() {
                let zi = &z[&name];
                let ui = &u[&name];
                let ws = w.as_mut_slice();
                for ((wv, &zv), &uv) in ws.iter_mut().zip(zi.as_slice()).zip(ui.as_slice()) {
                    *wv -= step * (*wv - zv + uv);
                }
            }
        }
        total / data.len().max(1) as f32
    }

    /// One masked training step; returns the data loss.
    fn masked_step<N: PrunableNetwork>(
        &self,
        net: &mut N,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut Adam,
        masks: &MaskSet,
        projections: &BTreeMap<String, Box<dyn Projection>>,
    ) -> f32 {
        let loss = net.train_sequence(frames, targets, opt, self.cfg.clip);
        masks.apply(net);
        // Re-project value-transforming tensors (those without a mask).
        for (name, w) in net.prunable_mut() {
            if masks.get(&name).is_none() {
                if let Some(proj) = projections.get(&name) {
                    *w = proj.project(w);
                }
            }
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{BlockCirculant, UnstructuredMagnitude};
    use rtm_rnn::{GruNetwork, NetworkConfig};

    fn tiny_net(seed: u64) -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 4,
                hidden_dims: vec![8],
                num_classes: 2,
            },
            seed,
        )
    }

    fn toy_data() -> Vec<Sequence> {
        let a: Vec<Vec<f32>> = (0..5).map(|_| vec![1.0, 1.0, 0.0, 0.0]).collect();
        let b: Vec<Vec<f32>> = (0..5).map(|_| vec![0.0, 0.0, 1.0, 1.0]).collect();
        vec![(a, vec![0; 5]), (b, vec![1; 5])]
    }

    #[test]
    fn one_shot_projection_without_data() {
        let mut net = tiny_net(1);
        let pruner = AdmmPruner::new(AdmmConfig {
            admm_iterations: 1,
            ..AdmmConfig::default()
        });
        let out = pruner.run(&mut net, &[], &|_, _| {
            Box::new(UnstructuredMagnitude::new(0.25))
        });
        // 75% of prunable weights are now zero.
        let sparsity =
            1.0 - net.nonzero_prunable_params() as f64 / net.total_prunable_params() as f64;
        assert!((sparsity - 0.75).abs() < 0.02, "sparsity {sparsity}");
        assert!(!out.mask.is_empty());
        assert!(out.loss_history.is_empty());
        assert_eq!(out.residuals.len(), 1);
    }

    #[test]
    fn mask_matches_network_support() {
        let mut net = tiny_net(3);
        let pruner = AdmmPruner::new(AdmmConfig::default());
        let out = pruner.run(&mut net, &[], &|_, _| {
            Box::new(UnstructuredMagnitude::new(0.5))
        });
        for (name, w) in net.prunable() {
            let mask = out.mask.get(&name).expect("mask exists");
            for (wi, mi) in w.as_slice().iter().zip(mask.as_slice()) {
                if *mi == 0.0 {
                    assert_eq!(*wi, 0.0, "{name}: pruned weight must be zero");
                }
            }
        }
    }

    #[test]
    fn training_under_admm_reduces_loss_and_prunes() {
        let mut net = tiny_net(5);
        let data = toy_data();
        let cfg = AdmmConfig {
            rho: 2.0,
            admm_iterations: 2,
            epochs_per_iteration: 15,
            finetune_epochs: 15,
            lr: 0.01,
            clip: Some(GradClip::new(5.0)),
        };
        let pruner = AdmmPruner::new(cfg);
        let out = pruner.run(&mut net, &data, &|_, _| {
            Box::new(UnstructuredMagnitude::new(0.5))
        });
        assert!(out.loss_history.len() >= 4);
        let first = out.loss_history[0];
        let last = *out.loss_history.last().unwrap();
        assert!(last < first, "loss must fall under ADMM: {first} -> {last}");
        // Final sparsity honours the 50% constraint.
        let sparsity =
            1.0 - net.nonzero_prunable_params() as f64 / net.total_prunable_params() as f64;
        assert!((sparsity - 0.5).abs() < 0.02);
        // Pruned model still classifies the toy task.
        let (frames, targets) = &data[0];
        let preds = net.predict(frames);
        assert_eq!(&preds, targets);
    }

    #[test]
    fn residuals_shrink_over_iterations() {
        let mut net = tiny_net(7);
        let data = toy_data();
        let cfg = AdmmConfig {
            rho: 50.0,
            admm_iterations: 5,
            epochs_per_iteration: 5,
            finetune_epochs: 0,
            lr: 1e-3,
            clip: None,
        };
        let out = AdmmPruner::new(cfg).run(&mut net, &data, &|_, _| {
            Box::new(UnstructuredMagnitude::new(0.3))
        });
        assert_eq!(out.residuals.len(), 5);
        assert_eq!(out.relative_residuals.len(), 5);
        // The scale-free primal residual trends down (the W iterate
        // approaches the constraint set relative to its own norm).
        assert!(
            out.relative_residuals.last().unwrap() < &out.relative_residuals[0],
            "relative residuals {:?}",
            out.relative_residuals
        );
    }

    #[test]
    fn block_circulant_scheme_keeps_dense_support() {
        let mut net = tiny_net(9);
        let pruner = AdmmPruner::new(AdmmConfig {
            admm_iterations: 1,
            finetune_epochs: 0,
            ..AdmmConfig::default()
        });
        let out = pruner.run(&mut net, &[], &|_, _| Box::new(BlockCirculant::new(4)));
        // No masks produced for a value-transforming scheme.
        assert!(out.mask.is_empty());
        // All u_* tensors (8x8) must now be block-circulant.
        let u = &net.layers[0].u_z;
        for d in 0..4 {
            let v0 = u[(0, d)];
            for i in 1..4 {
                assert!((u[(i, (i + d) % 4)] - v0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = AdmmConfig::default();
        assert!(cfg.rho > 0.0);
        assert!(cfg.admm_iterations > 0);
        let pruner = AdmmPruner::new(cfg);
        assert_eq!(pruner.config().admm_iterations, cfg.admm_iterations);
    }
}
