//! Constraint-set projections — the ADMM `Z`-update (paper Eq. (4)).
//!
//! ADMM reduces every pruning scheme to one primitive: the Euclidean
//! projection of a weight matrix onto the scheme's constraint set
//! `S = {W : structure(W) holds}`. For magnitude-style schemes the
//! projection keeps the largest entries allowed by the structure and zeroes
//! the rest; for C-LSTM's block-circulant scheme it averages along block
//! diagonals. Each comparison row of Table I corresponds to one
//! [`Projection`] implementation here:
//!
//! | Table I method | projection |
//! |---|---|
//! | BSP step 1 (ours) | [`BspColumnBlock`] |
//! | BSP step 2 (ours) | [`RowPrune`] |
//! | ESE | [`UnstructuredMagnitude`] |
//! | BBS | [`BankBalanced`] |
//! | Wang | [`ColumnPrune`] (+ [`RowPrune`]) |
//! | C-LSTM | [`BlockCirculant`] |
//! | PatDNN | [`PatternMask`] |

use rtm_tensor::stats::{block_col_norms, col_norms, kth_largest_abs, row_norms, top_k_indices};
use rtm_tensor::Matrix;
use std::fmt;

/// Euclidean projection onto a pruning constraint set.
///
/// Implementations must be deterministic: the same input always produces the
/// same output, so ADMM runs are reproducible.
pub trait Projection: fmt::Debug + Send + Sync {
    /// Projects `w` onto the constraint set.
    fn project(&self, w: &Matrix) -> Matrix;

    /// The binary support mask of the projection, when the scheme is
    /// mask-style (`Some`), or `None` for value-transforming schemes such as
    /// block-circulant.
    fn mask(&self, w: &Matrix) -> Option<Matrix> {
        let z = self.project(w);
        Some(z.map(|v| if v != 0.0 { 1.0 } else { 0.0 }))
    }

    /// Short scheme name for reports.
    fn name(&self) -> &'static str;
}

/// Keep the fraction `keep_ratio` of entries with the largest magnitude,
/// anywhere in the matrix (non-structured pruning; ESE / Han et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnstructuredMagnitude {
    keep_ratio: f64,
}

impl UnstructuredMagnitude {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < keep_ratio <= 1.0`.
    pub fn new(keep_ratio: f64) -> UnstructuredMagnitude {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1]"
        );
        UnstructuredMagnitude { keep_ratio }
    }
}

impl Projection for UnstructuredMagnitude {
    fn project(&self, w: &Matrix) -> Matrix {
        if w.is_empty() {
            return w.clone();
        }
        let k = ((w.len() as f64 * self.keep_ratio).round() as usize).max(1);
        let threshold = kth_largest_abs(w, k);
        // Keep entries strictly above, then fill ties up to k deterministically.
        let mut kept = 0usize;
        let mut out = w.map(|v| if v.abs() > threshold { v } else { 0.0 });
        kept += out.count_nonzero();
        if kept < k {
            // Admit tied-at-threshold entries in row-major order.
            let mut remaining = k - kept;
            let w_slice = w.as_slice();
            let out_slice = out.as_mut_slice();
            for (o, &v) in out_slice.iter_mut().zip(w_slice) {
                if remaining == 0 {
                    break;
                }
                if v.abs() == threshold && v != 0.0 && *o == 0.0 {
                    *o = v;
                    remaining -= 1;
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "unstructured-magnitude"
    }
}

/// BSP step 1: row-based column-block pruning (paper §IV-A).
///
/// The matrix is striped into `num_stripes` horizontal groups; each stripe is
/// cut into `num_blocks` column blocks; within each (stripe, block) the
/// columns with the largest L2 norm are kept, at ratio `col_keep_ratio`
/// (i.e. a column compression rate of `1 / col_keep_ratio`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspColumnBlock {
    num_stripes: usize,
    num_blocks: usize,
    col_keep_ratio: f64,
}

impl BspColumnBlock {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics if either partition count is zero or the ratio is not in
    /// `(0, 1]`.
    pub fn new(num_stripes: usize, num_blocks: usize, col_keep_ratio: f64) -> BspColumnBlock {
        assert!(
            num_stripes > 0 && num_blocks > 0,
            "partition must be positive"
        );
        assert!(
            col_keep_ratio > 0.0 && col_keep_ratio <= 1.0,
            "col_keep_ratio must be in (0, 1]"
        );
        BspColumnBlock {
            num_stripes,
            num_blocks,
            col_keep_ratio,
        }
    }

    /// Stripe count (`Numr`).
    pub fn num_stripes(&self) -> usize {
        self.num_stripes
    }

    /// Block count (`Numc`).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }
}

impl Projection for BspColumnBlock {
    fn project(&self, w: &Matrix) -> Matrix {
        let (rows, cols) = w.shape();
        if rows == 0 || cols == 0 {
            return w.clone();
        }
        let stripes = self.num_stripes.min(rows);
        let blocks = self.num_blocks.min(cols);
        let stripe_h = rows.div_ceil(stripes);
        let block_w = cols.div_ceil(blocks);
        let mut out = Matrix::zeros(rows, cols);
        for s in 0..stripes {
            let r0 = s * stripe_h;
            let r1 = ((s + 1) * stripe_h).min(rows);
            if r0 >= r1 {
                continue;
            }
            for b in 0..blocks {
                let c0 = b * block_w;
                let c1 = ((b + 1) * block_w).min(cols);
                if c0 >= c1 {
                    continue;
                }
                let width = c1 - c0;
                let keep = ((width as f64 * self.col_keep_ratio).round() as usize)
                    .max(1)
                    .min(width);
                let norms = block_col_norms(w, r0, r1, c0, c1);
                for local in top_k_indices(&norms, keep) {
                    let c = c0 + local;
                    for r in r0..r1 {
                        out[(r, c)] = w[(r, c)];
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "bsp-column-block"
    }
}

/// BSP step 2 (and the row half of Wang): keep the fraction `keep_ratio` of
/// whole rows with the largest L2 norm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowPrune {
    keep_ratio: f64,
}

impl RowPrune {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < keep_ratio <= 1.0`.
    pub fn new(keep_ratio: f64) -> RowPrune {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1]"
        );
        RowPrune { keep_ratio }
    }
}

impl Projection for RowPrune {
    fn project(&self, w: &Matrix) -> Matrix {
        let rows = w.rows();
        if rows == 0 {
            return w.clone();
        }
        let keep = ((rows as f64 * self.keep_ratio).round() as usize)
            .max(1)
            .min(rows);
        let norms = row_norms(w);
        let mut out = Matrix::zeros(rows, w.cols());
        for r in top_k_indices(&norms, keep) {
            out.row_mut(r).copy_from_slice(w.row(r));
        }
        out
    }

    fn name(&self) -> &'static str {
        "row-prune"
    }
}

/// Whole-column structured pruning (Wang et al.; also "channel pruning" on
/// the GEMM view of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnPrune {
    keep_ratio: f64,
}

impl ColumnPrune {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < keep_ratio <= 1.0`.
    pub fn new(keep_ratio: f64) -> ColumnPrune {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1]"
        );
        ColumnPrune { keep_ratio }
    }
}

impl Projection for ColumnPrune {
    fn project(&self, w: &Matrix) -> Matrix {
        let cols = w.cols();
        if cols == 0 {
            return w.clone();
        }
        let keep = ((cols as f64 * self.keep_ratio).round() as usize)
            .max(1)
            .min(cols);
        let norms = col_norms(w);
        let kept = top_k_indices(&norms, keep);
        let mut keep_flag = vec![false; cols];
        for c in kept {
            keep_flag[c] = true;
        }
        Matrix::from_fn(
            w.rows(),
            cols,
            |r, c| if keep_flag[c] { w[(r, c)] } else { 0.0 },
        )
    }

    fn name(&self) -> &'static str {
        "column-prune"
    }
}

/// Bank-balanced sparsity (BBS, Cao et al. FPGA'19): each row is split into
/// `num_banks` equal banks and the same number of largest-magnitude entries
/// is kept in every bank, giving balanced rows without global structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankBalanced {
    num_banks: usize,
    keep_ratio: f64,
}

impl BankBalanced {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks == 0` or the ratio is not in `(0, 1]`.
    pub fn new(num_banks: usize, keep_ratio: f64) -> BankBalanced {
        assert!(num_banks > 0, "bank count must be positive");
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1]"
        );
        BankBalanced {
            num_banks,
            keep_ratio,
        }
    }
}

impl Projection for BankBalanced {
    fn project(&self, w: &Matrix) -> Matrix {
        let (rows, cols) = w.shape();
        if rows == 0 || cols == 0 {
            return w.clone();
        }
        let banks = self.num_banks.min(cols);
        let bank_w = cols.div_ceil(banks);
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row = w.row(r);
            for b in 0..banks {
                let c0 = b * bank_w;
                let c1 = ((b + 1) * bank_w).min(cols);
                if c0 >= c1 {
                    continue;
                }
                let width = c1 - c0;
                let keep = ((width as f64 * self.keep_ratio).round() as usize)
                    .max(1)
                    .min(width);
                let mags: Vec<f32> = row[c0..c1].iter().map(|v| v.abs()).collect();
                for local in top_k_indices(&mags, keep) {
                    out[(r, c0 + local)] = row[c0 + local];
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "bank-balanced"
    }
}

/// Pattern-based pruning (PatDNN, Niu et al. ASPLOS'20): every row is cut
/// into `block_w`-wide blocks and each block keeps exactly `pattern_nnz`
/// entries, but only at column offsets drawn from a small learned
/// dictionary of at most `num_patterns` offset patterns. The dictionary is
/// built by frequency: each block votes for its own top-`pattern_nnz`
/// offset set, the most popular sets win (lexicographically smallest first
/// on ties, so runs are deterministic), and every block then adopts the
/// dictionary pattern that retains the most energy (Σv²).
///
/// The resulting support is exactly what [`CsbMatrix`](rtm_sparse) likes:
/// whole small blocks share one of a few kept-column lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMask {
    block_w: usize,
    pattern_nnz: usize,
    num_patterns: usize,
}

impl PatternMask {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics if any of `block_w`, `pattern_nnz`, `num_patterns` is zero,
    /// or if `pattern_nnz > block_w`.
    pub fn new(block_w: usize, pattern_nnz: usize, num_patterns: usize) -> PatternMask {
        assert!(block_w > 0, "block width must be positive");
        assert!(
            pattern_nnz > 0 && pattern_nnz <= block_w,
            "pattern nnz must be in [1, block_w]"
        );
        assert!(num_patterns > 0, "pattern dictionary must be non-empty");
        PatternMask {
            block_w,
            pattern_nnz,
            num_patterns,
        }
    }

    /// Block width the patterns span.
    pub fn block_w(&self) -> usize {
        self.block_w
    }

    /// Entries kept per block.
    pub fn pattern_nnz(&self) -> usize {
        self.pattern_nnz
    }

    /// Dictionary capacity.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The frequency-ranked offset-pattern dictionary this matrix votes
    /// for (at most `num_patterns` entries, each a sorted offset list).
    pub fn dictionary(&self, w: &Matrix) -> Vec<Vec<usize>> {
        let (rows, cols) = w.shape();
        if rows == 0 || cols == 0 {
            return Vec::new();
        }
        let bw = self.block_w.min(cols);
        // Votes from full-width blocks only: ragged tail blocks cannot
        // express every offset, so they adopt but do not elect patterns.
        let mut counts: std::collections::BTreeMap<Vec<usize>, usize> =
            std::collections::BTreeMap::new();
        for r in 0..rows {
            let row = w.row(r);
            let mut c0 = 0;
            while c0 + bw <= cols {
                let mags: Vec<f32> = row[c0..c0 + bw].iter().map(|v| v.abs()).collect();
                let mut offs = top_k_indices(&mags, self.pattern_nnz.min(bw));
                offs.sort_unstable();
                *counts.entry(offs).or_insert(0) += 1;
                c0 += bw;
            }
        }
        // BTreeMap iterates patterns in ascending lexicographic order, so a
        // stable sort by descending count breaks ties toward the smaller
        // pattern — deterministic across runs.
        let mut ranked: Vec<(Vec<usize>, usize)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        ranked.truncate(self.num_patterns);
        ranked.into_iter().map(|(p, _)| p).collect()
    }
}

impl Projection for PatternMask {
    fn project(&self, w: &Matrix) -> Matrix {
        let (rows, cols) = w.shape();
        if rows == 0 || cols == 0 {
            return w.clone();
        }
        let bw = self.block_w.min(cols);
        let dict = self.dictionary(w);
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row = w.row(r);
            for c0 in (0..cols).step_by(bw) {
                let width = (cols - c0).min(bw);
                // Pick the dictionary pattern retaining the most energy in
                // this block; offsets past a ragged edge retain nothing.
                let best = dict
                    .iter()
                    .max_by(|a, b| {
                        let ea: f32 = a
                            .iter()
                            .filter(|&&o| o < width)
                            .map(|&o| row[c0 + o] * row[c0 + o])
                            .sum();
                        let eb: f32 = b
                            .iter()
                            .filter(|&&o| o < width)
                            .map(|&o| row[c0 + o] * row[c0 + o])
                            .sum();
                        // max_by keeps the *last* max on ties; compare with
                        // the earlier (more frequent) pattern winning them.
                        ea.partial_cmp(&eb)
                            .expect("finite energies")
                            .then(std::cmp::Ordering::Greater)
                    })
                    .cloned();
                if let Some(pat) = best {
                    for &o in pat.iter().filter(|&&o| o < width) {
                        out[(r, c0 + o)] = row[c0 + o];
                    }
                } else {
                    // Empty dictionary (no full-width block anywhere): fall
                    // back to per-block magnitude top-k.
                    let mags: Vec<f32> = row[c0..c0 + width].iter().map(|v| v.abs()).collect();
                    for o in top_k_indices(&mags, self.pattern_nnz.min(width)) {
                        out[(r, c0 + o)] = row[c0 + o];
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "pattern-mask"
    }
}

/// Block-circulant projection (C-LSTM, Wang et al. FPGA'18): each
/// `block_size × block_size` block is replaced by its nearest circulant
/// matrix — every wrapped diagonal is averaged. A full block then stores only
/// `block_size` distinct values, giving a compression rate of `block_size`.
/// Ragged edge blocks (when dimensions do not divide) are left unconstrained,
/// as in the original paper's padding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCirculant {
    block_size: usize,
}

impl BlockCirculant {
    /// Creates the projection.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(block_size: usize) -> BlockCirculant {
        assert!(block_size > 0, "block size must be positive");
        BlockCirculant { block_size }
    }

    /// The block edge (also the per-block compression rate).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of distinct parameters a `rows × cols` matrix stores under
    /// this scheme: `b` values per full `b × b` block plus every ragged-edge
    /// entry verbatim.
    pub fn stored_params(&self, rows: usize, cols: usize) -> usize {
        let b = self.block_size;
        let full_r = rows / b;
        let full_c = cols / b;
        let full = full_r * full_c * b;
        let ragged = rows * cols - (full_r * b) * (full_c * b);
        full + ragged
    }
}

impl Projection for BlockCirculant {
    fn project(&self, w: &Matrix) -> Matrix {
        let (rows, cols) = w.shape();
        let b = self.block_size;
        let mut out = w.clone();
        for r0 in (0..rows).step_by(b) {
            if r0 + b > rows {
                break; // ragged edge rows stay unconstrained
            }
            for c0 in (0..cols).step_by(b) {
                if c0 + b > cols {
                    break;
                }
                // Average along wrapped diagonals: diagonal d collects
                // entries (i, (i + d) mod b).
                for d in 0..b {
                    let mut sum = 0.0f32;
                    for i in 0..b {
                        sum += w[(r0 + i, c0 + (i + d) % b)];
                    }
                    let avg = sum / b as f32;
                    for i in 0..b {
                        out[(r0 + i, c0 + (i + d) % b)] = avg;
                    }
                }
            }
        }
        out
    }

    fn mask(&self, _w: &Matrix) -> Option<Matrix> {
        // Value-transforming scheme: support stays dense.
        None
    }

    fn name(&self) -> &'static str {
        "block-circulant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix() -> Matrix {
        Matrix::from_fn(8, 8, |r, c| ((r * 8 + c) as f32 * 0.37).sin())
    }

    #[test]
    fn unstructured_keeps_exact_count() {
        let w = test_matrix();
        for ratio in [0.1, 0.25, 0.5, 1.0] {
            let p = UnstructuredMagnitude::new(ratio);
            let z = p.project(&w);
            // Entries that are exactly zero cannot be "kept", so the target
            // count is capped by the input's nonzero count (the test matrix
            // contains sin(0) = 0).
            let want = ((64.0 * ratio).round() as usize)
                .max(1)
                .min(w.count_nonzero());
            assert_eq!(z.count_nonzero(), want, "ratio {ratio}");
        }
    }

    #[test]
    fn unstructured_keeps_largest() {
        let w = Matrix::from_rows(&[&[0.1, -5.0, 0.2, 3.0]]).unwrap();
        let z = UnstructuredMagnitude::new(0.5).project(&w);
        assert_eq!(z.as_slice(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn unstructured_handles_ties() {
        let w = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]).unwrap();
        let z = UnstructuredMagnitude::new(0.5).project(&w);
        assert_eq!(z.count_nonzero(), 2);
    }

    #[test]
    fn bsp_block_structure_holds() {
        let w = test_matrix();
        // 2 stripes x 2 blocks, keep 25% of columns per block (1 of 4).
        let p = BspColumnBlock::new(2, 2, 0.25);
        let z = p.project(&w);
        // Within each stripe-block, surviving columns must be column-uniform:
        // a column is either fully kept or fully zero across the stripe rows.
        for s in 0..2 {
            for b in 0..2 {
                for c in 0..4 {
                    let col = b * 4 + c;
                    let vals: Vec<bool> =
                        (s * 4..(s + 1) * 4).map(|r| z[(r, col)] != 0.0).collect();
                    assert!(
                        vals.iter().all(|&x| x == vals[0]),
                        "column {col} must be uniform within stripe {s}"
                    );
                }
                // Exactly 1 of 4 columns kept per block.
                let kept: usize = (b * 4..(b + 1) * 4)
                    .filter(|&col| z[(s * 4, col)] != 0.0 || z[(s * 4 + 1, col)] != 0.0)
                    .count();
                assert_eq!(kept, 1, "stripe {s} block {b}");
            }
        }
    }

    #[test]
    fn bsp_keeps_highest_norm_columns() {
        // One dominant column per block must survive.
        let mut w = Matrix::zeros(4, 4);
        for r in 0..4 {
            w[(r, 1)] = 10.0; // block 0 dominant
            w[(r, 3)] = 10.0; // block 1 dominant
            w[(r, 0)] = 0.1;
            w[(r, 2)] = 0.1;
        }
        let z = BspColumnBlock::new(1, 2, 0.5).project(&w);
        assert_eq!(z.col(1), vec![10.0; 4]);
        assert_eq!(z.col(3), vec![10.0; 4]);
        assert_eq!(z.col(0), vec![0.0; 4]);
    }

    #[test]
    fn row_prune_keeps_top_rows() {
        let w = Matrix::from_rows(&[&[10.0, 10.0], &[0.1, 0.1], &[5.0, 5.0], &[0.2, 0.2]]).unwrap();
        let z = RowPrune::new(0.5).project(&w);
        assert_eq!(z.row(0), &[10.0, 10.0]);
        assert_eq!(z.row(2), &[5.0, 5.0]);
        assert_eq!(z.row(1), &[0.0, 0.0]);
        assert_eq!(z.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn column_prune_keeps_top_columns() {
        let w = Matrix::from_rows(&[&[10.0, 0.1, 5.0, 0.2], &[10.0, 0.1, 5.0, 0.2]]).unwrap();
        let z = ColumnPrune::new(0.5).project(&w);
        assert_eq!(z.col(0), vec![10.0; 2]);
        assert_eq!(z.col(2), vec![5.0; 2]);
        assert_eq!(z.col(1), vec![0.0; 2]);
    }

    #[test]
    fn bank_balanced_per_row_per_bank() {
        let w = Matrix::from_rows(&[
            &[9.0, 0.1, 0.2, 8.0], // bank 0: keep 9.0; bank 1: keep 8.0
            &[0.1, 7.0, 6.0, 0.2],
        ])
        .unwrap();
        let z = BankBalanced::new(2, 0.5).project(&w);
        assert_eq!(z.row(0), &[9.0, 0.0, 0.0, 8.0]);
        assert_eq!(z.row(1), &[0.0, 7.0, 6.0, 0.0]);
        // Every row has identical nnz — the "balanced" property.
        assert_eq!(
            z.row(0).iter().filter(|&&v| v != 0.0).count(),
            z.row(1).iter().filter(|&&v| v != 0.0).count()
        );
    }

    #[test]
    fn block_circulant_produces_circulant_blocks() {
        let w = test_matrix();
        let p = BlockCirculant::new(4);
        let z = p.project(&w);
        // Check circulant property: z[i][(i+d)%b] constant along d.
        for r0 in (0..8).step_by(4) {
            for c0 in (0..8).step_by(4) {
                for d in 0..4 {
                    let v0 = z[(r0, c0 + d)];
                    for i in 1..4 {
                        assert!(
                            (z[(r0 + i, c0 + (i + d) % 4)] - v0).abs() < 1e-6,
                            "diagonal {d} must be constant"
                        );
                    }
                }
            }
        }
        // No mask for a value-transforming scheme.
        assert!(p.mask(&w).is_none());
    }

    #[test]
    fn block_circulant_is_projection_fixpoint() {
        // Projecting twice equals projecting once (idempotence).
        let w = test_matrix();
        let p = BlockCirculant::new(4);
        let z1 = p.project(&w);
        let z2 = p.project(&z1);
        for (a, b) in z1.as_slice().iter().zip(z2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn block_circulant_ragged_edges_untouched() {
        let w = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f32);
        let z = BlockCirculant::new(4).project(&w);
        // Row 4 and column 4 are outside any full 4x4 block.
        assert_eq!(z.row(4), w.row(4));
        assert_eq!(z.col(4), w.col(4));
    }

    #[test]
    fn pattern_mask_blocks_use_dictionary_patterns() {
        let w = test_matrix();
        let p = PatternMask::new(4, 2, 3);
        let dict = p.dictionary(&w);
        assert!(!dict.is_empty() && dict.len() <= 3);
        let z = p.project(&w);
        // Every full block's kept-offset set must be one of the dictionary
        // patterns (restricted to offsets the block actually kept).
        for r in 0..8 {
            for c0 in (0..8).step_by(4) {
                let offs: Vec<usize> = (0..4).filter(|&o| z[(r, c0 + o)] != 0.0).collect();
                assert!(
                    dict.iter().any(|p| offs.iter().all(|o| p.contains(o))),
                    "row {r} block {c0}: offsets {offs:?} not from dictionary {dict:?}"
                );
            }
        }
    }

    #[test]
    fn pattern_mask_uniform_rows_share_one_pattern() {
        // Every row identical → one pattern dominates and every block
        // keeps exactly the same offsets.
        let w = Matrix::from_fn(6, 8, |_, c| [0.1, 9.0, 0.2, 8.0, 0.1, 9.0, 0.2, 8.0][c]);
        let p = PatternMask::new(4, 2, 2);
        let dict = p.dictionary(&w);
        assert_eq!(dict[0], vec![1, 3]);
        let z = p.project(&w);
        for r in 0..6 {
            assert_eq!(z.row(r), &[0.0, 9.0, 0.0, 8.0, 0.0, 9.0, 0.0, 8.0]);
        }
    }

    #[test]
    fn pattern_mask_ragged_tail_handled() {
        // 10 columns with block_w 4: the last block is 2 wide and must
        // still prune without panicking or keeping out-of-range offsets.
        let w = Matrix::from_fn(3, 10, |r, c| 1.0 + (r * 10 + c) as f32 / 10.0);
        let z = PatternMask::new(4, 2, 4).project(&w);
        assert_eq!(z.shape(), (3, 10));
        for r in 0..3 {
            let nnz = z.row(r).iter().filter(|&&v| v != 0.0).count();
            assert!(nnz <= 6, "row {r} kept {nnz}");
        }
    }

    #[test]
    fn projection_names() {
        assert_eq!(
            UnstructuredMagnitude::new(0.5).name(),
            "unstructured-magnitude"
        );
        assert_eq!(BspColumnBlock::new(1, 1, 0.5).name(), "bsp-column-block");
        assert_eq!(RowPrune::new(0.5).name(), "row-prune");
        assert_eq!(ColumnPrune::new(0.5).name(), "column-prune");
        assert_eq!(BankBalanced::new(2, 0.5).name(), "bank-balanced");
        assert_eq!(PatternMask::new(4, 2, 8).name(), "pattern-mask");
        assert_eq!(BlockCirculant::new(2).name(), "block-circulant");
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| UnstructuredMagnitude::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| UnstructuredMagnitude::new(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| BspColumnBlock::new(0, 1, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| BankBalanced::new(0, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| PatternMask::new(0, 1, 4)).is_err());
        assert!(std::panic::catch_unwind(|| PatternMask::new(4, 5, 4)).is_err());
        assert!(std::panic::catch_unwind(|| PatternMask::new(4, 2, 0)).is_err());
        assert!(std::panic::catch_unwind(|| BlockCirculant::new(0)).is_err());
    }

    /// All mask-style projections: projecting twice must equal projecting
    /// once on the support level, and the default mask must match the
    /// projected support.
    #[test]
    fn masks_match_support() {
        let w = test_matrix();
        let projections: Vec<Box<dyn Projection>> = vec![
            Box::new(UnstructuredMagnitude::new(0.3)),
            Box::new(BspColumnBlock::new(2, 2, 0.5)),
            Box::new(RowPrune::new(0.5)),
            Box::new(ColumnPrune::new(0.25)),
            Box::new(BankBalanced::new(4, 0.5)),
            Box::new(PatternMask::new(4, 2, 6)),
        ];
        for p in &projections {
            let z = p.project(&w);
            let mask = p.mask(&w).expect("mask-style projection");
            for (zi, mi) in z.as_slice().iter().zip(mask.as_slice()) {
                assert_eq!(*mi != 0.0, *zi != 0.0, "{}", p.name());
            }
        }
    }

    /// Projections never increase the Frobenius norm and never invent
    /// values (each output entry is either 0, the input value, or — for
    /// circulant — a convex average of input values).
    #[test]
    fn prop_projection_contracts() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let w = rtm_tensor::init::uniform(8, 8, -1.0, 1.0, &mut rng);
            let projections: Vec<Box<dyn Projection>> = vec![
                Box::new(UnstructuredMagnitude::new(0.4)),
                Box::new(BspColumnBlock::new(2, 2, 0.5)),
                Box::new(RowPrune::new(0.5)),
                Box::new(ColumnPrune::new(0.5)),
                Box::new(BankBalanced::new(2, 0.5)),
                Box::new(PatternMask::new(4, 2, 6)),
                Box::new(BlockCirculant::new(4)),
            ];
            for p in &projections {
                let z = p.project(&w);
                assert!(
                    z.frobenius_norm() <= w.frobenius_norm() + 1e-4,
                    "seed {seed}: {} inflated the norm",
                    p.name()
                );
                assert_eq!(z.shape(), w.shape(), "seed {seed}");
            }
        }
    }
}
