//! Named binary pruning masks.
//!
//! A [`MaskSet`] maps tensor names (the stable names from
//! [`GruNetwork::prunable_mut`](rtm_rnn::GruNetwork::prunable_mut)) to 0/1
//! matrices. Masks are the contract between the pruning algorithms and the
//! masked-retraining loop: after every optimizer step the mask is re-applied
//! so pruned weights stay exactly zero.

use crate::network::PrunableNetwork;
use rtm_tensor::Matrix;
use std::collections::BTreeMap;

/// A collection of named binary masks (1.0 = keep, 0.0 = pruned).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MaskSet {
    masks: BTreeMap<String, Matrix>,
}

impl MaskSet {
    /// Creates an empty set.
    pub fn new() -> MaskSet {
        MaskSet::default()
    }

    /// All-ones masks matching every prunable tensor of `net`.
    pub fn ones_like<N: PrunableNetwork>(net: &N) -> MaskSet {
        let mut set = MaskSet::new();
        for (name, m) in net.prunable() {
            set.insert(name, Matrix::filled(m.rows(), m.cols(), 1.0));
        }
        set
    }

    /// Derives masks from the current support of every prunable tensor
    /// (nonzero → 1).
    pub fn from_support<N: PrunableNetwork>(net: &N) -> MaskSet {
        let mut set = MaskSet::new();
        for (name, m) in net.prunable() {
            set.insert(name, m.map(|v| if v != 0.0 { 1.0 } else { 0.0 }));
        }
        set
    }

    /// Inserts (or replaces) a mask.
    ///
    /// # Panics
    ///
    /// Panics if the matrix contains values other than 0.0 and 1.0.
    pub fn insert(&mut self, name: impl Into<String>, mask: Matrix) {
        assert!(
            mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0),
            "mask entries must be 0 or 1"
        );
        self.masks.insert(name.into(), mask);
    }

    /// Retrieves the mask for `name`.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.masks.get(name)
    }

    /// Number of masks.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Iterates over `(name, mask)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Matrix)> {
        self.masks.iter()
    }

    /// Zeroes every masked-out weight of `net` in place. Tensors without a
    /// mask are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if a mask's shape does not match its tensor.
    pub fn apply<N: PrunableNetwork>(&self, net: &mut N) {
        for (name, w) in net.prunable_mut() {
            if let Some(mask) = self.masks.get(&name) {
                assert_eq!(mask.shape(), w.shape(), "mask shape mismatch for {name}");
                for (wi, mi) in w.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *wi *= mi;
                }
            }
        }
    }

    /// Element-wise AND with another mask set: a weight survives only if
    /// both masks keep it. Missing tensors are treated as all-ones.
    pub fn intersect(&self, other: &MaskSet) -> MaskSet {
        let mut out = self.clone();
        for (name, m2) in &other.masks {
            match out.masks.get_mut(name) {
                Some(m1) => {
                    assert_eq!(m1.shape(), m2.shape(), "mask shape mismatch for {name}");
                    let merged = m1.hadamard(m2).expect("shapes checked");
                    *m1 = merged;
                }
                None => {
                    out.masks.insert(name.clone(), m2.clone());
                }
            }
        }
        out
    }

    /// Total number of kept (1) entries across all masks.
    pub fn kept(&self) -> usize {
        self.masks
            .values()
            .map(|m| m.as_slice().iter().filter(|&&v| v == 1.0).count())
            .sum()
    }

    /// Total number of entries across all masks.
    pub fn total(&self) -> usize {
        self.masks.values().map(Matrix::len).sum()
    }

    /// Achieved compression rate `total / kept` (∞ when everything pruned).
    pub fn compression_rate(&self) -> f64 {
        let kept = self.kept();
        if kept == 0 {
            f64::INFINITY
        } else {
            self.total() as f64 / kept as f64
        }
    }
}

impl FromIterator<(String, Matrix)> for MaskSet {
    fn from_iter<I: IntoIterator<Item = (String, Matrix)>>(iter: I) -> MaskSet {
        let mut set = MaskSet::new();
        for (name, mask) in iter {
            set.insert(name, mask);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::{GruNetwork, NetworkConfig};

    fn tiny_net() -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 3,
                hidden_dims: vec![4],
                num_classes: 2,
            },
            1,
        )
    }

    #[test]
    fn ones_like_covers_all_prunables() {
        let net = tiny_net();
        let set = MaskSet::ones_like(&net);
        assert_eq!(set.len(), 6);
        assert_eq!(set.kept(), set.total());
        assert_eq!(set.compression_rate(), 1.0);
    }

    #[test]
    fn apply_zeroes_masked_weights() {
        let mut net = tiny_net();
        let mut set = MaskSet::ones_like(&net);
        // Zero out the whole update gate input weights.
        let shape = net.prunable()[0].1.shape();
        set.insert("layer0.w_z", Matrix::zeros(shape.0, shape.1));
        set.apply(&mut net);
        assert_eq!(net.layers[0].w_z.count_nonzero(), 0);
        assert!(
            net.layers[0].u_z.count_nonzero() > 0,
            "other tensors untouched"
        );
    }

    #[test]
    fn from_support_reflects_zeros() {
        let mut net = tiny_net();
        net.layers[0].w_r.scale_inplace(0.0);
        let set = MaskSet::from_support(&net);
        let m = set.get("layer0.w_r").unwrap();
        assert_eq!(m.count_nonzero(), 0);
        let m = set.get("layer0.w_z").unwrap();
        assert_eq!(m.count_nonzero(), m.len());
    }

    #[test]
    #[should_panic(expected = "mask entries must be 0 or 1")]
    fn non_binary_mask_rejected() {
        let mut set = MaskSet::new();
        set.insert("x", Matrix::filled(1, 1, 0.5));
    }

    #[test]
    fn intersect_is_and() {
        let mut a = MaskSet::new();
        a.insert("t", Matrix::from_rows(&[&[1.0, 1.0, 0.0]]).unwrap());
        let mut b = MaskSet::new();
        b.insert("t", Matrix::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap());
        b.insert("only_b", Matrix::from_rows(&[&[1.0]]).unwrap());
        let c = a.intersect(&b);
        assert_eq!(c.get("t").unwrap().count_nonzero(), 1);
        assert!(c.get("only_b").is_some());
    }

    #[test]
    fn compression_rate_math() {
        let mut set = MaskSet::new();
        set.insert("t", Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]).unwrap());
        assert_eq!(set.compression_rate(), 4.0);
        let mut all_pruned = MaskSet::new();
        all_pruned.insert("t", Matrix::zeros(2, 2));
        assert!(all_pruned.compression_rate().is_infinite());
    }

    #[test]
    fn from_iterator_collects() {
        let set: MaskSet = vec![("a".to_string(), Matrix::filled(1, 2, 1.0))]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        assert_eq!(set.iter().count(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::projection::{
        BankBalanced, BspColumnBlock, ColumnPrune, PatternMask, Projection, RowPrune,
        UnstructuredMagnitude,
    };

    /// Mask algebra: intersection is commutative, idempotent, and
    /// monotone (never keeps more than either operand).
    #[test]
    fn prop_intersection_algebra() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let w = rtm_tensor::init::uniform(8, 8, -1.0, 1.0, &mut rng);
            let pa: Box<dyn Projection> = Box::new(UnstructuredMagnitude::new(0.5));
            let pb: Box<dyn Projection> = Box::new(RowPrune::new(0.5));
            let mut a = MaskSet::new();
            a.insert("t", pa.mask(&w).expect("mask-style"));
            let mut b = MaskSet::new();
            b.insert("t", pb.mask(&w).expect("mask-style"));

            let ab = a.intersect(&b);
            let ba = b.intersect(&a);
            assert_eq!(ab.get("t"), ba.get("t"), "seed {seed}: commutative");
            let abb = ab.intersect(&b);
            assert_eq!(abb.get("t"), ab.get("t"), "seed {seed}: idempotent");
            assert!(ab.kept() <= a.kept().min(b.kept()), "seed {seed}: monotone");
        }
    }

    /// Every mask-style projection's mask applied to the weights equals
    /// the projection itself (mask/project coherence), for random
    /// inputs.
    #[test]
    fn prop_mask_equals_projection_support() {
        for seed in 0u64..150 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let w = rtm_tensor::init::uniform(8, 8, -1.0, 1.0, &mut rng);
            let projections: Vec<Box<dyn Projection>> = vec![
                Box::new(UnstructuredMagnitude::new(0.3)),
                Box::new(BspColumnBlock::new(2, 2, 0.5)),
                Box::new(RowPrune::new(0.5)),
                Box::new(ColumnPrune::new(0.5)),
                Box::new(BankBalanced::new(2, 0.5)),
                Box::new(PatternMask::new(4, 2, 6)),
            ];
            for p in &projections {
                let z = p.project(&w);
                let mask = p.mask(&w).expect("mask-style");
                let masked = w.hadamard(&mask).expect("same shape");
                assert_eq!(
                    &masked,
                    &z,
                    "seed {seed}: {} mask/project coherence",
                    p.name()
                );
            }
        }
    }

    /// Applying a mask is idempotent on the network and exactly matches
    /// the mask's kept count.
    #[test]
    fn prop_apply_idempotent() {
        use rtm_rnn::{GruNetwork, NetworkConfig};
        for seed in 0u64..100 {
            let mut net = GruNetwork::new(
                &NetworkConfig {
                    input_dim: 4,
                    hidden_dims: vec![8],
                    num_classes: 2,
                },
                seed,
            );
            let proj = UnstructuredMagnitude::new(0.4);
            let mut set = MaskSet::new();
            for (name, w) in net.prunable() {
                set.insert(name, proj.mask(w).expect("mask-style"));
            }
            set.apply(&mut net);
            let after_once = net.nonzero_prunable_params();
            set.apply(&mut net);
            assert_eq!(net.nonzero_prunable_params(), after_once, "seed {seed}");
            assert_eq!(after_once, set.kept(), "seed {seed}");
        }
    }
}
