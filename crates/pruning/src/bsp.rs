//! BSP — Block-based Structured Pruning (paper §IV-A, Algorithm 1).
//!
//! Training a BSP-compressed model runs two ADMM phases:
//!
//! * **Step 1 — row-based column-block pruning.** The weight matrix is split
//!   into `Numr` row stripes; each stripe is split into `Numc` column
//!   blocks; within each block, structured column pruning (via ADMM) keeps
//!   `1/col_rate` of the columns.
//! * **Step 2 — column-based row pruning.** Whole rows are pruned over the
//!   entire matrix at `1/row_rate`, again via ADMM.
//!
//! The masked weights stay at zero across step 2 (masked gradients), so the
//! two masks compose; the final mask is their intersection, and the network
//! is fine-tuned under it. The resulting pattern is exactly what the BSPC
//! format (`rtm_sparse::BspcMatrix`) stores compactly and what the compiler
//! optimizations exploit.

use crate::admm::{AdmmConfig, AdmmOutcome, AdmmPruner, Sequence};
use crate::mask::MaskSet;
use crate::network::PrunableNetwork;
use crate::projection::{BspColumnBlock, RowPrune};
use crate::schedule::CompressionTarget;

/// Configuration of a BSP pruning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspConfig {
    /// Row-stripe count (`Numr`).
    pub num_stripes: usize,
    /// Column-block count per stripe (`Numc`).
    pub num_blocks: usize,
    /// The `(column, row)` compression target.
    pub target: CompressionTarget,
    /// ADMM hyper-parameters shared by both steps.
    pub admm: AdmmConfig,
}

impl Default for BspConfig {
    fn default() -> BspConfig {
        BspConfig {
            num_stripes: 4,
            num_blocks: 4,
            target: CompressionTarget::new(10.0, 1.0),
            admm: AdmmConfig::default(),
        }
    }
}

/// Outcome of a BSP run.
#[derive(Debug, Clone)]
pub struct BspReport {
    /// Final (intersected) mask.
    pub mask: MaskSet,
    /// Achieved overall compression rate (`total / kept`).
    pub achieved_rate: f64,
    /// Surviving parameter count across prunable tensors.
    pub kept_params: usize,
    /// Total prunable parameter count.
    pub total_params: usize,
    /// Concatenated loss history from both ADMM phases.
    pub loss_history: Vec<f32>,
    /// Primal residuals from both phases.
    pub residuals: Vec<f32>,
}

/// Runs the two-step BSP algorithm.
#[derive(Debug, Clone)]
pub struct BspPruner {
    cfg: BspConfig,
}

impl BspPruner {
    /// Creates a pruner.
    ///
    /// # Panics
    ///
    /// Panics if the partition counts are zero.
    pub fn new(cfg: BspConfig) -> BspPruner {
        assert!(
            cfg.num_stripes > 0 && cfg.num_blocks > 0,
            "partition must be positive"
        );
        BspPruner { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BspConfig {
        &self.cfg
    }

    /// Executes Algorithm 1 on `net` over `data` (may be empty for one-shot
    /// structural pruning without accuracy recovery). Works on any
    /// [`PrunableNetwork`].
    pub fn prune<N: PrunableNetwork>(&self, net: &mut N, data: &[Sequence]) -> BspReport {
        let engine = AdmmPruner::new(self.cfg.admm);
        let mut loss_history = Vec::new();
        let mut residuals = Vec::new();

        // Step 1: row-based column-block pruning (skipped at col rate 1).
        let mask1 = if self.cfg.target.col_rate > 1.0 {
            let stripes = self.cfg.num_stripes;
            let blocks = self.cfg.num_blocks;
            let keep = self.cfg.target.col_keep_ratio();
            let out: AdmmOutcome = engine.run(net, data, &move |_name, w| {
                // Clamp the partition to the tensor's actual shape so small
                // matrices (e.g. narrow input weights) still work.
                let s = stripes.min(w.rows().max(1));
                let b = blocks.min(w.cols().max(1));
                Box::new(BspColumnBlock::new(s, b, keep))
            });
            loss_history.extend(out.loss_history);
            residuals.extend(out.residuals);
            out.mask
        } else {
            MaskSet::ones_like(net)
        };

        // Step 2: column-based row pruning over the whole matrix.
        let mask2 = if self.cfg.target.row_rate > 1.0 {
            let keep = self.cfg.target.row_keep_ratio();
            let out = engine.run(net, data, &move |_name, _w| Box::new(RowPrune::new(keep)));
            loss_history.extend(out.loss_history);
            residuals.extend(out.residuals);
            out.mask
        } else {
            MaskSet::ones_like(net)
        };

        let mask = mask1.intersect(&mask2);
        mask.apply(net);

        let kept = net.nonzero_prunable_params();
        let total = net.total_prunable_params();
        BspReport {
            achieved_rate: if kept == 0 {
                f64::INFINITY
            } else {
                total as f64 / kept as f64
            },
            kept_params: kept,
            total_params: total,
            mask,
            loss_history,
            residuals,
        }
    }

    /// Executes Algorithm 1 with a *per-tensor* compression schedule
    /// (DESIGN.md §6): each tensor is pruned at the `(col, row)` target the
    /// schedule assigns to its name. The configured `target` acts as the
    /// schedule's view of "skip entirely" only when the schedule resolves a
    /// tensor to the dense target.
    pub fn prune_scheduled<N: PrunableNetwork>(
        &self,
        net: &mut N,
        data: &[Sequence],
        schedule: &crate::schedule::LayerSchedule,
    ) -> BspReport {
        let engine = AdmmPruner::new(self.cfg.admm);
        let mut loss_history = Vec::new();
        let mut residuals = Vec::new();

        // Step 1: per-tensor column-block pruning at the scheduled rate.
        let mask1 = if schedule.any_col_pruning() {
            let stripes = self.cfg.num_stripes;
            let blocks = self.cfg.num_blocks;
            let sched = schedule.clone();
            let out = engine.run(net, data, &move |name, w| {
                let t = sched.target_for(name);
                let s = stripes.min(w.rows().max(1));
                let b = blocks.min(w.cols().max(1));
                // col_keep_ratio = 1 for dense targets keeps everything.
                Box::new(BspColumnBlock::new(s, b, t.col_keep_ratio()))
            });
            loss_history.extend(out.loss_history);
            residuals.extend(out.residuals);
            out.mask
        } else {
            MaskSet::ones_like(net)
        };

        // Step 2: per-tensor row pruning at the scheduled rate.
        let mask2 = if schedule.any_row_pruning() {
            let sched = schedule.clone();
            let out = engine.run(net, data, &move |name, _w| {
                Box::new(RowPrune::new(sched.target_for(name).row_keep_ratio()))
            });
            loss_history.extend(out.loss_history);
            residuals.extend(out.residuals);
            out.mask
        } else {
            MaskSet::ones_like(net)
        };

        let mask = mask1.intersect(&mask2);
        mask.apply(net);

        let kept = net.nonzero_prunable_params();
        let total = net.total_prunable_params();
        BspReport {
            achieved_rate: if kept == 0 {
                f64::INFINITY
            } else {
                total as f64 / kept as f64
            },
            kept_params: kept,
            total_params: total,
            mask,
            loss_history,
            residuals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::{GruNetwork, NetworkConfig};

    fn net(seed: u64) -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 8,
                hidden_dims: vec![16, 16],
                num_classes: 3,
            },
            seed,
        )
    }

    fn toy_data() -> Vec<Sequence> {
        let mk = |on: usize| -> Vec<Vec<f32>> {
            (0..6)
                .map(|_| {
                    (0..8)
                        .map(|i| if i % 3 == on { 1.0 } else { 0.0 })
                        .collect()
                })
                .collect()
        };
        (0..3).map(|c| (mk(c), vec![c; 6])).collect()
    }

    #[test]
    fn one_shot_structural_rate() {
        let mut m = net(1);
        let cfg = BspConfig {
            num_stripes: 4,
            num_blocks: 4,
            target: CompressionTarget::new(4.0, 2.0),
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
        };
        let report = BspPruner::new(cfg).prune(&mut m, &[]);
        // Nominal 8x; block rounding loosens it but it must be well above
        // half the nominal and at most the nominal + rounding slack.
        assert!(
            report.achieved_rate > 4.0 && report.achieved_rate < 16.0,
            "achieved {}",
            report.achieved_rate
        );
        assert_eq!(report.kept_params, m.nonzero_prunable_params());
        assert!(report.total_params > report.kept_params);
    }

    #[test]
    fn col_only_and_row_only_targets() {
        let mut a = net(2);
        let cfg = BspConfig {
            target: CompressionTarget::new(4.0, 1.0),
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
            ..BspConfig::default()
        };
        let r = BspPruner::new(cfg).prune(&mut a, &[]);
        assert!(
            (r.achieved_rate - 4.0).abs() < 1.5,
            "col-only {}",
            r.achieved_rate
        );

        let mut b = net(2);
        let cfg = BspConfig {
            target: CompressionTarget::new(1.0, 4.0),
            admm: cfg.admm,
            ..BspConfig::default()
        };
        let r = BspPruner::new(cfg).prune(&mut b, &[]);
        assert!(
            (r.achieved_rate - 4.0).abs() < 1.5,
            "row-only {}",
            r.achieved_rate
        );
    }

    #[test]
    fn row_pruned_rows_are_fully_zero() {
        let mut m = net(3);
        let cfg = BspConfig {
            target: CompressionTarget::new(1.0, 2.0),
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
            ..BspConfig::default()
        };
        BspPruner::new(cfg).prune(&mut m, &[]);
        for (name, w) in m.prunable() {
            let mut zero_rows = 0;
            for r in 0..w.rows() {
                let nnz = w.row(r).iter().filter(|&&v| v != 0.0).count();
                assert!(
                    nnz == 0 || nnz == w.cols(),
                    "{name} row {r} must be all-kept or all-pruned, got {nnz}"
                );
                if nnz == 0 {
                    zero_rows += 1;
                }
            }
            assert_eq!(zero_rows, w.rows() / 2, "{name}: half the rows pruned");
        }
    }

    #[test]
    fn block_column_uniformity_after_full_bsp() {
        let mut m = net(4);
        let cfg = BspConfig {
            num_stripes: 4,
            num_blocks: 4,
            target: CompressionTarget::new(4.0, 2.0),
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
        };
        BspPruner::new(cfg).prune(&mut m, &[]);
        // u_z is 16x16: stripes of 4 rows, blocks of 4 cols. Within each
        // stripe-block a column is either uniformly kept (on surviving rows)
        // or uniformly zero.
        let w = &m.layers[0].u_z;
        let kept_row = |r: usize| w.row(r).iter().any(|&v| v != 0.0);
        for s in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let col = b * 4 + c;
                    let states: Vec<bool> = (s * 4..(s + 1) * 4)
                        .filter(|&r| kept_row(r))
                        .map(|r| w[(r, col)] != 0.0)
                        .collect();
                    assert!(
                        states.windows(2).all(|p| p[0] == p[1]),
                        "stripe {s} block {b} col {col} not uniform"
                    );
                }
            }
        }
    }

    #[test]
    fn trained_bsp_retains_toy_accuracy() {
        let mut m = net(5);
        let data = toy_data();
        // Dense pre-training so there is accuracy to retain.
        let mut opt = rtm_rnn::Adam::new(0.01);
        for _ in 0..40 {
            for (frames, targets) in &data {
                m.train_step(frames, targets, &mut opt, None);
            }
        }
        let cfg = BspConfig {
            num_stripes: 4,
            num_blocks: 2,
            target: CompressionTarget::new(2.0, 2.0),
            admm: AdmmConfig {
                rho: 2.0,
                admm_iterations: 2,
                epochs_per_iteration: 8,
                finetune_epochs: 15,
                lr: 5e-3,
                clip: Some(rtm_rnn::GradClip::new(5.0)),
            },
        };
        let report = BspPruner::new(cfg).prune(&mut m, &data);
        assert!(report.achieved_rate > 2.0);
        // The pruned-and-finetuned model still solves the toy task.
        let mut correct = 0;
        let mut total = 0;
        for (frames, targets) in &data {
            let preds = m.predict(frames);
            correct += preds.iter().zip(targets).filter(|(p, t)| p == t).count();
            total += targets.len();
        }
        assert!(
            correct as f64 / total as f64 > 0.8,
            "accuracy after BSP: {correct}/{total}"
        );
    }

    #[test]
    fn mask_compression_matches_report() {
        let mut m = net(6);
        let cfg = BspConfig {
            target: CompressionTarget::new(4.0, 1.0),
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
            ..BspConfig::default()
        };
        let report = BspPruner::new(cfg).prune(&mut m, &[]);
        assert!((report.mask.compression_rate() - report.achieved_rate).abs() < 1e-9);
    }

    #[test]
    fn scheduled_pruning_respects_per_tensor_rates() {
        use crate::schedule::LayerSchedule;
        let mut m = net(11);
        let cfg = BspConfig {
            num_stripes: 4,
            num_blocks: 4,
            target: CompressionTarget::new(8.0, 1.0), // unused default-carrier
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
        };
        // Layer 0 kept nearly dense, layer 1 pruned hard.
        let schedule = LayerSchedule::new(CompressionTarget::new(8.0, 2.0))
            .with_rule("layer0", CompressionTarget::new(2.0, 1.0));
        let report = BspPruner::new(cfg).prune_scheduled(&mut m, &[], &schedule);

        let sparsity_of = |prefix: &str, net: &GruNetwork| -> f64 {
            let (nz, total) = net
                .prunable()
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .fold((0usize, 0usize), |(nz, t), (_, w)| {
                    (nz + w.count_nonzero(), t + w.len())
                });
            1.0 - nz as f64 / total as f64
        };
        let s0 = sparsity_of("layer0", &m);
        let s1 = sparsity_of("layer1", &m);
        assert!(s0 < 0.6, "layer0 lightly pruned: {s0}");
        assert!(s1 > 0.85, "layer1 heavily pruned: {s1}");
        assert!(report.achieved_rate > 2.0 && report.achieved_rate < 16.0);
        // Mask covers both layers.
        assert!(report.mask.get("layer0.w_z").is_some());
        assert!(report.mask.get("layer1.u_n").is_some());
    }

    #[test]
    fn scheduled_dense_schedule_is_identity() {
        use crate::schedule::LayerSchedule;
        let mut m = net(12);
        let before = m.clone();
        let cfg = BspConfig {
            admm: AdmmConfig {
                admm_iterations: 1,
                epochs_per_iteration: 0,
                finetune_epochs: 0,
                ..AdmmConfig::default()
            },
            ..BspConfig::default()
        };
        let schedule = LayerSchedule::new(CompressionTarget::dense());
        let report = BspPruner::new(cfg).prune_scheduled(&mut m, &[], &schedule);
        assert_eq!(m, before, "dense schedule must not touch weights");
        assert_eq!(report.achieved_rate, 1.0);
    }

    #[test]
    #[should_panic(expected = "partition must be positive")]
    fn zero_partition_rejected() {
        BspPruner::new(BspConfig {
            num_stripes: 0,
            ..BspConfig::default()
        });
    }
}
