//! Long Short-Term Memory cell and layer.
//!
//! The baselines RTMobile compares against (ESE, C-LSTM, BBS, Wang) are all
//! LSTM accelerators; the paper itself focuses on GRU "as a more advanced
//! version of RNN than LSTM" (§II-A). The LSTM here serves two purposes:
//! the extension experiments in DESIGN.md §6, and a demonstration that the
//! pruning machinery is architecture-agnostic (it consumes any set of named
//! weight matrices).
//!
//! Equations (standard, no peepholes):
//!
//! ```text
//! i_t = σ(W_i x_t + U_i h_{t-1} + b_i)
//! f_t = σ(W_f x_t + U_f h_{t-1} + b_f)
//! g_t = tanh(W_g x_t + U_g h_{t-1} + b_g)
//! o_t = σ(W_o x_t + U_o h_{t-1} + b_o)
//! c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//! h_t = o_t ⊙ tanh(c_t)
//! ```

use rtm_tensor::activations::{sigmoid, tanh};
use rtm_tensor::gemm::{gemv, gemv_transposed, ger};
use rtm_tensor::init::{rng_from_seed, xavier_uniform};
use rtm_tensor::{Matrix, Vector};

/// Parameters of one LSTM cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    /// Input-gate weights (`hidden × input` / `hidden × hidden`).
    pub w_i: Matrix,
    /// Input-gate recurrent weights.
    pub u_i: Matrix,
    /// Input-gate bias.
    pub b_i: Vec<f32>,
    /// Forget-gate weights.
    pub w_f: Matrix,
    /// Forget-gate recurrent weights.
    pub u_f: Matrix,
    /// Forget-gate bias (initialized to 1.0, the standard trick).
    pub b_f: Vec<f32>,
    /// Cell-candidate weights.
    pub w_g: Matrix,
    /// Cell-candidate recurrent weights.
    pub u_g: Matrix,
    /// Cell-candidate bias.
    pub b_g: Vec<f32>,
    /// Output-gate weights.
    pub w_o: Matrix,
    /// Output-gate recurrent weights.
    pub u_o: Matrix,
    /// Output-gate bias.
    pub b_o: Vec<f32>,
}

/// Per-timestep activations cached for BPTT.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LstmStep {
    /// Input gate.
    pub i: Vec<f32>,
    /// Forget gate.
    pub f: Vec<f32>,
    /// Candidate.
    pub g: Vec<f32>,
    /// Output gate.
    pub o: Vec<f32>,
    /// Cell state.
    pub c: Vec<f32>,
    /// Hidden output.
    pub h: Vec<f32>,
}

/// Full-sequence cache for BPTT.
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    /// Input frames.
    pub xs: Vec<Vec<f32>>,
    /// Hidden state entering each step.
    pub h_prevs: Vec<Vec<f32>>,
    /// Cell state entering each step.
    pub c_prevs: Vec<Vec<f32>>,
    /// Per-step activations.
    pub steps: Vec<LstmStep>,
}

/// Gradients mirroring [`LstmCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct LstmGrads {
    /// d/dW_i
    pub w_i: Matrix,
    /// d/dU_i
    pub u_i: Matrix,
    /// d/db_i
    pub b_i: Vec<f32>,
    /// d/dW_f
    pub w_f: Matrix,
    /// d/dU_f
    pub u_f: Matrix,
    /// d/db_f
    pub b_f: Vec<f32>,
    /// d/dW_g
    pub w_g: Matrix,
    /// d/dU_g
    pub u_g: Matrix,
    /// d/db_g
    pub b_g: Vec<f32>,
    /// d/dW_o
    pub w_o: Matrix,
    /// d/dU_o
    pub u_o: Matrix,
    /// d/db_o
    pub b_o: Vec<f32>,
}

impl LstmCell {
    /// Creates a cell with Xavier weights, zero biases and forget bias 1.0.
    pub fn new(input_dim: usize, hidden_dim: usize, seed: u64) -> LstmCell {
        let mut rng = rng_from_seed(seed);
        LstmCell {
            w_i: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_i: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_i: vec![0.0; hidden_dim],
            w_f: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_f: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_f: vec![1.0; hidden_dim],
            w_g: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_g: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_g: vec![0.0; hidden_dim],
            w_o: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_o: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_o: vec![0.0; hidden_dim],
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w_i.cols()
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.w_i.rows()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        4 * (self.w_i.len() + self.u_i.len() + self.b_i.len())
    }

    /// The eight prunable weight matrices with conventional names.
    pub fn prunable_mut(&mut self) -> Vec<(&'static str, &mut Matrix)> {
        vec![
            ("w_i", &mut self.w_i),
            ("u_i", &mut self.u_i),
            ("w_f", &mut self.w_f),
            ("u_f", &mut self.u_f),
            ("w_g", &mut self.w_g),
            ("u_g", &mut self.u_g),
            ("w_o", &mut self.w_o),
            ("u_o", &mut self.u_o),
        ]
    }

    /// One forward step from `(h_prev, c_prev)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> LstmStep {
        assert_eq!(x.len(), self.input_dim(), "input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden_dim(), "hidden dim mismatch");
        assert_eq!(c_prev.len(), self.hidden_dim(), "cell dim mismatch");
        let hid = self.hidden_dim();

        let gate = |w: &Matrix, u: &Matrix, b: &[f32]| -> Vec<f32> {
            let mut a = gemv(w, x).expect("shape checked");
            Vector::axpy(1.0, &gemv(u, h_prev).expect("shape checked"), &mut a);
            Vector::axpy(1.0, b, &mut a);
            a
        };

        let mut i = gate(&self.w_i, &self.u_i, &self.b_i);
        let mut f = gate(&self.w_f, &self.u_f, &self.b_f);
        let mut g = gate(&self.w_g, &self.u_g, &self.b_g);
        let mut o = gate(&self.w_o, &self.u_o, &self.b_o);
        for v in &mut i {
            *v = sigmoid(*v);
        }
        for v in &mut f {
            *v = sigmoid(*v);
        }
        for v in &mut g {
            *v = tanh(*v);
        }
        for v in &mut o {
            *v = sigmoid(*v);
        }

        let mut c = vec![0.0f32; hid];
        let mut h = vec![0.0f32; hid];
        for k in 0..hid {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            h[k] = o[k] * tanh(c[k]);
        }
        LstmStep { i, f, g, o, c, h }
    }

    /// One forward step with the four gate matvecs dispatched through a
    /// parallel [`rtm_exec::Executor`].
    ///
    /// Unlike the GRU, every LSTM gate (`i`, `f`, `g`, `o`) depends only on
    /// `x` and `h_prev`, so all four pre-activations run as independent pool
    /// tasks; only the elementwise `c`/`h` combine is serial. Per-gate
    /// accumulation order matches [`LstmCell::step`], so the result is
    /// bit-exact for any thread count.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step_with(
        &self,
        exec: &rtm_exec::Executor,
        x: &[f32],
        h_prev: &[f32],
        c_prev: &[f32],
    ) -> LstmStep {
        assert_eq!(x.len(), self.input_dim(), "input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden_dim(), "hidden dim mismatch");
        assert_eq!(c_prev.len(), self.hidden_dim(), "cell dim mismatch");
        let hid = self.hidden_dim();

        let mut i = Vec::new();
        let mut f = Vec::new();
        let mut g = Vec::new();
        let mut o = Vec::new();
        {
            let gate = |w: &'_ Matrix,
                        u: &'_ Matrix,
                        b: &'_ [f32],
                        act: fn(f32) -> f32,
                        out: &'_ mut Vec<f32>| {
                let mut a = gemv(w, x).expect("shape checked");
                Vector::axpy(1.0, &gemv(u, h_prev).expect("shape checked"), &mut a);
                Vector::axpy(1.0, b, &mut a);
                for v in &mut a {
                    *v = act(*v);
                }
                *out = a;
            };
            let (i_out, f_out, g_out, o_out) = (&mut i, &mut f, &mut g, &mut o);
            exec.run(vec![
                Box::new(move || gate(&self.w_i, &self.u_i, &self.b_i, sigmoid, i_out)),
                Box::new(move || gate(&self.w_f, &self.u_f, &self.b_f, sigmoid, f_out)),
                Box::new(move || gate(&self.w_g, &self.u_g, &self.b_g, tanh, g_out)),
                Box::new(move || gate(&self.w_o, &self.u_o, &self.b_o, sigmoid, o_out)),
            ])
            .expect("gate task panicked");
        }

        let mut c = vec![0.0f32; hid];
        let mut h = vec![0.0f32; hid];
        for k in 0..hid {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            h[k] = o[k] * tanh(c[k]);
        }
        LstmStep { i, f, g, o, c, h }
    }

    /// Runs the cell over a sequence from the zero state.
    pub fn forward(&self, xs: &[Vec<f32>]) -> LstmCache {
        let hid = self.hidden_dim();
        let mut cache = LstmCache::default();
        let mut h = vec![0.0f32; hid];
        let mut c = vec![0.0f32; hid];
        for x in xs {
            cache.xs.push(x.clone());
            cache.h_prevs.push(h.clone());
            cache.c_prevs.push(c.clone());
            let step = self.step(x, &h, &c);
            h = step.h.clone();
            c = step.c.clone();
            cache.steps.push(step);
        }
        cache
    }

    /// Backpropagation through time; see [`crate::gru::GruCell::backward`]
    /// for the calling convention.
    ///
    /// # Panics
    ///
    /// Panics if `dh_out.len() != cache.steps.len()`.
    pub fn backward(&self, cache: &LstmCache, dh_out: &[Vec<f32>]) -> (LstmGrads, Vec<Vec<f32>>) {
        assert_eq!(dh_out.len(), cache.steps.len(), "dh_out length mismatch");
        let hid = self.hidden_dim();
        let inp = self.input_dim();
        let t_len = cache.steps.len();

        let mut grads = LstmGrads::zeros(inp, hid);
        let mut dxs = vec![vec![0.0f32; inp]; t_len];
        let mut dh_next = vec![0.0f32; hid];
        let mut dc_next = vec![0.0f32; hid];

        for t in (0..t_len).rev() {
            let s = &cache.steps[t];
            let h_prev = &cache.h_prevs[t];
            let c_prev = &cache.c_prevs[t];
            let x = &cache.xs[t];

            let mut dh = dh_out[t].clone();
            Vector::axpy(1.0, &dh_next, &mut dh);

            let mut dc = dc_next.clone();
            let mut do_ = vec![0.0f32; hid];
            for k in 0..hid {
                let tc = tanh(s.c[k]);
                do_[k] = dh[k] * tc;
                dc[k] += dh[k] * s.o[k] * (1.0 - tc * tc);
            }

            let mut di = vec![0.0f32; hid];
            let mut df = vec![0.0f32; hid];
            let mut dg = vec![0.0f32; hid];
            let mut dc_prev = vec![0.0f32; hid];
            for k in 0..hid {
                di[k] = dc[k] * s.g[k];
                df[k] = dc[k] * c_prev[k];
                dg[k] = dc[k] * s.i[k];
                dc_prev[k] = dc[k] * s.f[k];
            }

            let mut da_i = vec![0.0f32; hid];
            let mut da_f = vec![0.0f32; hid];
            let mut da_g = vec![0.0f32; hid];
            let mut da_o = vec![0.0f32; hid];
            for k in 0..hid {
                da_i[k] = di[k] * s.i[k] * (1.0 - s.i[k]);
                da_f[k] = df[k] * s.f[k] * (1.0 - s.f[k]);
                da_g[k] = dg[k] * (1.0 - s.g[k] * s.g[k]);
                da_o[k] = do_[k] * s.o[k] * (1.0 - s.o[k]);
            }

            let mut dh_prev = vec![0.0f32; hid];
            let mut dx = vec![0.0f32; inp];
            let acc = |w: &Matrix,
                       u: &Matrix,
                       gw: &mut Matrix,
                       gu: &mut Matrix,
                       gb: &mut [f32],
                       da: &[f32],
                       dh_prev: &mut [f32],
                       dx: &mut [f32]| {
                ger(gw, 1.0, da, x).expect("shape checked");
                ger(gu, 1.0, da, h_prev).expect("shape checked");
                Vector::axpy(1.0, da, gb);
                Vector::axpy(1.0, &gemv_transposed(u, da).expect("shape"), dh_prev);
                Vector::axpy(1.0, &gemv_transposed(w, da).expect("shape"), dx);
            };
            acc(
                &self.w_i,
                &self.u_i,
                &mut grads.w_i,
                &mut grads.u_i,
                &mut grads.b_i,
                &da_i,
                &mut dh_prev,
                &mut dx,
            );
            acc(
                &self.w_f,
                &self.u_f,
                &mut grads.w_f,
                &mut grads.u_f,
                &mut grads.b_f,
                &da_f,
                &mut dh_prev,
                &mut dx,
            );
            acc(
                &self.w_g,
                &self.u_g,
                &mut grads.w_g,
                &mut grads.u_g,
                &mut grads.b_g,
                &da_g,
                &mut dh_prev,
                &mut dx,
            );
            acc(
                &self.w_o,
                &self.u_o,
                &mut grads.w_o,
                &mut grads.u_o,
                &mut grads.b_o,
                &da_o,
                &mut dh_prev,
                &mut dx,
            );

            dxs[t] = dx;
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        (grads, dxs)
    }

    /// `param -= lr * grad` over every parameter.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_grads(&mut self, grads: &LstmGrads, lr: f32) {
        self.w_i.axpy(-lr, &grads.w_i).expect("shape");
        self.u_i.axpy(-lr, &grads.u_i).expect("shape");
        Vector::axpy(-lr, &grads.b_i, &mut self.b_i);
        self.w_f.axpy(-lr, &grads.w_f).expect("shape");
        self.u_f.axpy(-lr, &grads.u_f).expect("shape");
        Vector::axpy(-lr, &grads.b_f, &mut self.b_f);
        self.w_g.axpy(-lr, &grads.w_g).expect("shape");
        self.u_g.axpy(-lr, &grads.u_g).expect("shape");
        Vector::axpy(-lr, &grads.b_g, &mut self.b_g);
        self.w_o.axpy(-lr, &grads.w_o).expect("shape");
        self.u_o.axpy(-lr, &grads.u_o).expect("shape");
        Vector::axpy(-lr, &grads.b_o, &mut self.b_o);
    }
}

impl LstmGrads {
    /// Zero gradients for the given dimensions.
    pub fn zeros(input_dim: usize, hidden_dim: usize) -> LstmGrads {
        let w = || Matrix::zeros(hidden_dim, input_dim);
        let u = || Matrix::zeros(hidden_dim, hidden_dim);
        let b = || vec![0.0f32; hidden_dim];
        LstmGrads {
            w_i: w(),
            u_i: u(),
            b_i: b(),
            w_f: w(),
            u_f: u(),
            b_f: b(),
            w_g: w(),
            u_g: u(),
            b_g: b(),
            w_o: w(),
            u_o: u(),
            b_o: b(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_shapes_and_ranges() {
        let cell = LstmCell::new(3, 5, 1);
        let s = cell.step(&[0.1, 0.2, -0.3], &[0.0; 5], &[0.0; 5]);
        assert_eq!(s.h.len(), 5);
        assert!(s.i.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(s.f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(s.o.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(s.g.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(s.h.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn forget_gate_controls_memory() {
        let mut cell = LstmCell::new(1, 1, 3);
        // Saturate forget gate open and input gate closed: c carries over.
        cell.b_f = vec![100.0];
        cell.b_i = vec![-100.0];
        let s = cell.step(&[0.5], &[0.2], &[0.9]);
        assert!((s.c[0] - 0.9).abs() < 1e-4, "cell state must persist");
        // Closed forget gate: c = i*g only.
        cell.b_f = vec![-100.0];
        cell.b_i = vec![100.0];
        let s = cell.step(&[0.5], &[0.2], &[0.9]);
        assert!((s.c[0] - s.g[0]).abs() < 1e-4);
    }

    #[test]
    fn forward_cache_consistency() {
        let cell = LstmCell::new(2, 3, 5);
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let cache = cell.forward(&xs);
        assert_eq!(cache.steps.len(), 2);
        assert_eq!(cache.h_prevs[1], cache.steps[0].h);
        assert_eq!(cache.c_prevs[1], cache.steps[0].c);
    }

    #[test]
    fn gradient_check_parameters() {
        let cell = LstmCell::new(2, 3, 13);
        let mut rng = rtm_tensor::init::rng_from_seed(31);
        let xs: Vec<Vec<f32>> = (0..4)
            .map(|_| {
                (0..2)
                    .map(|_| rtm_tensor::init::standard_normal(&mut rng) * 0.5)
                    .collect()
            })
            .collect();
        let loss = |c: &LstmCell| -> f64 {
            c.forward(&xs)
                .steps
                .iter()
                .map(|s| s.h.iter().map(|&v| v as f64).sum::<f64>())
                .sum()
        };
        let cache = cell.forward(&xs);
        let dh_out = vec![vec![1.0f32; 3]; 4];
        let (grads, _) = cell.backward(&cache, &dh_out);

        let eps = 1e-3f32;
        // Spot-check one coordinate in each of the 8 weight matrices.
        #[allow(clippy::type_complexity)]
        let checks: [(
            &str,
            fn(&mut LstmCell) -> &mut Matrix,
            fn(&LstmGrads) -> &Matrix,
        ); 8] = [
            ("w_i", |c| &mut c.w_i, |g| &g.w_i),
            ("u_i", |c| &mut c.u_i, |g| &g.u_i),
            ("w_f", |c| &mut c.w_f, |g| &g.w_f),
            ("u_f", |c| &mut c.u_f, |g| &g.u_f),
            ("w_g", |c| &mut c.w_g, |g| &g.w_g),
            ("u_g", |c| &mut c.u_g, |g| &g.u_g),
            ("w_o", |c| &mut c.w_o, |g| &g.w_o),
            ("u_o", |c| &mut c.u_o, |g| &g.u_o),
        ];
        for (name, get_mut, get_grad) in checks {
            for &(r, c) in &[(0usize, 0usize), (2, 1)] {
                let mut plus = cell.clone();
                get_mut(&mut plus)[(r, c)] += eps;
                let mut minus = cell.clone();
                get_mut(&mut minus)[(r, c)] -= eps;
                let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
                let an = get_grad(&grads)[(r, c)];
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                    "{name}[{r},{c}]: {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let cell = LstmCell::new(2, 2, 17);
        let xs = vec![vec![0.3, -0.2], vec![0.1, 0.5]];
        let cache = cell.forward(&xs);
        let (_, dxs) = cell.backward(&cache, &[vec![1.0; 2], vec![1.0; 2]]);
        let loss = |xs: &[Vec<f32>]| -> f64 {
            cell.forward(xs)
                .steps
                .iter()
                .map(|s| s.h.iter().map(|&v| v as f64).sum::<f64>())
                .sum()
        };
        let eps = 1e-3f32;
        for t in 0..2 {
            for i in 0..2 {
                let mut plus = xs.clone();
                plus[t][i] += eps;
                let mut minus = xs.clone();
                minus[t][i] -= eps;
                let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - dxs[t][i]).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dx[{t}][{i}]: {fd} vs {}",
                    dxs[t][i]
                );
            }
        }
    }

    #[test]
    fn prunable_exposes_eight_matrices() {
        let mut cell = LstmCell::new(2, 2, 0);
        assert_eq!(cell.prunable_mut().len(), 8);
    }

    #[test]
    fn num_params_formula() {
        let cell = LstmCell::new(10, 20, 0);
        assert_eq!(cell.num_params(), 4 * (200 + 400 + 20));
    }

    #[test]
    fn apply_grads_descends() {
        let mut cell = LstmCell::new(1, 1, 0);
        let w0 = cell.w_o[(0, 0)];
        let mut g = LstmGrads::zeros(1, 1);
        g.w_o[(0, 0)] = 2.0;
        cell.apply_grads(&g, 0.5);
        assert!((cell.w_o[(0, 0)] - (w0 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn step_with_matches_step_bit_exact() {
        let cell = LstmCell::new(5, 9, 23);
        let x: Vec<f32> = (0..5).map(|i| (i as f32 * 0.6).cos()).collect();
        for threads in [1usize, 2, 3, 8] {
            let exec = rtm_exec::Executor::new(threads);
            let mut h = vec![0.0f32; 9];
            let mut c = vec![0.0f32; 9];
            for t in 0..4 {
                let serial = cell.step(&x, &h, &c);
                let par = cell.step_with(&exec, &x, &h, &c);
                assert_eq!(par, serial, "{threads} threads, step {t}");
                h = serial.h;
                c = serial.c;
            }
        }
    }
}
