#![warn(missing_docs)]

//! # rtm-rnn
//!
//! Recurrent-network substrate: GRU and LSTM cells with full
//! backpropagation-through-time, a dense classifier head, losses and
//! optimizers.
//!
//! The paper evaluates a 2-layer GRU (Fig. 1 gives the cell; §V-A the
//! topology) trained with PyTorch-Kaldi. This crate is the from-scratch
//! replacement: everything needed to train that network — and to *retrain*
//! it under ADMM masks, which is what `rtm-pruning` does — in pure Rust.
//!
//! * [`gru`] — the GRU cell and layer (forward + BPTT);
//! * [`lstm`] — an LSTM cell/layer (the baselines ESE and C-LSTM are LSTM
//!   systems; also exercised by the extension experiments);
//! * [`dense`] — the softmax classifier head;
//! * [`model`] — [`model::GruNetwork`], the 2-layer-GRU + head stack of §V-A;
//! * [`loss`] — frame-level softmax cross-entropy;
//! * [`optimizer`] — SGD and Adam (the paper's ADMM argument against C-LSTM
//!   hinges on Adam being available), plus global-norm gradient clipping.
//!
//! # Example
//!
//! ```
//! use rtm_rnn::model::{GruNetwork, NetworkConfig};
//!
//! let cfg = NetworkConfig { input_dim: 8, hidden_dims: vec![16, 16], num_classes: 5 };
//! let net = GruNetwork::new(&cfg, 42);
//! let frames = vec![vec![0.1; 8]; 10];
//! let logits = net.forward(&frames);
//! assert_eq!(logits.len(), 10);
//! assert_eq!(logits[0].len(), 5);
//! ```

pub mod bigru;
pub mod bigru_model;
pub mod dense;
pub mod gru;
pub mod loss;
pub mod lstm;
pub mod lstm_model;
pub mod model;
pub mod optimizer;

pub use bigru::BiGruLayer;
pub use bigru_model::BiGruNetwork;
pub use lstm_model::LstmNetwork;
pub use model::{GruNetwork, NetworkConfig};
pub use optimizer::{Adam, GradClip, Optimizer, Sgd};
