//! Gated Recurrent Unit cell and layer (paper Fig. 1).
//!
//! Equations (Cho et al. 2014, PyTorch gate convention):
//!
//! ```text
//! z_t = σ(W_z x_t + U_z h_{t-1} + b_z)          update gate
//! r_t = σ(W_r x_t + U_r h_{t-1} + b_r)          reset gate
//! n_t = tanh(W_n x_t + U_n (r_t ⊙ h_{t-1}) + b_n)   candidate ("cell state" h̃)
//! h_t = (1 - z_t) ⊙ n_t + z_t ⊙ h_{t-1}         cell output
//! ```
//!
//! The six weight matrices (`W_*` of shape `hidden×input`, `U_*` of shape
//! `hidden×hidden`) are the pruning targets of the whole reproduction: BSP,
//! the baselines and the compiler all consume them through
//! [`GruCell::prunable`] / [`GruCell::prunable_mut`].
//!
//! Backpropagation-through-time is implemented analytically; the test module
//! validates every gradient against central finite differences.

use rtm_tensor::activations::{sigmoid_slice, tanh_slice};
use rtm_tensor::gemm::{gemv_batch_into, gemv_into, gemv_transposed, ger};
use rtm_tensor::init::{rng_from_seed, xavier_uniform};
use rtm_tensor::{Matrix, Vector};

/// Parameters of one GRU cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GruCell {
    /// Update-gate input weights, `hidden × input`.
    pub w_z: Matrix,
    /// Update-gate recurrent weights, `hidden × hidden`.
    pub u_z: Matrix,
    /// Update-gate bias.
    pub b_z: Vec<f32>,
    /// Reset-gate input weights.
    pub w_r: Matrix,
    /// Reset-gate recurrent weights.
    pub u_r: Matrix,
    /// Reset-gate bias.
    pub b_r: Vec<f32>,
    /// Candidate input weights.
    pub w_n: Matrix,
    /// Candidate recurrent weights.
    pub u_n: Matrix,
    /// Candidate bias.
    pub b_n: Vec<f32>,
}

/// Per-timestep activations cached by the forward pass for BPTT.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GruStep {
    /// Update gate `z_t`.
    pub z: Vec<f32>,
    /// Reset gate `r_t`.
    pub r: Vec<f32>,
    /// Candidate state `n_t`.
    pub n: Vec<f32>,
    /// Output `h_t`.
    pub h: Vec<f32>,
}

/// Gradients with the same shapes as [`GruCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct GruGrads {
    /// d/dW_z
    pub w_z: Matrix,
    /// d/dU_z
    pub u_z: Matrix,
    /// d/db_z
    pub b_z: Vec<f32>,
    /// d/dW_r
    pub w_r: Matrix,
    /// d/dU_r
    pub u_r: Matrix,
    /// d/db_r
    pub b_r: Vec<f32>,
    /// d/dW_n
    pub w_n: Matrix,
    /// d/dU_n
    pub u_n: Matrix,
    /// d/db_n
    pub b_n: Vec<f32>,
}

/// Full-sequence cache: inputs, initial state and per-step activations.
#[derive(Debug, Clone, Default)]
pub struct GruCache {
    /// Input frame per timestep.
    pub xs: Vec<Vec<f32>>,
    /// Hidden state *entering* each timestep (`h_{t-1}`), plus nothing else.
    pub h_prevs: Vec<Vec<f32>>,
    /// Activations per timestep.
    pub steps: Vec<GruStep>,
}

/// Reusable per-sequence workspace for the allocation-free step forms
/// ([`GruCell::step_into`] / [`GruCell::step_with_into`]).
///
/// One instance amortizes every intermediate across all timesteps of a
/// sequence — and across layers of different widths, since the buffers are
/// resized on use. Steady-state inference allocates nothing per frame.
#[derive(Debug, Clone, Default)]
pub struct GruScratch {
    /// Recurrent-term temp: `U·h_{t-1}` per gate in the serial path, then
    /// `U_n (r ⊙ h_{t-1})` in the candidate phase.
    tmp: Vec<f32>,
    /// Second gate temp so the pooled path's phase-A tasks write disjointly.
    tmp2: Vec<f32>,
    /// Reset-gated state `r ⊙ h_{t-1}`.
    rh: Vec<f32>,
}

impl GruScratch {
    /// Workspace pre-sized for a cell of the given hidden width.
    pub fn new(hidden_dim: usize) -> GruScratch {
        GruScratch {
            tmp: vec![0.0; hidden_dim],
            tmp2: vec![0.0; hidden_dim],
            rh: vec![0.0; hidden_dim],
        }
    }
}

impl GruCell {
    /// Creates a cell with Xavier-initialized weights and zero biases.
    pub fn new(input_dim: usize, hidden_dim: usize, seed: u64) -> GruCell {
        let mut rng = rng_from_seed(seed);
        GruCell {
            w_z: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_z: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_z: vec![0.0; hidden_dim],
            w_r: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_r: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_r: vec![0.0; hidden_dim],
            w_n: xavier_uniform(hidden_dim, input_dim, &mut rng),
            u_n: xavier_uniform(hidden_dim, hidden_dim, &mut rng),
            b_n: vec![0.0; hidden_dim],
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w_z.cols()
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.w_z.rows()
    }

    /// Total parameter count (weights + biases).
    pub fn num_params(&self) -> usize {
        3 * (self.w_z.len() + self.u_z.len() + self.b_z.len())
    }

    /// Shared references to the six prunable weight matrices with their
    /// conventional names (biases are never pruned, matching the paper).
    pub fn prunable(&self) -> Vec<(&'static str, &Matrix)> {
        vec![
            ("w_z", &self.w_z),
            ("u_z", &self.u_z),
            ("w_r", &self.w_r),
            ("u_r", &self.u_r),
            ("w_n", &self.w_n),
            ("u_n", &self.u_n),
        ]
    }

    /// Mutable references to the six prunable weight matrices.
    pub fn prunable_mut(&mut self) -> Vec<(&'static str, &mut Matrix)> {
        vec![
            ("w_z", &mut self.w_z),
            ("u_z", &mut self.u_z),
            ("w_r", &mut self.w_r),
            ("u_r", &mut self.u_r),
            ("w_n", &mut self.w_n),
            ("u_n", &mut self.u_n),
        ]
    }

    /// One forward step.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or
    /// `h_prev.len() != self.hidden_dim()`.
    pub fn step(&self, x: &[f32], h_prev: &[f32]) -> GruStep {
        let mut scratch = GruScratch::new(self.hidden_dim());
        let mut out = GruStep::default();
        self.step_into(x, h_prev, &mut scratch, &mut out);
        out
    }

    /// Allocation-free form of [`GruCell::step`]: every intermediate lives
    /// in `scratch` and the activations land in `out` (both resized on
    /// entry, so reuse across layers of different widths is fine).
    ///
    /// The arithmetic sequence is identical to [`GruCell::step`] — results
    /// are bit-exact with the allocating form under every
    /// [`SimdPolicy`](rtm_tensor::simd::SimdPolicy).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or
    /// `h_prev.len() != self.hidden_dim()`.
    pub fn step_into(
        &self,
        x: &[f32],
        h_prev: &[f32],
        scratch: &mut GruScratch,
        out: &mut GruStep,
    ) {
        assert_eq!(x.len(), self.input_dim(), "input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden_dim(), "hidden dim mismatch");
        let h = self.hidden_dim();
        out.z.resize(h, 0.0);
        out.r.resize(h, 0.0);
        out.n.resize(h, 0.0);
        out.h.resize(h, 0.0);
        scratch.tmp.resize(h, 0.0);
        scratch.rh.resize(h, 0.0);

        gemv_into(&self.w_z, x, &mut out.z).expect("shape checked");
        gemv_into(&self.u_z, h_prev, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.z);
        Vector::axpy(1.0, &self.b_z, &mut out.z);
        sigmoid_slice(&mut out.z);

        gemv_into(&self.w_r, x, &mut out.r).expect("shape checked");
        gemv_into(&self.u_r, h_prev, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.r);
        Vector::axpy(1.0, &self.b_r, &mut out.r);
        sigmoid_slice(&mut out.r);

        Vector::hadamard_into(&out.r, h_prev, &mut scratch.rh);
        gemv_into(&self.w_n, x, &mut out.n).expect("shape checked");
        gemv_into(&self.u_n, &scratch.rh, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.n);
        Vector::axpy(1.0, &self.b_n, &mut out.n);
        tanh_slice(&mut out.n);

        for (((hi, &zi), &ni), &hp) in out.h.iter_mut().zip(&out.z).zip(&out.n).zip(h_prev) {
            *hi = (1.0 - zi) * ni + zi * hp;
        }
    }

    /// One forward step for `b` independent streams through a single weight
    /// pass (weight-stationary batching).
    ///
    /// All buffers are **lane-major**: element `i` of stream `j` lives at
    /// index `i·b + j` (`xs` is `[input × b]`, `hs_prev` and the `out`
    /// fields are `[hidden × b]`). Each weight matrix is walked once per
    /// step and applied to all `b` lanes via the batched
    /// [`simd`](rtm_tensor::simd) kernels.
    ///
    /// Lane contract: lane `j` of every output is **bit-identical** to
    /// [`GruCell::step_into`] run serially on lane `j`'s columns, under
    /// every [`SimdPolicy`](rtm_tensor::simd::SimdPolicy). This holds
    /// because (1) the batched matvec kernels replay the serial kernels'
    /// accumulation order per lane, (2) every `axpy` in the step uses
    /// `α = 1`, where FMA and mul+add round identically, so applying it
    /// across the whole lane-major buffer cannot differ from per-lane
    /// application, and (3) activations, hadamard and the final blend are
    /// element-wise with one rounding each.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != self.input_dim() * b` or
    /// `hs_prev.len() != self.hidden_dim() * b`.
    pub fn step_batch_into(
        &self,
        xs: &[f32],
        hs_prev: &[f32],
        b: usize,
        scratch: &mut GruScratch,
        out: &mut GruStep,
    ) {
        assert_eq!(xs.len(), self.input_dim() * b, "input dim mismatch");
        assert_eq!(hs_prev.len(), self.hidden_dim() * b, "hidden dim mismatch");
        let hb = self.hidden_dim() * b;
        out.z.resize(hb, 0.0);
        out.r.resize(hb, 0.0);
        out.n.resize(hb, 0.0);
        out.h.resize(hb, 0.0);
        scratch.tmp.resize(hb, 0.0);
        scratch.rh.resize(hb, 0.0);

        gemv_batch_into(&self.w_z, xs, b, &mut out.z).expect("shape checked");
        gemv_batch_into(&self.u_z, hs_prev, b, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.z);
        rtm_tensor::simd::broadcast_add(&self.b_z, b, &mut out.z);
        sigmoid_slice(&mut out.z);

        gemv_batch_into(&self.w_r, xs, b, &mut out.r).expect("shape checked");
        gemv_batch_into(&self.u_r, hs_prev, b, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.r);
        rtm_tensor::simd::broadcast_add(&self.b_r, b, &mut out.r);
        sigmoid_slice(&mut out.r);

        Vector::hadamard_into(&out.r, hs_prev, &mut scratch.rh);
        gemv_batch_into(&self.w_n, xs, b, &mut out.n).expect("shape checked");
        gemv_batch_into(&self.u_n, &scratch.rh, b, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.n);
        rtm_tensor::simd::broadcast_add(&self.b_n, b, &mut out.n);
        tanh_slice(&mut out.n);

        for (((hi, &zi), &ni), &hp) in out.h.iter_mut().zip(&out.z).zip(&out.n).zip(hs_prev) {
            *hi = (1.0 - zi) * ni + zi * hp;
        }
    }

    /// One forward step with the gate matvecs dispatched through a parallel
    /// [`rtm_exec::Executor`].
    ///
    /// The data dependencies of a GRU timestep split into two phases:
    /// `z`, `r` and `W_n x` are mutually independent (phase A, one pool task
    /// each), while the candidate recurrence `U_n (r ⊙ h)` must wait for
    /// `r` (phase B, on the caller thread). Per-gate accumulation order is
    /// identical to [`GruCell::step`], so the result is bit-exact for any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or
    /// `h_prev.len() != self.hidden_dim()`.
    pub fn step_with(&self, exec: &rtm_exec::Executor, x: &[f32], h_prev: &[f32]) -> GruStep {
        let mut scratch = GruScratch::new(self.hidden_dim());
        let mut out = GruStep::default();
        self.step_with_into(exec, x, h_prev, &mut scratch, &mut out);
        out
    }

    /// Allocation-free form of [`GruCell::step_with`]: the pooled phase-A
    /// tasks write straight into `out.z` / `out.r` / `out.n` with per-task
    /// temporaries from `scratch`, so the streaming loop allocates nothing
    /// per frame. Bit-exact with [`GruCell::step_into`] for any thread
    /// count (same per-gate accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or
    /// `h_prev.len() != self.hidden_dim()`.
    pub fn step_with_into(
        &self,
        exec: &rtm_exec::Executor,
        x: &[f32],
        h_prev: &[f32],
        scratch: &mut GruScratch,
        out: &mut GruStep,
    ) {
        assert_eq!(x.len(), self.input_dim(), "input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden_dim(), "hidden dim mismatch");
        let h = self.hidden_dim();
        out.z.resize(h, 0.0);
        out.r.resize(h, 0.0);
        out.n.resize(h, 0.0);
        out.h.resize(h, 0.0);
        scratch.tmp.resize(h, 0.0);
        scratch.tmp2.resize(h, 0.0);
        scratch.rh.resize(h, 0.0);

        {
            let gate = |w: &Matrix, u: &Matrix, b: &[f32], a: &mut [f32], tmp: &mut [f32]| {
                gemv_into(w, x, a).expect("shape checked");
                gemv_into(u, h_prev, tmp).expect("shape checked");
                Vector::axpy(1.0, tmp, a);
                Vector::axpy(1.0, b, a);
                sigmoid_slice(a);
            };
            let z_out = &mut out.z;
            let r_out = &mut out.r;
            let n_out = &mut out.n;
            let tmp_z = &mut scratch.tmp;
            let tmp_r = &mut scratch.tmp2;
            exec.run(vec![
                Box::new(move || gate(&self.w_z, &self.u_z, &self.b_z, z_out, tmp_z)),
                Box::new(move || gate(&self.w_r, &self.u_r, &self.b_r, r_out, tmp_r)),
                Box::new(move || gemv_into(&self.w_n, x, n_out).expect("shape checked")),
            ])
            .expect("gate task panicked");
        }

        // Phase B: the candidate recurrence needs the reset gate.
        Vector::hadamard_into(&out.r, h_prev, &mut scratch.rh);
        gemv_into(&self.u_n, &scratch.rh, &mut scratch.tmp).expect("shape checked");
        Vector::axpy(1.0, &scratch.tmp, &mut out.n);
        Vector::axpy(1.0, &self.b_n, &mut out.n);
        tanh_slice(&mut out.n);

        for (((hi, &zi), &ni), &hp) in out.h.iter_mut().zip(&out.z).zip(&out.n).zip(h_prev) {
            *hi = (1.0 - zi) * ni + zi * hp;
        }
    }

    /// Runs the cell over a full sequence starting from the zero state,
    /// returning the cache needed by [`GruCell::backward`].
    ///
    /// This is the *training* path: BPTT needs every input frame, entering
    /// state and gate activation, so the cache owns copies of them. When no
    /// backward pass will follow, use [`GruCell::forward_states`] instead —
    /// it keeps none of that.
    pub fn forward(&self, xs: &[Vec<f32>]) -> GruCache {
        let mut cache = GruCache::default();
        let mut scratch = GruScratch::new(self.hidden_dim());
        let mut h = vec![0.0f32; self.hidden_dim()];
        for x in xs {
            let mut step = GruStep::default();
            self.step_into(x, &h, &mut scratch, &mut step);
            cache.xs.push(x.clone());
            // The entering state moves into the cache; the new state is the
            // single clone the recurrence itself requires.
            cache
                .h_prevs
                .push(std::mem::replace(&mut h, step.h.clone()));
            cache.steps.push(step);
        }
        cache
    }

    /// Inference-only forward: the hidden state per timestep, nothing else.
    ///
    /// Unlike [`GruCell::forward`] this caches no inputs, entering states or
    /// gate activations — a reused [`GruScratch`] plus one reused
    /// [`GruStep`] serve the whole sequence, and the only per-frame
    /// allocation is the returned state itself. Bit-exact with the cached
    /// path (`cache.steps[t].h == states[t]`).
    pub fn forward_states(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GruScratch::new(self.hidden_dim());
        let mut step = GruStep::default();
        let mut h = vec![0.0f32; self.hidden_dim()];
        let mut states = Vec::with_capacity(xs.len());
        for x in xs {
            self.step_into(x, &h, &mut scratch, &mut step);
            // Double-buffer: the fresh state becomes next step's h_prev and
            // the old h buffer is recycled as the next output target.
            std::mem::swap(&mut h, &mut step.h);
            states.push(h.clone());
        }
        states
    }

    /// Backpropagation through time.
    ///
    /// `dh_out[t]` is the loss gradient w.r.t. the cell output `h_t`
    /// (e.g. from the classifier head at every frame). Returns the parameter
    /// gradients and the gradient w.r.t. each input frame (for stacking).
    ///
    /// # Panics
    ///
    /// Panics if `dh_out.len() != cache.steps.len()`.
    pub fn backward(&self, cache: &GruCache, dh_out: &[Vec<f32>]) -> (GruGrads, Vec<Vec<f32>>) {
        assert_eq!(dh_out.len(), cache.steps.len(), "dh_out length mismatch");
        let hid = self.hidden_dim();
        let inp = self.input_dim();
        let t_len = cache.steps.len();

        let mut grads = GruGrads::zeros(inp, hid);
        let mut dxs = vec![vec![0.0f32; inp]; t_len];
        // Gradient flowing into h_t from the future (initially zero at T-1).
        let mut dh_next = vec![0.0f32; hid];

        for t in (0..t_len).rev() {
            let step = &cache.steps[t];
            let h_prev = &cache.h_prevs[t];
            let x = &cache.xs[t];

            // Total gradient at h_t: local head gradient + recurrent carry.
            let mut dh = dh_out[t].clone();
            Vector::axpy(1.0, &dh_next, &mut dh);

            // h = (1-z) ⊙ n + z ⊙ h_prev
            let mut dz = vec![0.0f32; hid];
            let mut dn = vec![0.0f32; hid];
            let mut dh_prev = vec![0.0f32; hid];
            for i in 0..hid {
                dz[i] = dh[i] * (h_prev[i] - step.n[i]);
                dn[i] = dh[i] * (1.0 - step.z[i]);
                dh_prev[i] = dh[i] * step.z[i];
            }

            // n = tanh(a_n), a_n = W_n x + U_n (r ⊙ h_prev) + b_n
            let mut da_n = vec![0.0f32; hid];
            for i in 0..hid {
                da_n[i] = dn[i] * (1.0 - step.n[i] * step.n[i]);
            }
            let rh: Vec<f32> = step
                .r
                .iter()
                .zip(h_prev)
                .map(|(&ri, &hi)| ri * hi)
                .collect();
            ger(&mut grads.w_n, 1.0, &da_n, x).expect("shape checked");
            ger(&mut grads.u_n, 1.0, &da_n, &rh).expect("shape checked");
            Vector::axpy(1.0, &da_n, &mut grads.b_n);
            let drh = gemv_transposed(&self.u_n, &da_n).expect("shape checked");
            let mut dr = vec![0.0f32; hid];
            for i in 0..hid {
                dr[i] = drh[i] * h_prev[i];
                dh_prev[i] += drh[i] * step.r[i];
            }

            // z = σ(a_z), a_z = W_z x + U_z h_prev + b_z
            let mut da_z = vec![0.0f32; hid];
            for i in 0..hid {
                da_z[i] = dz[i] * step.z[i] * (1.0 - step.z[i]);
            }
            ger(&mut grads.w_z, 1.0, &da_z, x).expect("shape checked");
            ger(&mut grads.u_z, 1.0, &da_z, h_prev).expect("shape checked");
            Vector::axpy(1.0, &da_z, &mut grads.b_z);
            Vector::axpy(
                1.0,
                &gemv_transposed(&self.u_z, &da_z).expect("shape checked"),
                &mut dh_prev,
            );

            // r = σ(a_r), a_r = W_r x + U_r h_prev + b_r
            let mut da_r = vec![0.0f32; hid];
            for i in 0..hid {
                da_r[i] = dr[i] * step.r[i] * (1.0 - step.r[i]);
            }
            ger(&mut grads.w_r, 1.0, &da_r, x).expect("shape checked");
            ger(&mut grads.u_r, 1.0, &da_r, h_prev).expect("shape checked");
            Vector::axpy(1.0, &da_r, &mut grads.b_r);
            Vector::axpy(
                1.0,
                &gemv_transposed(&self.u_r, &da_r).expect("shape checked"),
                &mut dh_prev,
            );

            // Input gradient for stacked layers.
            let mut dx = gemv_transposed(&self.w_z, &da_z).expect("shape checked");
            Vector::axpy(
                1.0,
                &gemv_transposed(&self.w_r, &da_r).expect("shape checked"),
                &mut dx,
            );
            Vector::axpy(
                1.0,
                &gemv_transposed(&self.w_n, &da_n).expect("shape checked"),
                &mut dx,
            );
            dxs[t] = dx;

            dh_next = dh_prev;
        }
        (grads, dxs)
    }

    /// Applies one SGD-style update `param -= lr * grad` to every parameter.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shapes do not match the cell.
    pub fn apply_grads(&mut self, grads: &GruGrads, lr: f32) {
        self.w_z.axpy(-lr, &grads.w_z).expect("shape");
        self.u_z.axpy(-lr, &grads.u_z).expect("shape");
        Vector::axpy(-lr, &grads.b_z, &mut self.b_z);
        self.w_r.axpy(-lr, &grads.w_r).expect("shape");
        self.u_r.axpy(-lr, &grads.u_r).expect("shape");
        Vector::axpy(-lr, &grads.b_r, &mut self.b_r);
        self.w_n.axpy(-lr, &grads.w_n).expect("shape");
        self.u_n.axpy(-lr, &grads.u_n).expect("shape");
        Vector::axpy(-lr, &grads.b_n, &mut self.b_n);
    }
}

impl GruGrads {
    /// Zero gradients for a cell of the given dimensions.
    pub fn zeros(input_dim: usize, hidden_dim: usize) -> GruGrads {
        GruGrads {
            w_z: Matrix::zeros(hidden_dim, input_dim),
            u_z: Matrix::zeros(hidden_dim, hidden_dim),
            b_z: vec![0.0; hidden_dim],
            w_r: Matrix::zeros(hidden_dim, input_dim),
            u_r: Matrix::zeros(hidden_dim, hidden_dim),
            b_r: vec![0.0; hidden_dim],
            w_n: Matrix::zeros(hidden_dim, input_dim),
            u_n: Matrix::zeros(hidden_dim, hidden_dim),
            b_n: vec![0.0; hidden_dim],
        }
    }

    /// Accumulates another gradient set into this one.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &GruGrads) {
        self.w_z.axpy(1.0, &other.w_z).expect("shape");
        self.u_z.axpy(1.0, &other.u_z).expect("shape");
        Vector::axpy(1.0, &other.b_z, &mut self.b_z);
        self.w_r.axpy(1.0, &other.w_r).expect("shape");
        self.u_r.axpy(1.0, &other.u_r).expect("shape");
        Vector::axpy(1.0, &other.b_r, &mut self.b_r);
        self.w_n.axpy(1.0, &other.w_n).expect("shape");
        self.u_n.axpy(1.0, &other.u_n).expect("shape");
        Vector::axpy(1.0, &other.b_n, &mut self.b_n);
    }

    /// Scales every gradient by `s` (e.g. batch averaging).
    pub fn scale(&mut self, s: f32) {
        self.w_z.scale_inplace(s);
        self.u_z.scale_inplace(s);
        Vector::scale(&mut self.b_z, s);
        self.w_r.scale_inplace(s);
        self.u_r.scale_inplace(s);
        Vector::scale(&mut self.b_r, s);
        self.w_n.scale_inplace(s);
        self.u_n.scale_inplace(s);
        Vector::scale(&mut self.b_n, s);
    }

    /// Sum of squared entries across all gradients (for global-norm
    /// clipping).
    pub fn squared_norm(&self) -> f32 {
        let m = |m: &Matrix| m.as_slice().iter().map(|v| v * v).sum::<f32>();
        let v = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>();
        m(&self.w_z)
            + m(&self.u_z)
            + v(&self.b_z)
            + m(&self.w_r)
            + m(&self.u_r)
            + v(&self.b_r)
            + m(&self.w_n)
            + m(&self.u_n)
            + v(&self.b_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_shapes_and_range() {
        let cell = GruCell::new(4, 6, 1);
        let step = cell.step(&[0.1, -0.2, 0.3, 0.0], &[0.0; 6]);
        assert_eq!(step.z.len(), 6);
        assert_eq!(step.h.len(), 6);
        // Gates are probabilities.
        assert!(step.z.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(step.r.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Candidate and output are in tanh range.
        assert!(step.n.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(step.h.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn zero_input_zero_state_keeps_bounded_output() {
        let cell = GruCell::new(3, 3, 7);
        let step = cell.step(&[0.0; 3], &[0.0; 3]);
        // With zero h_prev and biases 0, n = tanh(0) = 0 so h = 0.
        assert!(step.h.iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn update_gate_interpolates() {
        // If z saturates at 1, h_t = h_prev exactly.
        let mut cell = GruCell::new(1, 1, 3);
        cell.b_z = vec![100.0]; // force z -> 1
        let step = cell.step(&[0.5], &[0.7]);
        assert!((step.h[0] - 0.7).abs() < 1e-4);
        // If z saturates at 0, h_t = n_t.
        cell.b_z = vec![-100.0];
        let step = cell.step(&[0.5], &[0.7]);
        assert!((step.h[0] - step.n[0]).abs() < 1e-6);
    }

    #[test]
    fn forward_caches_full_sequence() {
        let cell = GruCell::new(2, 3, 11);
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let cache = cell.forward(&xs);
        assert_eq!(cache.steps.len(), 3);
        assert_eq!(cache.h_prevs[0], vec![0.0; 3]);
        assert_eq!(cache.h_prevs[1], cache.steps[0].h);
        assert_eq!(cache.h_prevs[2], cache.steps[1].h);
    }

    #[test]
    fn recurrence_carries_information() {
        let cell = GruCell::new(1, 4, 5);
        // Same final input, different prefix: final h must differ.
        let a = cell.forward(&[vec![1.0], vec![0.0]]);
        let b = cell.forward(&[vec![-1.0], vec![0.0]]);
        let ha = &a.steps[1].h;
        let hb = &b.steps[1].h;
        let diff: f32 = ha.iter().zip(hb).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "hidden state must depend on history");
    }

    /// Central finite-difference check of every parameter gradient against
    /// the analytic BPTT. Loss = sum of all h_t components (linear in h, so
    /// dh_out = 1 everywhere).
    #[test]
    fn gradient_check_parameters() {
        let input_dim = 3;
        let hidden = 4;
        let t_len = 5;
        let cell = GruCell::new(input_dim, hidden, 42);
        let mut rng = rtm_tensor::init::rng_from_seed(77);
        let xs: Vec<Vec<f32>> = (0..t_len)
            .map(|_| {
                (0..input_dim)
                    .map(|_| rtm_tensor::init::standard_normal(&mut rng) * 0.5)
                    .collect()
            })
            .collect();

        let loss = |c: &GruCell| -> f64 {
            let cache = c.forward(&xs);
            cache
                .steps
                .iter()
                .map(|s| s.h.iter().map(|&v| v as f64).sum::<f64>())
                .sum()
        };

        let cache = cell.forward(&xs);
        let dh_out = vec![vec![1.0f32; hidden]; t_len];
        let (grads, _) = cell.backward(&cache, &dh_out);

        let eps = 1e-3f32;
        #[allow(clippy::type_complexity)]
        let fields: [(
            &str,
            fn(&GruCell) -> &Matrix,
            fn(&mut GruCell) -> &mut Matrix,
            fn(&GruGrads) -> &Matrix,
        ); 6] = [
            ("w_z", |c| &c.w_z, |c| &mut c.w_z, |g| &g.w_z),
            ("u_z", |c| &c.u_z, |c| &mut c.u_z, |g| &g.u_z),
            ("w_r", |c| &c.w_r, |c| &mut c.w_r, |g| &g.w_r),
            ("u_r", |c| &c.u_r, |c| &mut c.u_r, |g| &g.u_r),
            ("w_n", |c| &c.w_n, |c| &mut c.w_n, |g| &g.w_n),
            ("u_n", |c| &c.u_n, |c| &mut c.u_n, |g| &g.u_n),
        ];
        for (name, _get, get_mut, get_grad) in fields {
            let shape = get_grad(&grads).shape();
            // Spot-check a handful of coordinates per matrix.
            for &(r, c) in &[(0usize, 0usize), (1, 1), (shape.0 - 1, shape.1 - 1)] {
                let mut plus = cell.clone();
                get_mut(&mut plus)[(r, c)] += eps;
                let mut minus = cell.clone();
                get_mut(&mut minus)[(r, c)] -= eps;
                let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
                let an = get_grad(&grads)[(r, c)];
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                    "{name}[{r},{c}]: finite-diff {fd} vs analytic {an}"
                );
            }
        }

        // Bias gradients.
        for i in 0..hidden {
            let mut plus = cell.clone();
            plus.b_n[i] += eps;
            let mut minus = cell.clone();
            minus.b_n[i] -= eps;
            let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - grads.b_n[i]).abs() < 2e-2 * (1.0 + fd.abs()),
                "b_n[{i}]: {fd} vs {}",
                grads.b_n[i]
            );
        }
    }

    /// Gradient w.r.t. inputs must also match finite differences (needed for
    /// layer stacking).
    #[test]
    fn gradient_check_inputs() {
        let cell = GruCell::new(2, 3, 9);
        let xs = vec![vec![0.3, -0.1], vec![0.2, 0.4], vec![-0.5, 0.1]];
        let cache = cell.forward(&xs);
        let dh_out = vec![vec![1.0f32; 3]; 3];
        let (_, dxs) = cell.backward(&cache, &dh_out);

        let loss = |xs: &[Vec<f32>]| -> f64 {
            let cache = cell.forward(xs);
            cache
                .steps
                .iter()
                .map(|s| s.h.iter().map(|&v| v as f64).sum::<f64>())
                .sum()
        };
        let eps = 1e-3f32;
        for t in 0..3 {
            for i in 0..2 {
                let mut plus = xs.clone();
                plus[t][i] += eps;
                let mut minus = xs.clone();
                minus[t][i] -= eps;
                let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - dxs[t][i]).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dx[{t}][{i}]: {fd} vs {}",
                    dxs[t][i]
                );
            }
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut a = GruGrads::zeros(2, 2);
        let mut b = GruGrads::zeros(2, 2);
        b.w_z[(0, 0)] = 2.0;
        b.b_n[1] = 4.0;
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.w_z[(0, 0)], 4.0);
        assert_eq!(a.b_n[1], 8.0);
        a.scale(0.5);
        assert_eq!(a.w_z[(0, 0)], 2.0);
        assert!((a.squared_norm() - (4.0 + 16.0)).abs() < 1e-6);
    }

    #[test]
    fn apply_grads_descends() {
        let mut cell = GruCell::new(1, 1, 2);
        let before = cell.w_z[(0, 0)];
        let mut g = GruGrads::zeros(1, 1);
        g.w_z[(0, 0)] = 1.0;
        cell.apply_grads(&g, 0.1);
        assert!((cell.w_z[(0, 0)] - (before - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn prunable_exposes_six_matrices() {
        let mut cell = GruCell::new(2, 3, 1);
        assert_eq!(cell.prunable().len(), 6);
        let names: Vec<_> = cell.prunable().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["w_z", "u_z", "w_r", "u_r", "w_n", "u_n"]);
        for (_, m) in cell.prunable_mut() {
            m.scale_inplace(0.0);
        }
        assert_eq!(cell.w_n.frobenius_norm(), 0.0);
    }

    #[test]
    fn num_params_formula() {
        let cell = GruCell::new(10, 20, 0);
        // 3 gates x (20x10 + 20x20 + 20)
        assert_eq!(cell.num_params(), 3 * (200 + 400 + 20));
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn step_rejects_bad_input() {
        let cell = GruCell::new(2, 2, 0);
        cell.step(&[1.0], &[0.0, 0.0]);
    }

    #[test]
    fn step_into_reuses_buffers_bit_exact() {
        let cell = GruCell::new(5, 7, 13);
        let mut scratch = GruScratch::new(7);
        let mut out = GruStep::default();
        let mut h = vec![0.0f32; 7];
        for t in 0..6 {
            let x: Vec<f32> = (0..5).map(|i| ((t * 5 + i) as f32 * 0.3).sin()).collect();
            let fresh = cell.step(&x, &h);
            cell.step_into(&x, &h, &mut scratch, &mut out);
            assert_eq!(out, fresh, "step {t}");
            h = fresh.h;
        }
    }

    #[test]
    fn step_batch_lanes_match_serial_steps_bit_exact() {
        // Carry b independent hidden states through several timesteps in one
        // lane-major buffer; every lane must stay bit-identical to a serial
        // single-stream run of that lane's inputs.
        let cell = GruCell::new(6, 9, 21);
        for b in [1usize, 2, 4, 9] {
            let mut scratch = GruScratch::new(9);
            let mut out = GruStep::default();
            let mut hs = vec![0.0f32; 9 * b];
            let mut serial_h = vec![vec![0.0f32; 9]; b];
            for t in 0..5 {
                // Distinct input per lane, laid out lane-major.
                let mut xs = vec![0.0f32; 6 * b];
                for j in 0..b {
                    for i in 0..6 {
                        xs[i * b + j] = ((t * 100 + j * 10 + i) as f32 * 0.17).sin();
                    }
                }
                cell.step_batch_into(&xs, &hs, b, &mut scratch, &mut out);
                for j in 0..b {
                    let x_j: Vec<f32> = (0..6).map(|i| xs[i * b + j]).collect();
                    let want = cell.step(&x_j, &serial_h[j]);
                    for i in 0..9 {
                        assert_eq!(out.z[i * b + j], want.z[i], "b={b} t={t} lane {j} z[{i}]");
                        assert_eq!(out.r[i * b + j], want.r[i], "b={b} t={t} lane {j} r[{i}]");
                        assert_eq!(out.n[i * b + j], want.n[i], "b={b} t={t} lane {j} n[{i}]");
                        assert_eq!(out.h[i * b + j], want.h[i], "b={b} t={t} lane {j} h[{i}]");
                    }
                    serial_h[j] = want.h;
                }
                hs.copy_from_slice(&out.h);
            }
        }
    }

    #[test]
    fn step_with_into_reuses_buffers_bit_exact() {
        let cell = GruCell::new(6, 10, 17);
        let exec = rtm_exec::Executor::new(3);
        let mut scratch = GruScratch::new(10);
        let mut out = GruStep::default();
        let mut h = vec![0.0f32; 10];
        for t in 0..4 {
            let x: Vec<f32> = (0..6).map(|i| ((t * 6 + i) as f32 * 0.4).sin()).collect();
            let serial = cell.step(&x, &h);
            cell.step_with_into(&exec, &x, &h, &mut scratch, &mut out);
            assert_eq!(out, serial, "step {t}");
            h = serial.h;
        }
    }

    #[test]
    fn forward_states_matches_cached_forward() {
        let cell = GruCell::new(3, 5, 21);
        let xs: Vec<Vec<f32>> = (0..9)
            .map(|t| (0..3).map(|i| ((t * 3 + i) as f32 * 0.17).cos()).collect())
            .collect();
        let cache = cell.forward(&xs);
        let states = cell.forward_states(&xs);
        let want: Vec<Vec<f32>> = cache.steps.iter().map(|s| s.h.clone()).collect();
        assert_eq!(states, want);
    }

    #[test]
    fn scratch_adapts_across_cell_widths() {
        // A stacked network threads ONE scratch through layers of different
        // widths; the buffers must resize transparently.
        let wide = GruCell::new(4, 9, 1);
        let narrow = GruCell::new(9, 3, 2);
        let mut scratch = GruScratch::new(9);
        let mut out = GruStep::default();
        let x: Vec<f32> = (0..4).map(|i| i as f32 * 0.2 - 0.3).collect();
        wide.step_into(&x, &[0.0; 9], &mut scratch, &mut out);
        assert_eq!(out, wide.step(&x, &[0.0; 9]));
        let mid = out.h.clone();
        narrow.step_into(&mid, &[0.0; 3], &mut scratch, &mut out);
        assert_eq!(out, narrow.step(&mid, &[0.0; 3]));
    }

    #[test]
    fn step_with_matches_step_bit_exact() {
        let cell = GruCell::new(6, 10, 11);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.4).sin()).collect();
        let mut h = vec![0.0f32; 10];
        for threads in [1usize, 2, 3, 8] {
            let exec = rtm_exec::Executor::new(threads);
            let mut hp = vec![0.0f32; 10];
            for t in 0..4 {
                let serial = cell.step(&x, if t == 0 { &h } else { &hp });
                let par = cell.step_with(&exec, &x, if t == 0 { &h } else { &hp });
                assert_eq!(par, serial, "{threads} threads, step {t}");
                hp = serial.h;
            }
        }
        h.fill(0.3);
        let exec = rtm_exec::Executor::new(4);
        assert_eq!(cell.step_with(&exec, &x, &h), cell.step(&x, &h));
    }
}
