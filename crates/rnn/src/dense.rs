//! Fully-connected classifier head.
//!
//! The speech task places a linear layer + softmax on top of the last GRU
//! layer, producing per-frame phone logits (the PyTorch-Kaldi setup of §V-A
//! ends the same way). Forward is `logits = W h + b`; backward produces
//! `dW`, `db` and `dh` for the recurrent stack below.

use rtm_tensor::gemm::{gemv, gemv_transposed, ger};
use rtm_tensor::init::{rng_from_seed, xavier_uniform};
use rtm_tensor::{Matrix, Vector};

/// A dense (affine) layer `y = W x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Weights, `out × in`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f32>,
}

/// Gradients mirroring [`DenseLayer`].
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrads {
    /// d/dW
    pub w: Matrix,
    /// d/db
    pub b: Vec<f32>,
}

impl DenseLayer {
    /// Creates a layer with Xavier weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> DenseLayer {
        let mut rng = rng_from_seed(seed);
        DenseLayer {
            w: xavier_uniform(output_dim, input_dim, &mut rng),
            b: vec![0.0; output_dim],
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass for one vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = gemv(&self.w, x).expect("dense forward: dim mismatch");
        Vector::axpy(1.0, &self.b, &mut y);
        y
    }

    /// Backward pass for one vector: accumulates parameter gradients into
    /// `grads` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn backward(&self, x: &[f32], dy: &[f32], grads: &mut DenseGrads) -> Vec<f32> {
        ger(&mut grads.w, 1.0, dy, x).expect("dense backward: dim mismatch");
        Vector::axpy(1.0, dy, &mut grads.b);
        gemv_transposed(&self.w, dy).expect("dense backward: dim mismatch")
    }

    /// `param -= lr * grad`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_grads(&mut self, grads: &DenseGrads, lr: f32) {
        self.w.axpy(-lr, &grads.w).expect("shape");
        Vector::axpy(-lr, &grads.b, &mut self.b);
    }
}

impl DenseGrads {
    /// Zero gradients for the given dimensions.
    pub fn zeros(input_dim: usize, output_dim: usize) -> DenseGrads {
        DenseGrads {
            w: Matrix::zeros(output_dim, input_dim),
            b: vec![0.0; output_dim],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_affine() {
        let mut layer = DenseLayer::new(2, 2, 0);
        layer.w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        layer.b = vec![0.5, -0.5];
        assert_eq!(layer.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn backward_gradient_check() {
        let layer = DenseLayer::new(3, 2, 5);
        let x = vec![0.3, -0.7, 0.2];
        // Loss = sum(y) so dy = 1.
        let loss = |l: &DenseLayer| -> f32 { l.forward(&x).iter().sum() };
        let mut grads = DenseGrads::zeros(3, 2);
        let dx = layer.backward(&x, &[1.0, 1.0], &mut grads);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = layer.clone();
                plus.w[(r, c)] += eps;
                let mut minus = layer.clone();
                minus.w[(r, c)] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!((fd - grads.w[(r, c)]).abs() < 1e-2, "w[{r},{c}]");
            }
        }
        // dx check
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fd = (layer.forward(&xp).iter().sum::<f32>()
                - layer.forward(&xm).iter().sum::<f32>())
                / (2.0 * eps);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]");
        }
        // bias grad is dy itself
        assert_eq!(grads.b, vec![1.0, 1.0]);
    }

    #[test]
    fn apply_grads_descends() {
        let mut layer = DenseLayer::new(1, 1, 0);
        let w0 = layer.w[(0, 0)];
        let mut g = DenseGrads::zeros(1, 1);
        g.w[(0, 0)] = 1.0;
        g.b[0] = 2.0;
        layer.apply_grads(&g, 0.1);
        assert!((layer.w[(0, 0)] - (w0 - 0.1)).abs() < 1e-6);
        assert!((layer.b[0] + 0.2).abs() < 1e-6);
    }

    #[test]
    fn num_params() {
        assert_eq!(DenseLayer::new(10, 4, 0).num_params(), 44);
    }
}
