//! The evaluation network of §V-A: a stack of GRU layers plus a dense
//! softmax head, with end-to-end training.
//!
//! The paper's model is "2 GRU layers and about 9.6M overall number of
//! parameters" on TIMIT. [`GruNetwork`] reproduces the topology at a
//! configurable width: the Table I experiment uses a scaled-down hidden size
//! (documented in EXPERIMENTS.md) because training a 9.6M-parameter model to
//! convergence per compression point is outside a laptop budget, while the
//! Table II performance sweep uses the full 1024-wide matrices (no training
//! needed there).

use crate::dense::{DenseGrads, DenseLayer};
use crate::gru::{GruCache, GruCell, GruGrads};
use crate::loss::softmax_cross_entropy;
use crate::optimizer::{GradClip, Optimizer};
use rtm_tensor::Matrix;

/// Shape of a [`GruNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Feature dimension of each input frame.
    pub input_dim: usize,
    /// Hidden width of each GRU layer (one entry per layer).
    pub hidden_dims: Vec<usize>,
    /// Number of output classes (phones).
    pub num_classes: usize,
}

/// A multi-layer GRU network with a dense classifier head.
#[derive(Debug, Clone, PartialEq)]
pub struct GruNetwork {
    /// The recurrent layers, input-side first.
    pub layers: Vec<GruCell>,
    /// The classifier head.
    pub head: DenseLayer,
}

/// Caches from a full forward pass, consumed by [`GruNetwork::backward`].
#[derive(Debug, Clone, Default)]
pub struct NetworkCache {
    layer_caches: Vec<GruCache>,
    head_inputs: Vec<Vec<f32>>,
}

/// Gradients mirroring [`GruNetwork`].
#[derive(Debug, Clone)]
pub struct NetworkGrads {
    /// Per-layer GRU gradients.
    pub layers: Vec<GruGrads>,
    /// Head gradients.
    pub head: DenseGrads,
}

impl NetworkGrads {
    /// Mutable references to the gradients of every prunable weight matrix,
    /// named identically to [`GruNetwork::prunable_mut`]. Used by the ADMM
    /// trainer to add the augmented-Lagrangian penalty term per tensor.
    pub fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        for (i, g) in self.layers.iter_mut().enumerate() {
            out.push((format!("layer{i}.w_z"), &mut g.w_z));
            out.push((format!("layer{i}.u_z"), &mut g.u_z));
            out.push((format!("layer{i}.w_r"), &mut g.w_r));
            out.push((format!("layer{i}.u_r"), &mut g.u_r));
            out.push((format!("layer{i}.w_n"), &mut g.w_n));
            out.push((format!("layer{i}.u_n"), &mut g.u_n));
        }
        out
    }
}

/// Outcome of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean frame cross-entropy.
    pub loss: f32,
    /// Frame accuracy in `[0, 1]`.
    pub accuracy: f32,
}

impl GruNetwork {
    /// Builds a network with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hidden_dims` is empty.
    pub fn new(cfg: &NetworkConfig, seed: u64) -> GruNetwork {
        assert!(!cfg.hidden_dims.is_empty(), "need at least one GRU layer");
        let mut layers = Vec::with_capacity(cfg.hidden_dims.len());
        let mut in_dim = cfg.input_dim;
        for (i, &h) in cfg.hidden_dims.iter().enumerate() {
            layers.push(GruCell::new(in_dim, h, seed.wrapping_add(i as u64)));
            in_dim = h;
        }
        let head = DenseLayer::new(in_dim, cfg.num_classes, seed.wrapping_add(1000));
        GruNetwork { layers, head }
    }

    /// Total parameter count (GRU layers + head).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(GruCell::num_params).sum::<usize>() + self.head.num_params()
    }

    /// Forward pass producing per-frame logits (no caches kept).
    ///
    /// This is the inference path: each GRU layer runs through
    /// [`GruCell::forward_states`], which reuses one scratch workspace and
    /// keeps no BPTT state — no per-frame clones of inputs, entering states
    /// or gate activations. Training goes through
    /// [`GruNetwork::forward_cached`]; the two are bit-exact.
    pub fn forward(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut current = self.layers[0].forward_states(frames);
        for layer in &self.layers[1..] {
            current = layer.forward_states(&current);
        }
        current.iter().map(|h| self.head.forward(h)).collect()
    }

    /// Forward pass that also returns the caches needed for
    /// [`GruNetwork::backward`].
    pub fn forward_cached(&self, frames: &[Vec<f32>]) -> (Vec<Vec<f32>>, NetworkCache) {
        let mut cache = NetworkCache::default();
        let mut current: Vec<Vec<f32>> = frames.to_vec();
        for layer in &self.layers {
            let c = layer.forward(&current);
            current = c.steps.iter().map(|s| s.h.clone()).collect();
            cache.layer_caches.push(c);
        }
        cache.head_inputs = current.clone();
        let logits = current.iter().map(|h| self.head.forward(h)).collect();
        (logits, cache)
    }

    /// Per-frame class predictions (argmax of the logits).
    pub fn predict(&self, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward(frames)
            .iter()
            .map(|l| rtm_tensor::Vector::argmax(l))
            .collect()
    }

    /// Backward pass from per-frame logit gradients.
    pub fn backward(&self, cache: &NetworkCache, dlogits: &[Vec<f32>]) -> NetworkGrads {
        let mut head_grads = DenseGrads::zeros(self.head.input_dim(), self.head.output_dim());
        let mut dh: Vec<Vec<f32>> = dlogits
            .iter()
            .zip(&cache.head_inputs)
            .map(|(dl, h)| self.head.backward(h, dl, &mut head_grads))
            .collect();

        let mut layer_grads: Vec<GruGrads> = Vec::with_capacity(self.layers.len());
        for (layer, lcache) in self.layers.iter().zip(&cache.layer_caches).rev() {
            let (grads, dxs) = layer.backward(lcache, &dh);
            layer_grads.push(grads);
            dh = dxs;
        }
        layer_grads.reverse();
        NetworkGrads {
            layers: layer_grads,
            head: head_grads,
        }
    }

    /// One full training step on a single sequence: forward, loss, BPTT,
    /// optional global-norm clipping, optimizer update.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != targets.len()` or a target is out of range.
    pub fn train_step(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> StepStats {
        let (logits, cache) = self.forward_cached(frames);
        let loss = softmax_cross_entropy(&logits, targets);
        let mut grads = self.backward(&cache, &loss.dlogits);

        if let Some(clip) = clip {
            let sq: f32 = grads.layers.iter().map(GruGrads::squared_norm).sum::<f32>()
                + grads.head.w.as_slice().iter().map(|v| v * v).sum::<f32>()
                + grads.head.b.iter().map(|v| v * v).sum::<f32>();
            let f = clip.scale_factor(sq);
            if f < 1.0 {
                for g in &mut grads.layers {
                    g.scale(f);
                }
                grads.head.w.scale_inplace(f);
                rtm_tensor::Vector::scale(&mut grads.head.b, f);
            }
        }

        self.apply_with_optimizer(&grads, opt);
        StepStats {
            loss: loss.loss,
            accuracy: loss.correct as f32 / targets.len().max(1) as f32,
        }
    }

    /// One training step on a *mini-batch* of sequences: gradients are
    /// accumulated across the batch, averaged, optionally clipped, and
    /// applied in a single optimizer update — lower-variance steps than
    /// per-sequence updates at the same data cost.
    ///
    /// Returns the mean loss over the batch; a no-op returning 0.0 for an
    /// empty batch.
    ///
    /// # Panics
    ///
    /// Panics on frame/target mismatches within any sequence.
    pub fn train_batch(
        &mut self,
        batch: &[(Vec<Vec<f32>>, Vec<usize>)],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let mut total_loss = 0.0f32;
        let mut acc: Option<NetworkGrads> = None;
        for (frames, targets) in batch {
            let (logits, cache) = self.forward_cached(frames);
            let loss = softmax_cross_entropy(&logits, targets);
            total_loss += loss.loss;
            let grads = self.backward(&cache, &loss.dlogits);
            match &mut acc {
                None => acc = Some(grads),
                Some(a) => {
                    for (ag, g) in a.layers.iter_mut().zip(&grads.layers) {
                        ag.accumulate(g);
                    }
                    a.head.w.axpy(1.0, &grads.head.w).expect("shape");
                    rtm_tensor::Vector::axpy(1.0, &grads.head.b, &mut a.head.b);
                }
            }
        }
        let mut grads = acc.expect("nonempty batch");
        let scale = 1.0 / batch.len() as f32;
        for g in &mut grads.layers {
            g.scale(scale);
        }
        grads.head.w.scale_inplace(scale);
        rtm_tensor::Vector::scale(&mut grads.head.b, scale);

        if let Some(clip) = clip {
            let sq: f32 = grads.layers.iter().map(GruGrads::squared_norm).sum::<f32>()
                + grads.head.w.as_slice().iter().map(|v| v * v).sum::<f32>()
                + grads.head.b.iter().map(|v| v * v).sum::<f32>();
            let f = clip.scale_factor(sq);
            if f < 1.0 {
                for g in &mut grads.layers {
                    g.scale(f);
                }
                grads.head.w.scale_inplace(f);
                rtm_tensor::Vector::scale(&mut grads.head.b, f);
            }
        }
        self.apply_with_optimizer(&grads, opt);
        total_loss / batch.len() as f32
    }

    /// Applies gradients through an optimizer, assigning each tensor a
    /// stable slot id (layer-major, then head).
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the network's shape.
    pub fn apply_with_optimizer(&mut self, grads: &NetworkGrads, opt: &mut dyn Optimizer) {
        assert_eq!(
            grads.layers.len(),
            self.layers.len(),
            "gradient layer count"
        );
        let mut slot = 0usize;
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            opt.update(slot, layer.w_z.as_mut_slice(), g.w_z.as_slice());
            opt.update(slot + 1, layer.u_z.as_mut_slice(), g.u_z.as_slice());
            opt.update(slot + 2, &mut layer.b_z, &g.b_z);
            opt.update(slot + 3, layer.w_r.as_mut_slice(), g.w_r.as_slice());
            opt.update(slot + 4, layer.u_r.as_mut_slice(), g.u_r.as_slice());
            opt.update(slot + 5, &mut layer.b_r, &g.b_r);
            opt.update(slot + 6, layer.w_n.as_mut_slice(), g.w_n.as_slice());
            opt.update(slot + 7, layer.u_n.as_mut_slice(), g.u_n.as_slice());
            opt.update(slot + 8, &mut layer.b_n, &g.b_n);
            slot += 9;
        }
        opt.update(slot, self.head.w.as_mut_slice(), grads.head.w.as_slice());
        opt.update(slot + 1, &mut self.head.b, &grads.head.b);
    }

    /// Every prunable weight matrix with a stable hierarchical name
    /// (`"layer{i}.{gate}"`), the interface `rtm-pruning` consumes.
    /// The head and all biases are excluded, matching the paper's pruning
    /// scope (RNN weight tensors).
    pub fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for (name, m) in layer.prunable_mut() {
                out.push((format!("layer{i}.{name}"), m));
            }
        }
        out
    }

    /// Shared-reference variant of [`GruNetwork::prunable_mut`].
    pub fn prunable(&self) -> Vec<(String, &Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            for (name, m) in layer.prunable() {
                out.push((format!("layer{i}.{name}"), m));
            }
        }
        out
    }

    /// Number of nonzero prunable weights (the "Para. No." column of
    /// Table I counts surviving parameters).
    pub fn nonzero_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.count_nonzero()).sum()
    }

    /// Total prunable weight count (dense).
    pub fn total_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Adam, Sgd};

    fn tiny_cfg() -> NetworkConfig {
        NetworkConfig {
            input_dim: 4,
            hidden_dims: vec![8, 8],
            num_classes: 3,
        }
    }

    #[test]
    fn forward_shapes() {
        let net = GruNetwork::new(&tiny_cfg(), 1);
        let frames = vec![vec![0.1; 4]; 7];
        let logits = net.forward(&frames);
        assert_eq!(logits.len(), 7);
        assert!(logits.iter().all(|l| l.len() == 3));
    }

    #[test]
    #[should_panic(expected = "at least one GRU layer")]
    fn empty_layers_panics() {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 2,
                hidden_dims: vec![],
                num_classes: 2,
            },
            0,
        );
    }

    #[test]
    fn num_params_adds_up() {
        let net = GruNetwork::new(&tiny_cfg(), 1);
        // Layer 0: 3*(8*4 + 8*8 + 8), layer 1: 3*(8*8+8*8+8), head: 3*8+3
        let want = 3 * (32 + 64 + 8) + 3 * (64 + 64 + 8) + (24 + 3);
        assert_eq!(net.num_params(), want);
    }

    #[test]
    fn prunable_names_stable() {
        let mut net = GruNetwork::new(&tiny_cfg(), 1);
        let names: Vec<String> = net.prunable_mut().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 12); // 2 layers x 6 matrices
        assert_eq!(names[0], "layer0.w_z");
        assert_eq!(names[11], "layer1.u_n");
        let ro: Vec<String> = net.prunable().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ro);
    }

    #[test]
    fn nonzero_counting() {
        let mut net = GruNetwork::new(&tiny_cfg(), 1);
        let total = net.total_prunable_params();
        assert_eq!(net.nonzero_prunable_params(), total); // Xavier never exactly 0
        for (_, m) in net.prunable_mut() {
            m.scale_inplace(0.0);
        }
        assert_eq!(net.nonzero_prunable_params(), 0);
    }

    /// End-to-end training must reduce loss on a learnable toy problem:
    /// class = which half of the input is active.
    #[test]
    fn training_reduces_loss() {
        let cfg = NetworkConfig {
            input_dim: 4,
            hidden_dims: vec![12],
            num_classes: 2,
        };
        let mut net = GruNetwork::new(&cfg, 3);
        let mut opt = Adam::new(0.01);
        let seq_a: Vec<Vec<f32>> = (0..6).map(|_| vec![1.0, 1.0, 0.0, 0.0]).collect();
        let seq_b: Vec<Vec<f32>> = (0..6).map(|_| vec![0.0, 0.0, 1.0, 1.0]).collect();
        let ta = vec![0usize; 6];
        let tb = vec![1usize; 6];

        let first = net.train_step(&seq_a, &ta, &mut opt, None).loss
            + net.train_step(&seq_b, &tb, &mut opt, None).loss;
        for _ in 0..60 {
            net.train_step(&seq_a, &ta, &mut opt, None);
            net.train_step(&seq_b, &tb, &mut opt, None);
        }
        let last = {
            let (la, _) = net.forward_cached(&seq_a);
            let (lb, _) = net.forward_cached(&seq_b);
            crate::loss::softmax_cross_entropy(&la, &ta).loss
                + crate::loss::softmax_cross_entropy(&lb, &tb).loss
        };
        assert!(last < first * 0.2, "loss must fall: {first} -> {last}");
        assert_eq!(net.predict(&seq_a), ta);
        assert_eq!(net.predict(&seq_b), tb);
    }

    #[test]
    fn batch_training_matches_task() {
        let cfg = NetworkConfig {
            input_dim: 4,
            hidden_dims: vec![12],
            num_classes: 2,
        };
        let mut net = GruNetwork::new(&cfg, 3);
        let mut opt = Adam::new(0.01);
        let batch = vec![
            (
                (0..6).map(|_| vec![1.0, 1.0, 0.0, 0.0]).collect::<Vec<_>>(),
                vec![0usize; 6],
            ),
            (
                (0..6).map(|_| vec![0.0, 0.0, 1.0, 1.0]).collect::<Vec<_>>(),
                vec![1usize; 6],
            ),
        ];
        let first = net.train_batch(&batch, &mut opt, None);
        for _ in 0..80 {
            net.train_batch(&batch, &mut opt, Some(GradClip::new(5.0)));
        }
        let last = net.train_batch(&batch, &mut opt, None);
        assert!(
            last < first * 0.2,
            "batch loss must fall: {first} -> {last}"
        );
        assert_eq!(net.predict(&batch[0].0), batch[0].1);
        assert_eq!(net.predict(&batch[1].0), batch[1].1);
        // Empty batch is a no-op.
        assert_eq!(net.train_batch(&[], &mut opt, None), 0.0);
    }

    #[test]
    fn clipping_keeps_training_stable() {
        let cfg = tiny_cfg();
        let mut net = GruNetwork::new(&cfg, 5);
        let mut opt = Sgd::new(0.5); // aggressive LR
        let frames = vec![vec![2.0, -2.0, 2.0, -2.0]; 10];
        let targets = vec![1usize; 10];
        for _ in 0..20 {
            let stats = net.train_step(&frames, &targets, &mut opt, Some(GradClip::new(1.0)));
            assert!(
                stats.loss.is_finite(),
                "loss must stay finite under clipping"
            );
        }
    }

    /// Stacked-network gradient check through both layers and the head.
    #[test]
    fn network_gradient_check() {
        let cfg = NetworkConfig {
            input_dim: 3,
            hidden_dims: vec![4, 4],
            num_classes: 2,
        };
        let net = GruNetwork::new(&cfg, 21);
        let frames = vec![vec![0.5, -0.3, 0.2], vec![0.1, 0.4, -0.2]];
        let targets = vec![0usize, 1];

        let loss_of = |n: &GruNetwork| -> f32 {
            let (logits, _) = n.forward_cached(&frames);
            softmax_cross_entropy(&logits, &targets).loss
        };

        let (logits, cache) = net.forward_cached(&frames);
        let l = softmax_cross_entropy(&logits, &targets);
        let grads = net.backward(&cache, &l.dlogits);

        let eps = 1e-3f32;
        // Spot-check: layer 0 w_z, layer 1 u_n, head w.
        for &(layer, which, r, c) in &[(0usize, 0usize, 0usize, 0usize), (1, 1, 2, 3)] {
            #[allow(clippy::type_complexity)]
            let (g, get): (f32, Box<dyn Fn(&mut GruNetwork) -> &mut f32>) = match which {
                0 => (
                    grads.layers[layer].w_z[(r, c)],
                    Box::new(move |n: &mut GruNetwork| &mut n.layers[layer].w_z[(r, c)]),
                ),
                _ => (
                    grads.layers[layer].u_n[(r, c)],
                    Box::new(move |n: &mut GruNetwork| &mut n.layers[layer].u_n[(r, c)]),
                ),
            };
            let mut plus = net.clone();
            *get(&mut plus) += eps;
            let mut minus = net.clone();
            *get(&mut minus) -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - g).abs() < 2e-2 * (1.0 + fd.abs()),
                "layer{layer} which{which}: {fd} vs {g}"
            );
        }
        // Head weight check.
        let mut plus = net.clone();
        plus.head.w[(0, 0)] += eps;
        let mut minus = net.clone();
        minus.head.w[(0, 0)] -= eps;
        let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
        assert!((fd - grads.head.w[(0, 0)]).abs() < 1e-2);
    }
}
