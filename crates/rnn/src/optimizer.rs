//! First-order optimizers: SGD (with momentum) and Adam.
//!
//! §III-B of the paper argues C-LSTM cannot host ADMM training because ADMM
//! "requires the most advanced optimizer in stochastic gradient descent
//! (e.g., Adam optimizer)"; the ADMM retraining loop in `rtm-pruning` indeed
//! drives [`Adam`]. Optimizers update flat parameter slices keyed by a
//! caller-chosen *slot id*, so any parameter layout (GRU cells, LSTM cells,
//! dense heads) can share one optimizer instance: the model walks its
//! tensors in a fixed order and hands each one the same slot every step.

/// A stateful first-order optimizer over flat parameter slices.
pub trait Optimizer {
    /// Applies one update to `param` given `grad`, using per-`slot` state.
    ///
    /// # Panics
    ///
    /// Implementations panic if `param.len() != grad.len()`, or if a slot is
    /// reused with a different length.
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD (`momentum = 0`).
    pub fn new(lr: f32) -> Sgd {
        Sgd::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum `mu` (velocity `v = mu v + g`,
    /// `p -= lr v`).
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn slot_state(&mut self, slot: usize, len: usize) -> &mut Vec<f32> {
        if self.velocity.len() <= slot {
            self.velocity.resize_with(slot + 1, Vec::new);
        }
        let v = &mut self.velocity[slot];
        if v.is_empty() {
            v.resize(len, 0.0);
        }
        assert_eq!(v.len(), len, "slot {slot} reused with different length");
        v
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        let lr = self.lr;
        let mu = self.momentum;
        let v = self.slot_state(slot, param.len());
        for ((p, &g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vi = mu * *vi + g;
            *p -= lr * *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Per-slot (first moment, second moment, step count).
    state: Vec<(Vec<f32>, Vec<f32>, u64)>,
}

impl Adam {
    /// Creates Adam with the canonical defaults `β₁=0.9, β₂=0.999, ε=1e-8`.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Adam {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.state.len() <= slot {
            self.state
                .resize_with(slot + 1, || (Vec::new(), Vec::new(), 0));
        }
        let (m, v, t) = &mut self.state[slot];
        if m.is_empty() {
            m.resize(param.len(), 0.0);
            v.resize(param.len(), 0.0);
        }
        assert_eq!(
            m.len(),
            param.len(),
            "slot {slot} reused with different length"
        );
        *t += 1;
        let b1t = 1.0 - self.beta1.powi(*t as i32);
        let b2t = 1.0 - self.beta2.powi(*t as i32);
        for i in 0..param.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Global-norm gradient clipping helper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradClip {
    /// Maximum allowed global L2 norm.
    pub max_norm: f32,
}

impl GradClip {
    /// Creates a clipper.
    pub fn new(max_norm: f32) -> GradClip {
        GradClip { max_norm }
    }

    /// Given the squared global norm of all gradients, returns the factor to
    /// scale every gradient by (`1.0` when already within bounds).
    pub fn scale_factor(&self, squared_norm: f32) -> f32 {
        let norm = squared_norm.sqrt();
        if norm > self.max_norm && norm > 0.0 {
            self.max_norm / norm
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = x² with each optimizer; both must converge.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = vec![5.0f32];
        for _ in 0..steps {
            let g = vec![2.0 * x[0]];
            opt.update(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        assert!(run_quadratic(&mut sgd, 100).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.01);
        let mut heavy = Sgd::with_momentum(0.01, 0.9);
        let slow = run_quadratic(&mut plain, 50).abs();
        let fast = run_quadratic(&mut heavy, 50).abs();
        assert!(
            fast < slow,
            "momentum should converge faster: {fast} vs {slow}"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.3);
        assert!(run_quadratic(&mut adam, 200).abs() < 1e-2);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr * sign(g).
        let mut adam = Adam::new(0.1);
        let mut x = vec![0.0f32];
        adam.update(0, &mut x, &[1.0]);
        assert!((x[0] + 0.1).abs() < 1e-3, "got {}", x[0]);
    }

    #[test]
    fn slots_are_independent() {
        let mut adam = Adam::new(0.1);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32, 0.0];
        adam.update(0, &mut a, &[1.0]);
        adam.update(1, &mut b, &[1.0, -1.0]);
        adam.update(0, &mut a, &[1.0]);
        assert!(a[0] < -0.15); // two steps on slot 0
        assert!(b[0] < 0.0 && b[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn slot_reuse_with_different_length_panics() {
        let mut adam = Adam::new(0.1);
        let mut a = vec![0.0f32];
        adam.update(0, &mut a, &[1.0]);
        let mut b = vec![0.0f32, 0.0];
        adam.update(0, &mut b, &[1.0, 1.0]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.5);
        assert_eq!(s.learning_rate(), 0.5);
        s.set_learning_rate(0.25);
        assert_eq!(s.learning_rate(), 0.25);
        let mut a = Adam::new(0.01).with_betas(0.8, 0.99);
        a.set_learning_rate(0.02);
        assert_eq!(a.learning_rate(), 0.02);
    }

    #[test]
    fn grad_clip_factor() {
        let clip = GradClip::new(1.0);
        assert_eq!(clip.scale_factor(0.25), 1.0); // norm 0.5 within bound
        let f = clip.scale_factor(4.0); // norm 2.0 -> factor 0.5
        assert!((f - 0.5).abs() < 1e-6);
        assert_eq!(clip.scale_factor(0.0), 1.0);
    }
}
