//! Bidirectional GRU layer — a standard speech-recognition upgrade and a
//! DESIGN.md §6 extension.
//!
//! Kaldi-style acoustic models typically run bidirectional recurrent layers
//! (the PyTorch-Kaldi baselines the paper trains against include Bi-GRU
//! configurations); a [`BiGruLayer`] runs one forward cell and one backward
//! cell over the sequence and concatenates their hidden states per frame,
//! doubling the feature width seen by the next layer. Both cells expose
//! their weight matrices through the usual prunable interface, so BSP/ADMM
//! prune bidirectional models unchanged.

use crate::gru::{GruCache, GruCell, GruGrads};
use rtm_tensor::Matrix;

/// A bidirectional GRU layer: forward + backward cells, concatenated output.
#[derive(Debug, Clone, PartialEq)]
pub struct BiGruLayer {
    /// The left-to-right cell.
    pub forward: GruCell,
    /// The right-to-left cell.
    pub backward: GruCell,
}

/// Caches for both directions.
#[derive(Debug, Clone, Default)]
pub struct BiGruCache {
    forward: GruCache,
    backward: GruCache,
    t_len: usize,
}

/// Gradients for both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct BiGruGrads {
    /// Forward-cell gradients.
    pub forward: GruGrads,
    /// Backward-cell gradients.
    pub backward: GruGrads,
}

impl BiGruLayer {
    /// Creates a layer whose two cells each have `hidden_dim` units
    /// (output width is `2 * hidden_dim`).
    pub fn new(input_dim: usize, hidden_dim: usize, seed: u64) -> BiGruLayer {
        BiGruLayer {
            forward: GruCell::new(input_dim, hidden_dim, seed),
            backward: GruCell::new(input_dim, hidden_dim, seed.wrapping_add(77)),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.forward.input_dim()
    }

    /// Output dimensionality (`2 × hidden`).
    pub fn output_dim(&self) -> usize {
        self.forward.hidden_dim() + self.backward.hidden_dim()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.forward.num_params() + self.backward.num_params()
    }

    /// Runs both directions; returns per-frame concatenated
    /// `[h_fwd; h_bwd]` outputs and the cache for backprop.
    pub fn forward_cached(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiGruCache) {
        let t_len = xs.len();
        let fwd = self.forward.forward(xs);
        let reversed: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let bwd = self.backward.forward(&reversed);
        let mut out = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut h = fwd.steps[t].h.clone();
            // Backward cache index t corresponds to original frame
            // t_len - 1 - t.
            h.extend_from_slice(&bwd.steps[t_len - 1 - t].h);
            out.push(h);
        }
        (
            out,
            BiGruCache {
                forward: fwd,
                backward: bwd,
                t_len,
            },
        )
    }

    /// Convenience forward without keeping caches.
    pub fn forward_seq(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.forward_cached(xs).0
    }

    /// BPTT through both directions. `dh_out[t]` is the gradient of the
    /// concatenated output at frame `t`; returns both cells' gradients and
    /// the gradient w.r.t. the inputs.
    ///
    /// # Panics
    ///
    /// Panics on length or width mismatches.
    pub fn backward_pass(
        &self,
        cache: &BiGruCache,
        dh_out: &[Vec<f32>],
    ) -> (BiGruGrads, Vec<Vec<f32>>) {
        assert_eq!(dh_out.len(), cache.t_len, "dh_out length mismatch");
        let hf = self.forward.hidden_dim();
        let hb = self.backward.hidden_dim();

        let d_fwd: Vec<Vec<f32>> = dh_out
            .iter()
            .map(|d| {
                assert_eq!(d.len(), hf + hb, "output width mismatch");
                d[..hf].to_vec()
            })
            .collect();
        // Backward direction consumed the reversed sequence, so its output
        // gradient at cache step t comes from original frame t_len-1-t.
        let d_bwd: Vec<Vec<f32>> = (0..cache.t_len)
            .map(|t| dh_out[cache.t_len - 1 - t][hf..].to_vec())
            .collect();

        let (g_fwd, dx_fwd) = self.forward.backward(&cache.forward, &d_fwd);
        let (g_bwd, dx_bwd_rev) = self.backward.backward(&cache.backward, &d_bwd);

        // Un-reverse the backward direction's input gradients and sum.
        let mut dxs = dx_fwd;
        for (t, dx) in dxs.iter_mut().enumerate() {
            let rev = &dx_bwd_rev[cache.t_len - 1 - t];
            for (a, &b) in dx.iter_mut().zip(rev) {
                *a += b;
            }
        }
        (
            BiGruGrads {
                forward: g_fwd,
                backward: g_bwd,
            },
            dxs,
        )
    }

    /// Named prunable weight matrices of both cells
    /// (`fwd.w_z`, …, `bwd.u_n`).
    pub fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        for (name, m) in self.forward.prunable_mut() {
            out.push((format!("fwd.{name}"), m));
        }
        for (name, m) in self.backward.prunable_mut() {
            out.push((format!("bwd.{name}"), m));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Vec<f32>> {
        (0..6)
            .map(|t| (0..3).map(|i| ((t * 3 + i) as f32 * 0.4).sin()).collect())
            .collect()
    }

    #[test]
    fn output_width_doubles() {
        let layer = BiGruLayer::new(3, 5, 1);
        let out = layer.forward_seq(&frames());
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|h| h.len() == 10));
        assert_eq!(layer.output_dim(), 10);
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.num_params(), 2 * GruCell::new(3, 5, 0).num_params());
    }

    #[test]
    fn backward_direction_sees_the_future() {
        // The first frame's backward half must depend on the *last* input.
        let layer = BiGruLayer::new(1, 4, 3);
        let a = layer.forward_seq(&[vec![0.1], vec![0.2], vec![1.0]]);
        let b = layer.forward_seq(&[vec![0.1], vec![0.2], vec![-1.0]]);
        let fwd_diff: f32 = a[0][..4]
            .iter()
            .zip(&b[0][..4])
            .map(|(x, y)| (x - y).abs())
            .sum();
        let bwd_diff: f32 = a[0][4..]
            .iter()
            .zip(&b[0][4..])
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(fwd_diff < 1e-7, "forward half can't see the future");
        assert!(bwd_diff > 1e-4, "backward half must see the future");
    }

    #[test]
    fn gradient_check_both_directions() {
        let layer = BiGruLayer::new(2, 3, 9);
        let xs = vec![vec![0.3, -0.2], vec![0.1, 0.5], vec![-0.4, 0.2]];
        let loss = |l: &BiGruLayer| -> f64 {
            l.forward_seq(&xs)
                .iter()
                .map(|h| h.iter().map(|&v| v as f64).sum::<f64>())
                .sum()
        };
        let (_, cache) = layer.forward_cached(&xs);
        let dh = vec![vec![1.0f32; 6]; 3];
        let (grads, dxs) = layer.backward_pass(&cache, &dh);

        let eps = 1e-3f32;
        // Spot-check one coordinate per direction.
        let mut plus = layer.clone();
        plus.forward.w_n[(1, 0)] += eps;
        let mut minus = layer.clone();
        minus.forward.w_n[(1, 0)] -= eps;
        let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
        assert!(
            (fd - grads.forward.w_n[(1, 0)]).abs() < 2e-2 * (1.0 + fd.abs()),
            "fwd: {fd} vs {}",
            grads.forward.w_n[(1, 0)]
        );

        let mut plus = layer.clone();
        plus.backward.u_z[(2, 1)] += eps;
        let mut minus = layer.clone();
        minus.backward.u_z[(2, 1)] -= eps;
        let fd = ((loss(&plus) - loss(&minus)) / (2.0 * eps as f64)) as f32;
        assert!(
            (fd - grads.backward.u_z[(2, 1)]).abs() < 2e-2 * (1.0 + fd.abs()),
            "bwd: {fd} vs {}",
            grads.backward.u_z[(2, 1)]
        );

        // Input gradient check at the middle frame.
        let loss_x = |xs: &[Vec<f32>]| -> f64 {
            layer
                .forward_seq(xs)
                .iter()
                .map(|h| h.iter().map(|&v| v as f64).sum::<f64>())
                .sum()
        };
        let mut xp = xs.clone();
        xp[1][0] += eps;
        let mut xm = xs.clone();
        xm[1][0] -= eps;
        let fd = ((loss_x(&xp) - loss_x(&xm)) / (2.0 * eps as f64)) as f32;
        assert!(
            (fd - dxs[1][0]).abs() < 2e-2 * (1.0 + fd.abs()),
            "dx: {fd} vs {}",
            dxs[1][0]
        );
    }

    #[test]
    fn prunable_covers_both_cells() {
        let mut layer = BiGruLayer::new(2, 3, 0);
        let names: Vec<String> = layer.prunable_mut().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"fwd.w_z".to_string()));
        assert!(names.contains(&"bwd.u_n".to_string()));
    }

    #[test]
    fn empty_sequence() {
        let layer = BiGruLayer::new(2, 3, 0);
        let (out, cache) = layer.forward_cached(&[]);
        assert!(out.is_empty());
        let (_, dxs) = layer.backward_pass(&cache, &[]);
        assert!(dxs.is_empty());
    }
}
