//! Multi-layer LSTM network with a dense classifier head — the extension
//! counterpart of [`crate::model::GruNetwork`].
//!
//! The paper focuses on GRU, but every baseline it compares against (ESE,
//! C-LSTM, BBS, Wang) is an LSTM accelerator, and DESIGN.md §6 lists
//! LSTM end-to-end support as an extension. The pruning machinery is
//! architecture-agnostic (it consumes named weight matrices), so this model
//! plugs into the same ADMM/BSP engines.

use crate::dense::{DenseGrads, DenseLayer};
use crate::loss::softmax_cross_entropy;
use crate::lstm::{LstmCache, LstmCell, LstmGrads};
use crate::optimizer::{GradClip, Optimizer};
use rtm_tensor::Matrix;

/// A stack of LSTM layers plus a dense softmax head.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmNetwork {
    /// Recurrent layers, input-side first.
    pub layers: Vec<LstmCell>,
    /// Classifier head.
    pub head: DenseLayer,
}

/// Forward caches for [`LstmNetwork::backward`].
#[derive(Debug, Clone, Default)]
pub struct LstmNetworkCache {
    layer_caches: Vec<LstmCache>,
    head_inputs: Vec<Vec<f32>>,
}

/// Gradients mirroring [`LstmNetwork`].
#[derive(Debug, Clone)]
pub struct LstmNetworkGrads {
    /// Per-layer gradients.
    pub layers: Vec<LstmGrads>,
    /// Head gradients.
    pub head: DenseGrads,
}

impl LstmNetwork {
    /// Builds a network using the same configuration type as the GRU model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hidden_dims` is empty.
    pub fn new(cfg: &crate::model::NetworkConfig, seed: u64) -> LstmNetwork {
        assert!(!cfg.hidden_dims.is_empty(), "need at least one LSTM layer");
        let mut layers = Vec::with_capacity(cfg.hidden_dims.len());
        let mut in_dim = cfg.input_dim;
        for (i, &h) in cfg.hidden_dims.iter().enumerate() {
            layers.push(LstmCell::new(in_dim, h, seed.wrapping_add(i as u64)));
            in_dim = h;
        }
        LstmNetwork {
            layers,
            head: DenseLayer::new(in_dim, cfg.num_classes, seed.wrapping_add(1000)),
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(LstmCell::num_params).sum::<usize>() + self.head.num_params()
    }

    /// Forward pass producing per-frame logits.
    pub fn forward(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.forward_cached(frames).0
    }

    /// Forward pass keeping the caches for BPTT.
    pub fn forward_cached(&self, frames: &[Vec<f32>]) -> (Vec<Vec<f32>>, LstmNetworkCache) {
        let mut cache = LstmNetworkCache::default();
        let mut current: Vec<Vec<f32>> = frames.to_vec();
        for layer in &self.layers {
            let c = layer.forward(&current);
            current = c.steps.iter().map(|s| s.h.clone()).collect();
            cache.layer_caches.push(c);
        }
        cache.head_inputs = current.clone();
        let logits = current.iter().map(|h| self.head.forward(h)).collect();
        (logits, cache)
    }

    /// Per-frame argmax predictions.
    pub fn predict(&self, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward(frames)
            .iter()
            .map(|l| rtm_tensor::Vector::argmax(l))
            .collect()
    }

    /// Backward pass from per-frame logit gradients.
    pub fn backward(&self, cache: &LstmNetworkCache, dlogits: &[Vec<f32>]) -> LstmNetworkGrads {
        let mut head_grads = DenseGrads::zeros(self.head.input_dim(), self.head.output_dim());
        let mut dh: Vec<Vec<f32>> = dlogits
            .iter()
            .zip(&cache.head_inputs)
            .map(|(dl, h)| self.head.backward(h, dl, &mut head_grads))
            .collect();
        let mut layer_grads: Vec<LstmGrads> = Vec::with_capacity(self.layers.len());
        for (layer, lcache) in self.layers.iter().zip(&cache.layer_caches).rev() {
            let (grads, dxs) = layer.backward(lcache, &dh);
            layer_grads.push(grads);
            dh = dxs;
        }
        layer_grads.reverse();
        LstmNetworkGrads {
            layers: layer_grads,
            head: head_grads,
        }
    }

    /// One training step (forward, loss, BPTT, optimizer update with
    /// optional global-norm clipping); returns the loss.
    ///
    /// # Panics
    ///
    /// Panics on frame/target mismatches.
    pub fn train_step(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32 {
        let (logits, cache) = self.forward_cached(frames);
        let loss = softmax_cross_entropy(&logits, targets);
        let mut grads = self.backward(&cache, &loss.dlogits);

        if let Some(clip) = clip {
            let m = |m: &Matrix| m.as_slice().iter().map(|v| v * v).sum::<f32>();
            let v = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>();
            let mut sq = m(&grads.head.w) + v(&grads.head.b);
            for g in &grads.layers {
                sq += m(&g.w_i) + m(&g.u_i) + v(&g.b_i);
                sq += m(&g.w_f) + m(&g.u_f) + v(&g.b_f);
                sq += m(&g.w_g) + m(&g.u_g) + v(&g.b_g);
                sq += m(&g.w_o) + m(&g.u_o) + v(&g.b_o);
            }
            let f = clip.scale_factor(sq);
            if f < 1.0 {
                grads.head.w.scale_inplace(f);
                rtm_tensor::Vector::scale(&mut grads.head.b, f);
                for g in &mut grads.layers {
                    for mat in [
                        &mut g.w_i, &mut g.u_i, &mut g.w_f, &mut g.u_f, &mut g.w_g, &mut g.u_g,
                        &mut g.w_o, &mut g.u_o,
                    ] {
                        mat.scale_inplace(f);
                    }
                    for b in [&mut g.b_i, &mut g.b_f, &mut g.b_g, &mut g.b_o] {
                        rtm_tensor::Vector::scale(b, f);
                    }
                }
            }
        }

        self.apply_with_optimizer(&grads, opt);
        loss.loss
    }

    /// Applies gradients through an optimizer with stable slot ids.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the network shape.
    pub fn apply_with_optimizer(&mut self, grads: &LstmNetworkGrads, opt: &mut dyn Optimizer) {
        assert_eq!(
            grads.layers.len(),
            self.layers.len(),
            "gradient layer count"
        );
        let mut slot = 0usize;
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            opt.update(slot, layer.w_i.as_mut_slice(), g.w_i.as_slice());
            opt.update(slot + 1, layer.u_i.as_mut_slice(), g.u_i.as_slice());
            opt.update(slot + 2, &mut layer.b_i, &g.b_i);
            opt.update(slot + 3, layer.w_f.as_mut_slice(), g.w_f.as_slice());
            opt.update(slot + 4, layer.u_f.as_mut_slice(), g.u_f.as_slice());
            opt.update(slot + 5, &mut layer.b_f, &g.b_f);
            opt.update(slot + 6, layer.w_g.as_mut_slice(), g.w_g.as_slice());
            opt.update(slot + 7, layer.u_g.as_mut_slice(), g.u_g.as_slice());
            opt.update(slot + 8, &mut layer.b_g, &g.b_g);
            opt.update(slot + 9, layer.w_o.as_mut_slice(), g.w_o.as_slice());
            opt.update(slot + 10, layer.u_o.as_mut_slice(), g.u_o.as_slice());
            opt.update(slot + 11, &mut layer.b_o, &g.b_o);
            slot += 12;
        }
        opt.update(slot, self.head.w.as_mut_slice(), grads.head.w.as_slice());
        opt.update(slot + 1, &mut self.head.b, &grads.head.b);
    }

    /// Named prunable weight matrices (`layer{i}.{gate}`), mirroring
    /// [`crate::model::GruNetwork::prunable`].
    pub fn prunable(&self) -> Vec<(String, &Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            out.push((format!("layer{i}.w_i"), &layer.w_i));
            out.push((format!("layer{i}.u_i"), &layer.u_i));
            out.push((format!("layer{i}.w_f"), &layer.w_f));
            out.push((format!("layer{i}.u_f"), &layer.u_f));
            out.push((format!("layer{i}.w_g"), &layer.w_g));
            out.push((format!("layer{i}.u_g"), &layer.u_g));
            out.push((format!("layer{i}.w_o"), &layer.w_o));
            out.push((format!("layer{i}.u_o"), &layer.u_o));
        }
        out
    }

    /// Mutable variant of [`LstmNetwork::prunable`].
    pub fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for (name, m) in layer.prunable_mut() {
                out.push((format!("layer{i}.{name}"), m));
            }
        }
        out
    }

    /// Number of nonzero prunable weights.
    pub fn nonzero_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.count_nonzero()).sum()
    }

    /// Total prunable weight count.
    pub fn total_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkConfig;
    use crate::optimizer::Adam;

    fn cfg() -> NetworkConfig {
        NetworkConfig {
            input_dim: 4,
            hidden_dims: vec![10],
            num_classes: 2,
        }
    }

    #[test]
    fn forward_shapes() {
        let net = LstmNetwork::new(&cfg(), 1);
        let frames = vec![vec![0.1; 4]; 5];
        let logits = net.forward(&frames);
        assert_eq!(logits.len(), 5);
        assert!(logits.iter().all(|l| l.len() == 2));
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = LstmNetwork::new(&cfg(), 3);
        let mut opt = Adam::new(0.01);
        let a: Vec<Vec<f32>> = (0..6).map(|_| vec![1.0, 1.0, 0.0, 0.0]).collect();
        let b: Vec<Vec<f32>> = (0..6).map(|_| vec![0.0, 0.0, 1.0, 1.0]).collect();
        let first = net.train_step(&a, &[0; 6], &mut opt, None)
            + net.train_step(&b, &[1; 6], &mut opt, None);
        for _ in 0..80 {
            net.train_step(&a, &[0; 6], &mut opt, None);
            net.train_step(&b, &[1; 6], &mut opt, None);
        }
        let (la, _) = net.forward_cached(&a);
        let (lb, _) = net.forward_cached(&b);
        let last = crate::loss::softmax_cross_entropy(&la, &[0; 6]).loss
            + crate::loss::softmax_cross_entropy(&lb, &[1; 6]).loss;
        assert!(last < first * 0.25, "{first} -> {last}");
        assert_eq!(net.predict(&a), vec![0; 6]);
        assert_eq!(net.predict(&b), vec![1; 6]);
    }

    #[test]
    fn clipped_training_stays_finite() {
        let mut net = LstmNetwork::new(&cfg(), 5);
        let mut opt = crate::optimizer::Sgd::new(0.5);
        let frames = vec![vec![3.0, -3.0, 3.0, -3.0]; 8];
        for _ in 0..15 {
            let loss = net.train_step(&frames, &[1; 8], &mut opt, Some(GradClip::new(1.0)));
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn prunable_names() {
        let mut net = LstmNetwork::new(
            &NetworkConfig {
                input_dim: 4,
                hidden_dims: vec![6, 6],
                num_classes: 2,
            },
            1,
        );
        let names: Vec<String> = net.prunable().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 16); // 2 layers x 8 matrices
        assert_eq!(names[0], "layer0.w_i");
        assert_eq!(names[15], "layer1.u_o");
        let mut_names: Vec<String> = net.prunable_mut().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, mut_names);
        assert_eq!(net.total_prunable_params(), net.nonzero_prunable_params());
    }

    #[test]
    fn num_params_counts_head() {
        let net = LstmNetwork::new(&cfg(), 1);
        let want = 4 * (10 * 4 + 10 * 10 + 10) + (2 * 10 + 2);
        assert_eq!(net.num_params(), want);
    }
}
