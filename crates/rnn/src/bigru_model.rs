//! Multi-layer bidirectional GRU network with a dense classifier head.
//!
//! Stacks [`BiGruLayer`]s (each doubling its hidden width at the output)
//! under the same training/pruning interfaces as the unidirectional
//! [`crate::model::GruNetwork`]. Bidirectional acoustic models are the
//! standard accuracy upgrade in Kaldi-style recipes; here they demonstrate
//! that every downstream stage — ADMM/BSP pruning, BSPC compilation, the
//! simulator — is agnostic to recurrence direction.

use crate::bigru::{BiGruCache, BiGruGrads, BiGruLayer};
use crate::dense::{DenseGrads, DenseLayer};
use crate::loss::softmax_cross_entropy;
use crate::model::NetworkConfig;
use crate::optimizer::{GradClip, Optimizer};
use rtm_tensor::Matrix;

/// A stack of bidirectional GRU layers plus a dense softmax head.
#[derive(Debug, Clone, PartialEq)]
pub struct BiGruNetwork {
    /// Bidirectional layers, input-side first.
    pub layers: Vec<BiGruLayer>,
    /// Classifier head (input width `2 × last hidden`).
    pub head: DenseLayer,
}

/// Forward caches for [`BiGruNetwork::backward`].
#[derive(Debug, Clone, Default)]
pub struct BiGruNetworkCache {
    layer_caches: Vec<BiGruCache>,
    head_inputs: Vec<Vec<f32>>,
}

/// Gradients mirroring [`BiGruNetwork`].
#[derive(Debug, Clone)]
pub struct BiGruNetworkGrads {
    /// Per-layer gradients (both directions).
    pub layers: Vec<BiGruGrads>,
    /// Head gradients.
    pub head: DenseGrads,
}

impl BiGruNetwork {
    /// Builds the network: `hidden_dims[i]` is the per-direction width of
    /// layer `i` (its output is twice that).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hidden_dims` is empty.
    pub fn new(cfg: &NetworkConfig, seed: u64) -> BiGruNetwork {
        assert!(!cfg.hidden_dims.is_empty(), "need at least one layer");
        let mut layers = Vec::with_capacity(cfg.hidden_dims.len());
        let mut in_dim = cfg.input_dim;
        for (i, &h) in cfg.hidden_dims.iter().enumerate() {
            layers.push(BiGruLayer::new(in_dim, h, seed.wrapping_add(i as u64)));
            in_dim = 2 * h;
        }
        BiGruNetwork {
            layers,
            head: DenseLayer::new(in_dim, cfg.num_classes, seed.wrapping_add(1000)),
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(BiGruLayer::num_params)
            .sum::<usize>()
            + self.head.num_params()
    }

    /// Forward pass producing per-frame logits.
    pub fn forward(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.forward_cached(frames).0
    }

    /// Forward pass keeping caches for BPTT.
    pub fn forward_cached(&self, frames: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiGruNetworkCache) {
        let mut cache = BiGruNetworkCache::default();
        let mut current: Vec<Vec<f32>> = frames.to_vec();
        for layer in &self.layers {
            let (out, c) = layer.forward_cached(&current);
            current = out;
            cache.layer_caches.push(c);
        }
        cache.head_inputs = current.clone();
        let logits = current.iter().map(|h| self.head.forward(h)).collect();
        (logits, cache)
    }

    /// Per-frame argmax predictions.
    pub fn predict(&self, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward(frames)
            .iter()
            .map(|l| rtm_tensor::Vector::argmax(l))
            .collect()
    }

    /// Backward pass from per-frame logit gradients.
    pub fn backward(&self, cache: &BiGruNetworkCache, dlogits: &[Vec<f32>]) -> BiGruNetworkGrads {
        let mut head_grads = DenseGrads::zeros(self.head.input_dim(), self.head.output_dim());
        let mut dh: Vec<Vec<f32>> = dlogits
            .iter()
            .zip(&cache.head_inputs)
            .map(|(dl, h)| self.head.backward(h, dl, &mut head_grads))
            .collect();
        let mut layer_grads = Vec::with_capacity(self.layers.len());
        for (layer, lcache) in self.layers.iter().zip(&cache.layer_caches).rev() {
            let (grads, dxs) = layer.backward_pass(lcache, &dh);
            layer_grads.push(grads);
            dh = dxs;
        }
        layer_grads.reverse();
        BiGruNetworkGrads {
            layers: layer_grads,
            head: head_grads,
        }
    }

    /// One training step; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics on frame/target mismatches.
    pub fn train_step(
        &mut self,
        frames: &[Vec<f32>],
        targets: &[usize],
        opt: &mut dyn Optimizer,
        clip: Option<GradClip>,
    ) -> f32 {
        let (logits, cache) = self.forward_cached(frames);
        let loss = softmax_cross_entropy(&logits, targets);
        let mut grads = self.backward(&cache, &loss.dlogits);

        if let Some(clip) = clip {
            let mut sq = grads.head.w.as_slice().iter().map(|v| v * v).sum::<f32>()
                + grads.head.b.iter().map(|v| v * v).sum::<f32>();
            for g in &grads.layers {
                sq += g.forward.squared_norm() + g.backward.squared_norm();
            }
            let f = clip.scale_factor(sq);
            if f < 1.0 {
                grads.head.w.scale_inplace(f);
                rtm_tensor::Vector::scale(&mut grads.head.b, f);
                for g in &mut grads.layers {
                    g.forward.scale(f);
                    g.backward.scale(f);
                }
            }
        }

        self.apply_with_optimizer(&grads, opt);
        loss.loss
    }

    /// Applies gradients through an optimizer with stable slot ids.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the network shape.
    pub fn apply_with_optimizer(&mut self, grads: &BiGruNetworkGrads, opt: &mut dyn Optimizer) {
        assert_eq!(
            grads.layers.len(),
            self.layers.len(),
            "gradient layer count"
        );
        let mut slot = 0usize;
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            for (cell, cg) in [
                (&mut layer.forward, &g.forward),
                (&mut layer.backward, &g.backward),
            ] {
                opt.update(slot, cell.w_z.as_mut_slice(), cg.w_z.as_slice());
                opt.update(slot + 1, cell.u_z.as_mut_slice(), cg.u_z.as_slice());
                opt.update(slot + 2, &mut cell.b_z, &cg.b_z);
                opt.update(slot + 3, cell.w_r.as_mut_slice(), cg.w_r.as_slice());
                opt.update(slot + 4, cell.u_r.as_mut_slice(), cg.u_r.as_slice());
                opt.update(slot + 5, &mut cell.b_r, &cg.b_r);
                opt.update(slot + 6, cell.w_n.as_mut_slice(), cg.w_n.as_slice());
                opt.update(slot + 7, cell.u_n.as_mut_slice(), cg.u_n.as_slice());
                opt.update(slot + 8, &mut cell.b_n, &cg.b_n);
                slot += 9;
            }
        }
        opt.update(slot, self.head.w.as_mut_slice(), grads.head.w.as_slice());
        opt.update(slot + 1, &mut self.head.b, &grads.head.b);
    }

    /// Named prunable weight matrices
    /// (`layer{i}.fwd.w_z` … `layer{i}.bwd.u_n`).
    pub fn prunable(&self) -> Vec<(String, &Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            for (dir, cell) in [("fwd", &layer.forward), ("bwd", &layer.backward)] {
                for (name, m) in cell.prunable() {
                    out.push((format!("layer{i}.{dir}.{name}"), m));
                }
            }
        }
        out
    }

    /// Mutable variant of [`BiGruNetwork::prunable`].
    pub fn prunable_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (fwd, bwd) = (&mut layer.forward, &mut layer.backward);
            for (name, m) in fwd.prunable_mut() {
                out.push((format!("layer{i}.fwd.{name}"), m));
            }
            for (name, m) in bwd.prunable_mut() {
                out.push((format!("layer{i}.bwd.{name}"), m));
            }
        }
        out
    }

    /// Number of nonzero prunable weights.
    pub fn nonzero_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.count_nonzero()).sum()
    }

    /// Total prunable weight count.
    pub fn total_prunable_params(&self) -> usize {
        self.prunable().iter().map(|(_, m)| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;

    fn cfg() -> NetworkConfig {
        NetworkConfig {
            input_dim: 4,
            hidden_dims: vec![6, 6],
            num_classes: 3,
        }
    }

    #[test]
    fn shapes_and_counts() {
        let net = BiGruNetwork::new(&cfg(), 1);
        let frames = vec![vec![0.1; 4]; 5];
        let logits = net.forward(&frames);
        assert_eq!(logits.len(), 5);
        assert!(logits.iter().all(|l| l.len() == 3));
        // Layer 1 input is 12-wide (2 x 6).
        assert_eq!(net.layers[1].input_dim(), 12);
        assert_eq!(net.head.input_dim(), 12);
        // 24 prunable matrices: 2 layers x 2 directions x 6 gates.
        assert_eq!(net.prunable().len(), 24);
        assert_eq!(net.total_prunable_params(), net.nonzero_prunable_params());
    }

    #[test]
    fn training_learns_temporal_direction() {
        // Classify whether the active input comes before or after the
        // midpoint — only solvable with context from both directions at
        // every frame.
        let mut net = BiGruNetwork::new(
            &NetworkConfig {
                input_dim: 2,
                hidden_dims: vec![8],
                num_classes: 2,
            },
            5,
        );
        let early: Vec<Vec<f32>> = (0..8)
            .map(|t| vec![if t < 2 { 1.0 } else { 0.0 }, 0.0])
            .collect();
        let late: Vec<Vec<f32>> = (0..8)
            .map(|t| vec![if t >= 6 { 1.0 } else { 0.0 }, 0.0])
            .collect();
        let mut opt = Adam::new(0.01);
        for _ in 0..120 {
            net.train_step(&early, &[0; 8], &mut opt, None);
            net.train_step(&late, &[1; 8], &mut opt, None);
        }
        // Every frame — including the earliest ones — must carry the label,
        // which for `late` requires information flowing backward in time.
        assert_eq!(net.predict(&early), vec![0; 8]);
        assert_eq!(net.predict(&late), vec![1; 8]);
    }

    #[test]
    fn clipped_training_is_finite() {
        let mut net = BiGruNetwork::new(&cfg(), 2);
        let mut opt = crate::optimizer::Sgd::new(0.5);
        let frames = vec![vec![2.0, -2.0, 2.0, -2.0]; 6];
        for _ in 0..10 {
            let loss = net.train_step(&frames, &[1; 6], &mut opt, Some(GradClip::new(1.0)));
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn prunable_names_are_hierarchical() {
        let mut net = BiGruNetwork::new(&cfg(), 3);
        let names: Vec<String> = net.prunable_mut().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"layer0.fwd.w_z".to_string()));
        assert!(names.contains(&"layer1.bwd.u_n".to_string()));
        let ro: Vec<String> = net.prunable().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ro);
    }
}
