//! Frame-level softmax cross-entropy.
//!
//! The speech task is frame classification: each input frame carries one
//! phone label, and the loss is the mean cross-entropy across frames — the
//! standard objective the paper's PyTorch-Kaldi recipe reduces to for
//! frame-aligned training.

use rtm_tensor::activations::{cross_entropy, softmax_slice};

/// Result of a softmax cross-entropy evaluation over a sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceLoss {
    /// Mean cross-entropy over frames.
    pub loss: f32,
    /// Gradient w.r.t. the logits per frame: `(softmax - onehot) / T`.
    pub dlogits: Vec<Vec<f32>>,
    /// Number of frames whose argmax equals the label.
    pub correct: usize,
}

/// Computes softmax cross-entropy over a sequence of logits with per-frame
/// integer targets.
///
/// # Panics
///
/// Panics if `logits.len() != targets.len()` or any target is out of range.
pub fn softmax_cross_entropy(logits: &[Vec<f32>], targets: &[usize]) -> SequenceLoss {
    assert_eq!(logits.len(), targets.len(), "frame count mismatch");
    let t_len = logits.len();
    let mut loss = 0.0f32;
    let mut dlogits = Vec::with_capacity(t_len);
    let mut correct = 0usize;
    let scale = 1.0 / t_len.max(1) as f32;

    for (frame, &target) in logits.iter().zip(targets) {
        assert!(target < frame.len(), "target {target} out of range");
        let mut probs = frame.clone();
        softmax_slice(&mut probs);
        loss += cross_entropy(&probs, target);
        if rtm_tensor::Vector::argmax(frame) == target {
            correct += 1;
        }
        let mut d = probs;
        d[target] -= 1.0;
        for v in &mut d {
            *v *= scale;
        }
        dlogits.push(d);
    }

    SequenceLoss {
        loss: loss * scale,
        dlogits,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let logits = vec![vec![10.0, -10.0], vec![-10.0, 10.0]];
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 1e-4);
        assert_eq!(out.correct, 2);
    }

    #[test]
    fn uniform_logits_log_k_loss() {
        let k = 4;
        let logits = vec![vec![0.0; k]];
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!((out.loss - (k as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_frame() {
        let logits = vec![vec![1.0, 2.0, 3.0], vec![0.5, 0.1, -0.3]];
        let out = softmax_cross_entropy(&logits, &[0, 2]);
        for d in &out.dlogits {
            let s: f32 = d.iter().sum();
            assert!(s.abs() < 1e-6, "softmax grad rows sum to zero: {s}");
        }
        // Target coordinate is negative (prob - 1 < 0), others positive.
        assert!(out.dlogits[0][0] < 0.0);
        assert!(out.dlogits[0][1] > 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = vec![vec![0.2f32, -0.4, 0.9]];
        let targets = [1usize];
        let out = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp[0][i] += eps;
            let mut lm = logits.clone();
            lm[0][i] -= eps;
            let fp = softmax_cross_entropy(&lp, &targets).loss;
            let fm = softmax_cross_entropy(&lm, &targets).loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - out.dlogits[0][i]).abs() < 1e-3,
                "dlogit[{i}]: {fd} vs {}",
                out.dlogits[0][i]
            );
        }
    }

    #[test]
    fn accuracy_counting() {
        let logits = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let out = softmax_cross_entropy(&logits, &[0, 1, 1]);
        assert_eq!(out.correct, 2);
    }

    #[test]
    #[should_panic(expected = "frame count mismatch")]
    fn mismatched_lengths_panic() {
        softmax_cross_entropy(&[vec![0.0]], &[0, 1]);
    }
}
