//! Compressed Sparse Column storage.
//!
//! §II-B-a of the paper notes early non-structured pruning work (Han et al.)
//! stored pruned models in CSC. It is included here both as a baseline
//! storage format and because the transposed products in backpropagation map
//! naturally onto it.

use rtm_tensor::{Matrix, ShapeError};

/// A sparse matrix in compressed-sparse-column format.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<u32>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix from a dense one, keeping entries that are not
    /// exactly zero.
    pub fn from_dense(dense: &Matrix) -> CscMatrix {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0u32);
        for c in 0..cols {
            for r in 0..rows {
                let v = dense[(r, c)];
                if v != 0.0 {
                    row_idx.push(r as u32);
                    values.push(v);
                }
            }
            col_ptr.push(values.len() as u32);
        }
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column-pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[u32] {
        &self.col_ptr
    }

    /// Row index of every nonzero, column-major.
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// Value of every nonzero, column-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Sparse matrix-vector product `y = A x` (scatter formulation).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError {
                op: "csc_spmv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (c, &xc) in x.iter().enumerate().take(self.cols) {
            if xc == 0.0 {
                continue;
            }
            let start = self.col_ptr[c] as usize;
            let end = self.col_ptr[c + 1] as usize;
            for i in start..end {
                y[self.row_idx[i] as usize] += self.values[i] * xc;
            }
        }
        Ok(y)
    }

    /// Allocation-free SpMV into a caller-provided buffer (scatter
    /// formulation; `y` is zeroed first).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csc_spmv_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        y.fill(0.0);
        for (c, &xc) in x.iter().enumerate().take(self.cols) {
            if xc == 0.0 {
                continue;
            }
            let start = self.col_ptr[c] as usize;
            let end = self.col_ptr[c + 1] as usize;
            for i in start..end {
                y[self.row_idx[i] as usize] += self.values[i] * xc;
            }
        }
        Ok(())
    }

    /// Transposed product `y = Aᵀ x` (a gather per column — cheap in CSC).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.rows()`.
    pub fn spmv_transposed(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if x.len() != self.rows {
            return Err(ShapeError {
                op: "csc_spmv_transposed",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.cols];
        for (c, yc) in y.iter_mut().enumerate() {
            let start = self.col_ptr[c] as usize;
            let end = self.col_ptr[c + 1] as usize;
            let mut acc = 0.0f32;
            for i in start..end {
                acc += self.values[i] * x[self.row_idx[i] as usize];
            }
            *yc = acc;
        }
        Ok(y)
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            let start = self.col_ptr[c] as usize;
            let end = self.col_ptr[c + 1] as usize;
            for i in start..end {
                m[(self.row_idx[i] as usize, c)] = self.values[i];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::gemm;

    fn example() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 5.0, 0.0], &[0.0, 3.0, 4.0]]).unwrap()
    }

    #[test]
    fn roundtrip() {
        let d = example();
        let csc = CscMatrix::from_dense(&d);
        assert_eq!(csc.nnz(), 5);
        assert_eq!(csc.to_dense(), d);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = example();
        let csc = CscMatrix::from_dense(&d);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(csc.spmv(&x).unwrap(), gemm::gemv(&d, &x).unwrap());
    }

    #[test]
    fn transposed_spmv_matches_dense() {
        let d = example();
        let csc = CscMatrix::from_dense(&d);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(
            csc.spmv_transposed(&x).unwrap(),
            gemm::gemv_transposed(&d, &x).unwrap()
        );
    }

    #[test]
    fn shape_errors() {
        let csc = CscMatrix::from_dense(&example());
        assert!(csc.spmv(&[1.0]).is_err());
        assert!(csc.spmv_transposed(&[1.0]).is_err());
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(CscMatrix::from_dense(&Matrix::zeros(0, 0)).nnz(), 0);
        let z = CscMatrix::from_dense(&Matrix::zeros(2, 3));
        assert_eq!(z.spmv(&[1.0; 3]).unwrap(), vec![0.0; 2]);
    }

    /// Randomized (seed-driven) CSC-vs-CSR SpMV agreement.
    #[test]
    fn prop_csc_equals_csr() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..10);
            let cols = rng.gen_range(1usize..10);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.4 {
                    0.0
                } else {
                    v
                }
            });
            let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.3).cos()).collect();
            let via_csc = CscMatrix::from_dense(&dense).spmv(&x).unwrap();
            let via_csr = crate::CsrMatrix::from_dense(&dense).spmv(&x).unwrap();
            for (a, b) in via_csc.iter().zip(&via_csr) {
                assert!((a - b).abs() < 1e-4, "seed {seed}");
            }
        }
    }
}
