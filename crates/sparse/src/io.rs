//! Binary (de)serialization of the BSPC format — the on-flash "compact data
//! format for pruned model storage" of §IV-B-c, made concrete.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   "BSPC"            4 B
//! version u16               (currently 1)
//! prec    u8                (0 = f32 values, 1 = f16 bit patterns, 2 = int8)
//! rows, cols, stripes, blocks            4 × u32
//! kept_row_count u32, kept_rows          n × u32
//! per stripe-block: col_count u32, cols  n × u32
//! row_offsets                            kept_row_count × u32
//! value_count u32, values                (see below)
//! reorder_flag u8 (0/1), reorder         rows × u32 when 1
//! ```
//!
//! The value payload depends on the precision tag: f32 stores 4 B per value,
//! f16 stores the 2 B bit pattern, and int8 stores the per-(stripe, block)
//! f32 scales (`stripes × blocks × 4 B`, header order) followed by 1 B codes.
//!
//! Values serialized at [`Precision::F16`] round through binary16, exactly
//! the loss the mobile GPU path accepts; deserialization always restores
//! `f32` values. Int8 decoding reconstructs `f32` values as `code · scale`
//! and installs the stored codes as the authoritative int8 sidecar — the
//! codes, not a float re-derivation, round-trip bit-exactly.

use crate::bbs::BbsMatrix;
use crate::bspc::{BspcError, BspcMatrix};
use crate::csb::CsbMatrix;
use crate::csr::CsrMatrix;
use crate::footprint::Precision;
use rtm_tensor::wire::{Buf, BufMut};
use rtm_tensor::{ShapeError, F16};
use std::error::Error;
use std::fmt;

/// Magic bytes opening every serialized BSPC matrix.
pub const MAGIC: &[u8; 4] = b"BSPC";

/// Magic bytes opening every serialized BBS matrix.
pub const MAGIC_BBS: &[u8; 4] = b"BBSM";

/// Magic bytes opening every serialized CSB matrix.
pub const MAGIC_CSB: &[u8; 4] = b"CSBM";

/// Magic bytes opening every serialized CSR matrix.
pub const MAGIC_CSR: &[u8; 4] = b"CSRM";

/// Current format version.
pub const VERSION: u16 = 1;

/// Error decoding a serialized BSPC matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared contents.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown precision tag.
    BadPrecision(u8),
    /// Unknown storage-format tag (used by containers that embed
    /// format-dispatched matrix blobs, e.g. `.rtm` model files).
    BadFormat(u8),
    /// The decoded structure failed validation.
    Invalid(BspcError),
    /// The decoded structure of a shape-validated format (BBS/CSB) failed
    /// validation.
    InvalidShape(ShapeError),
    /// A decoded weight value is NaN or infinite (rejected when the caller
    /// asks for load-time finiteness validation).
    NonFinite,
    /// A bundle section's stored CRC32 does not match its payload (the
    /// section tag identifies which one).
    SectionChecksum([u8; 4]),
    /// The whole-file CRC32 in a bundle trailer does not match the bytes —
    /// a torn write, a truncated rename, or bit rot.
    FileChecksum,
    /// A bundle's integrity trailer is missing or malformed (typically a
    /// torn or interrupted write).
    BadTrailer,
    /// A required bundle section is absent.
    MissingSection([u8; 4]),
    /// Bundle health metadata disagrees with the decoded network (the
    /// sections were edited independently).
    MetaMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadPrecision(p) => write!(f, "unknown precision tag {p}"),
            DecodeError::BadFormat(t) => write!(f, "unknown storage-format tag {t}"),
            DecodeError::Invalid(e) => write!(f, "invalid structure: {e}"),
            DecodeError::InvalidShape(e) => write!(f, "invalid structure: {e}"),
            DecodeError::NonFinite => write!(f, "non-finite weight value"),
            DecodeError::SectionChecksum(tag) => {
                write!(
                    f,
                    "section {:?} checksum mismatch",
                    String::from_utf8_lossy(tag)
                )
            }
            DecodeError::FileChecksum => {
                write!(f, "file checksum mismatch (torn write or bit rot)")
            }
            DecodeError::BadTrailer => write!(f, "missing or malformed bundle trailer"),
            DecodeError::MissingSection(tag) => {
                write!(
                    f,
                    "missing bundle section {:?}",
                    String::from_utf8_lossy(tag)
                )
            }
            DecodeError::MetaMismatch => {
                write!(
                    f,
                    "bundle health metadata disagrees with the decoded network"
                )
            }
        }
    }
}

impl Error for DecodeError {}

impl From<BspcError> for DecodeError {
    fn from(e: BspcError) -> DecodeError {
        DecodeError::Invalid(e)
    }
}

impl From<ShapeError> for DecodeError {
    fn from(e: ShapeError) -> DecodeError {
        DecodeError::InvalidShape(e)
    }
}

impl BspcMatrix {
    /// Serializes into `out` at the given value precision.
    ///
    /// [`Precision::Int8`] writes the per-(stripe, block) scales followed by
    /// the one-byte codes of the int8 sidecar; decoding restores the codes
    /// bit-exactly.
    pub fn write_to(&self, out: &mut Vec<u8>, precision: Precision) {
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u8(match precision {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::Int8 => 2,
        });
        out.put_u32_le(self.rows() as u32);
        out.put_u32_le(self.cols() as u32);
        out.put_u32_le(self.num_stripes() as u32);
        out.put_u32_le(self.num_blocks() as u32);

        out.put_u32_le(self.kept_rows().len() as u32);
        for &r in self.kept_rows() {
            out.put_u32_le(r);
        }
        for s in 0..self.num_stripes() {
            for b in 0..self.num_blocks() {
                let cols = self.block_kept_cols(s, b);
                out.put_u32_le(cols.len() as u32);
                for &c in cols {
                    out.put_u32_le(c);
                }
            }
        }
        for k in 0..self.kept_rows().len() {
            out.put_u32_le(self.row_offset(k) as u32);
        }
        out.put_u32_le(self.stored_len() as u32);
        match precision {
            Precision::F32 => {
                for &v in self.values() {
                    out.put_f32_le(v);
                }
            }
            Precision::F16 => {
                for &v in self.values() {
                    out.put_u16_le(F16::from_f32(v).to_bits());
                }
            }
            Precision::Int8 => {
                for &s in self.int8_scales() {
                    out.put_f32_le(s);
                }
                for &q in self.values_i8() {
                    out.put_u8(q as u8);
                }
            }
        }
        match self.reorder() {
            Some(perm) => {
                out.put_u8(1);
                for &p in perm {
                    out.put_u32_le(p);
                }
            }
            None => out.put_u8(0),
        }
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self, precision: Precision) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out, precision);
        out
    }

    /// Decodes one matrix from the front of `bytes`, returning it together
    /// with the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, bad magic/version/precision,
    /// or a structurally invalid payload.
    pub fn read_from(bytes: &[u8]) -> Result<(BspcMatrix, usize), DecodeError> {
        let mut buf = bytes;
        let need = |buf: &[u8], n: usize| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };

        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        need(buf, 3)?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let prec = buf.get_u8();
        let precision = match prec {
            0 => Precision::F32,
            1 => Precision::F16,
            2 => Precision::Int8,
            other => return Err(DecodeError::BadPrecision(other)),
        };

        need(buf, 16)?;
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let stripes = buf.get_u32_le() as usize;
        let blocks = buf.get_u32_le() as usize;
        // Validate the header *before* trusting any count for allocation —
        // a corrupted file must fail cleanly, never OOM.
        if stripes == 0 || blocks == 0 {
            return Err(DecodeError::Invalid(BspcError::ZeroPartition));
        }
        if stripes > rows.max(1) || blocks > cols.max(1) {
            return Err(DecodeError::Invalid(BspcError::PartitionTooFine {
                requested: (stripes, blocks),
                shape: (rows, cols),
            }));
        }

        need(buf, 4)?;
        let kept_count = buf.get_u32_le() as usize;
        if kept_count > rows {
            return Err(DecodeError::Truncated);
        }
        need(buf, kept_count * 4)?;
        let kept_rows: Vec<u32> = (0..kept_count).map(|_| buf.get_u32_le()).collect();

        // No pre-allocation from untrusted counts: every push is preceded
        // by a `need` guard on the actual bytes.
        let mut block_cols = Vec::new();
        for _ in 0..stripes.saturating_mul(blocks) {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.saturating_mul(4))?;
            block_cols.push((0..n).map(|_| buf.get_u32_le()).collect::<Vec<u32>>());
        }

        need(buf, kept_count * 4)?;
        let row_offsets: Vec<u32> = (0..kept_count).map(|_| buf.get_u32_le()).collect();

        need(buf, 4)?;
        let value_count = buf.get_u32_le() as usize;
        let mut int8_sidecar: Option<(Vec<i8>, Vec<f32>)> = None;
        let values: Vec<f32> = match precision {
            Precision::F32 => {
                need(buf, value_count.saturating_mul(4))?;
                (0..value_count).map(|_| buf.get_f32_le()).collect()
            }
            Precision::F16 => {
                need(buf, value_count.saturating_mul(2))?;
                (0..value_count)
                    .map(|_| F16::from_bits(buf.get_u16_le()).to_f32())
                    .collect()
            }
            Precision::Int8 => {
                let nscales = stripes.saturating_mul(blocks);
                need(buf, nscales.saturating_mul(4))?;
                let scales: Vec<f32> = (0..nscales).map(|_| buf.get_f32_le()).collect();
                need(buf, value_count)?;
                let codes: Vec<i8> = (0..value_count).map(|_| buf.get_u8() as i8).collect();
                // Reconstruct f32 values segment by segment. The walk
                // mirrors the packing order (kept row → block segments);
                // structural inconsistencies surface in `from_parts` below,
                // so the walk only has to stay in bounds, not validate.
                let stripe_h = rows.div_ceil(stripes).max(1);
                let mut values = vec![0.0f32; value_count];
                let mut idx = 0usize;
                'rows: for &r in &kept_rows {
                    let s = ((r as usize) / stripe_h).min(stripes - 1);
                    for b in 0..blocks {
                        for _ in 0..block_cols[s * blocks + b].len() {
                            if idx >= value_count {
                                break 'rows;
                            }
                            values[idx] = codes[idx] as f32 * scales[s * blocks + b];
                            idx += 1;
                        }
                    }
                }
                int8_sidecar = Some((codes, scales));
                values
            }
        };

        need(buf, 1)?;
        let reorder = if buf.get_u8() == 1 {
            need(buf, rows.saturating_mul(4))?;
            Some((0..rows).map(|_| buf.get_u32_le()).collect::<Vec<u32>>())
        } else {
            None
        };

        let consumed = bytes.len() - buf.remaining();
        let matrix = BspcMatrix::from_parts(
            rows,
            cols,
            stripes,
            blocks,
            kept_rows,
            block_cols,
            row_offsets,
            values,
            reorder,
        )?;
        // Install the stored int8 codes as the authoritative sidecar:
        // re-deriving codes from the reconstructed floats could flip values
        // sitting exactly on a rounding boundary.
        let matrix = match int8_sidecar {
            Some((codes, scales)) => matrix.with_int8_sidecar(codes, scales)?,
            None => matrix,
        };
        Ok((matrix, consumed))
    }
}

fn put_precision_tag(out: &mut Vec<u8>, precision: Precision) {
    out.put_u8(match precision {
        Precision::F32 => 0,
        Precision::F16 => 1,
        Precision::Int8 => 2,
    });
}

impl BbsMatrix {
    /// Serializes into `out` at the given value precision.
    ///
    /// Layout (little-endian): `"BBSM"`, version `u16`, precision `u8`,
    /// `rows/cols/num_banks/bank_nnz` as 4 × `u32`, the slot column
    /// indices, then the value payload — f32 scalars, f16 bit patterns, or
    /// per-row f32 scales followed by one-byte codes for int8.
    pub fn write_to(&self, out: &mut Vec<u8>, precision: Precision) {
        out.put_slice(MAGIC_BBS);
        out.put_u16_le(VERSION);
        put_precision_tag(out, precision);
        out.put_u32_le(self.rows() as u32);
        out.put_u32_le(self.cols() as u32);
        out.put_u32_le(self.num_banks() as u32);
        out.put_u32_le(self.bank_nnz() as u32);
        for &c in self.col_idx() {
            out.put_u32_le(c);
        }
        match precision {
            Precision::F32 => {
                for &v in self.values() {
                    out.put_f32_le(v);
                }
            }
            Precision::F16 => {
                for &v in self.values() {
                    out.put_u16_le(F16::from_f32(v).to_bits());
                }
            }
            Precision::Int8 => {
                for &s in self.int8_scales() {
                    out.put_f32_le(s);
                }
                for &q in self.values_i8() {
                    out.put_u8(q as u8);
                }
            }
        }
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self, precision: Precision) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out, precision);
        out
    }

    /// Decodes one matrix from the front of `bytes`, returning it together
    /// with the number of bytes consumed. Int8 payloads install the stored
    /// codes as the authoritative sidecar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, bad magic/version/precision,
    /// or a structurally invalid payload.
    pub fn read_from(bytes: &[u8]) -> Result<(BbsMatrix, usize), DecodeError> {
        let mut buf = bytes;
        let need = |buf: &[u8], n: usize| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };

        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC_BBS {
            return Err(DecodeError::BadMagic);
        }
        need(buf, 3)?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let precision = match buf.get_u8() {
            0 => Precision::F32,
            1 => Precision::F16,
            2 => Precision::Int8,
            other => return Err(DecodeError::BadPrecision(other)),
        };

        need(buf, 16)?;
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let num_banks = buf.get_u32_le() as usize;
        let bank_nnz = buf.get_u32_le() as usize;
        // The slot count is derived, never read from the wire; `need`
        // guards every batch read against the actual byte budget, so a
        // corrupted header fails cleanly instead of over-allocating.
        let slots = rows
            .checked_mul(num_banks)
            .and_then(|n| n.checked_mul(bank_nnz))
            .ok_or(DecodeError::Truncated)?;
        need(buf, slots.saturating_mul(4))?;
        let col_idx: Vec<u32> = (0..slots).map(|_| buf.get_u32_le()).collect();

        let mut int8_sidecar: Option<(Vec<i8>, Vec<f32>)> = None;
        let values: Vec<f32> = match precision {
            Precision::F32 => {
                need(buf, slots.saturating_mul(4))?;
                (0..slots).map(|_| buf.get_f32_le()).collect()
            }
            Precision::F16 => {
                need(buf, slots.saturating_mul(2))?;
                (0..slots)
                    .map(|_| F16::from_bits(buf.get_u16_le()).to_f32())
                    .collect()
            }
            Precision::Int8 => {
                need(buf, rows.saturating_mul(4))?;
                let scales: Vec<f32> = (0..rows).map(|_| buf.get_f32_le()).collect();
                need(buf, slots)?;
                let codes: Vec<i8> = (0..slots).map(|_| buf.get_u8() as i8).collect();
                let stride = num_banks * bank_nnz;
                let values = codes
                    .iter()
                    .enumerate()
                    .map(|(i, &q)| q as f32 * scales[i / stride.max(1)])
                    .collect();
                int8_sidecar = Some((codes, scales));
                values
            }
        };

        let consumed = bytes.len() - buf.remaining();
        let matrix = BbsMatrix::from_parts(rows, cols, num_banks, bank_nnz, col_idx, values)?;
        let matrix = match int8_sidecar {
            Some((codes, scales)) => matrix.with_int8_sidecar(codes, scales)?,
            None => matrix,
        };
        Ok((matrix, consumed))
    }
}

impl CsbMatrix {
    /// Serializes into `out` at the given value precision.
    ///
    /// Layout (little-endian): `"CSBM"`, version `u16`, precision `u8`,
    /// `rows/cols/block_h/block_w` as 4 × `u32`, stored-block count `u32`,
    /// `block_ptr`, `block_col`, `col_ptr`, `cols_idx`, `val_ptr`, then
    /// the value payload (per-block f32 scales before the codes for int8).
    pub fn write_to(&self, out: &mut Vec<u8>, precision: Precision) {
        out.put_slice(MAGIC_CSB);
        out.put_u16_le(VERSION);
        put_precision_tag(out, precision);
        out.put_u32_le(self.rows() as u32);
        out.put_u32_le(self.cols() as u32);
        out.put_u32_le(self.block_h() as u32);
        out.put_u32_le(self.block_w() as u32);
        out.put_u32_le(self.stored_blocks() as u32);
        for &p in self.block_ptr() {
            out.put_u32_le(p);
        }
        for &c in self.block_col() {
            out.put_u32_le(c);
        }
        for &p in self.col_ptr() {
            out.put_u32_le(p);
        }
        for &c in self.cols_idx() {
            out.put_u32_le(c);
        }
        for &p in self.val_ptr() {
            out.put_u32_le(p);
        }
        match precision {
            Precision::F32 => {
                for &v in self.values() {
                    out.put_f32_le(v);
                }
            }
            Precision::F16 => {
                for &v in self.values() {
                    out.put_u16_le(F16::from_f32(v).to_bits());
                }
            }
            Precision::Int8 => {
                for &s in self.int8_scales() {
                    out.put_f32_le(s);
                }
                for &q in self.values_i8() {
                    out.put_u8(q as u8);
                }
            }
        }
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self, precision: Precision) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out, precision);
        out
    }

    /// Decodes one matrix from the front of `bytes`, returning it together
    /// with the number of bytes consumed. Int8 payloads install the stored
    /// codes as the authoritative sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, bad magic/version/precision,
    /// or a structurally invalid payload.
    pub fn read_from(bytes: &[u8]) -> Result<(CsbMatrix, usize), DecodeError> {
        let mut buf = bytes;
        let need = |buf: &[u8], n: usize| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };

        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC_CSB {
            return Err(DecodeError::BadMagic);
        }
        need(buf, 3)?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let precision = match buf.get_u8() {
            0 => Precision::F32,
            1 => Precision::F16,
            2 => Precision::Int8,
            other => return Err(DecodeError::BadPrecision(other)),
        };

        need(buf, 20)?;
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let block_h = buf.get_u32_le() as usize;
        let block_w = buf.get_u32_le() as usize;
        let nblocks = buf.get_u32_le() as usize;
        // Validate before trusting any count for a division or allocation.
        if block_h == 0 || block_w == 0 {
            return Err(DecodeError::InvalidShape(ShapeError {
                op: "csb_decode",
                lhs: (rows, cols),
                rhs: (block_h, block_w),
            }));
        }
        let nbr = rows.div_ceil(block_h);
        // A block row stores at most `num_block_cols` blocks.
        if nblocks > nbr.saturating_mul(cols.div_ceil(block_w)) {
            return Err(DecodeError::Truncated);
        }

        need(buf, (nbr + 1).saturating_mul(4))?;
        let block_ptr: Vec<u32> = (0..nbr + 1).map(|_| buf.get_u32_le()).collect();
        need(buf, nblocks.saturating_mul(4))?;
        let block_col: Vec<u32> = (0..nblocks).map(|_| buf.get_u32_le()).collect();
        need(buf, (nblocks + 1).saturating_mul(4))?;
        let col_ptr: Vec<u32> = (0..nblocks + 1).map(|_| buf.get_u32_le()).collect();
        let ncols_idx = col_ptr.last().copied().unwrap_or(0) as usize;
        need(buf, ncols_idx.saturating_mul(4))?;
        let cols_idx: Vec<u32> = (0..ncols_idx).map(|_| buf.get_u32_le()).collect();
        need(buf, (nblocks + 1).saturating_mul(4))?;
        let val_ptr: Vec<u32> = (0..nblocks + 1).map(|_| buf.get_u32_le()).collect();
        if val_ptr[0] != 0 || val_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(DecodeError::InvalidShape(ShapeError {
                op: "csb_decode",
                lhs: (rows, cols),
                rhs: (block_h, block_w),
            }));
        }
        let value_count = val_ptr[nblocks] as usize;

        let mut int8_sidecar: Option<(Vec<i8>, Vec<f32>)> = None;
        let values: Vec<f32> = match precision {
            Precision::F32 => {
                need(buf, value_count.saturating_mul(4))?;
                (0..value_count).map(|_| buf.get_f32_le()).collect()
            }
            Precision::F16 => {
                need(buf, value_count.saturating_mul(2))?;
                (0..value_count)
                    .map(|_| F16::from_bits(buf.get_u16_le()).to_f32())
                    .collect()
            }
            Precision::Int8 => {
                need(buf, nblocks.saturating_mul(4))?;
                let scales: Vec<f32> = (0..nblocks).map(|_| buf.get_f32_le()).collect();
                need(buf, value_count)?;
                let codes: Vec<i8> = (0..value_count).map(|_| buf.get_u8() as i8).collect();
                let mut values = vec![0.0f32; value_count];
                for blk in 0..nblocks {
                    let (vs, ve) = (val_ptr[blk] as usize, val_ptr[blk + 1] as usize);
                    for i in vs..ve {
                        values[i] = codes[i] as f32 * scales[blk];
                    }
                }
                int8_sidecar = Some((codes, scales));
                values
            }
        };

        let consumed = bytes.len() - buf.remaining();
        let matrix = CsbMatrix::from_parts(
            rows, cols, block_h, block_w, block_ptr, block_col, col_ptr, cols_idx, val_ptr, values,
        )?;
        let matrix = match int8_sidecar {
            Some((codes, scales)) => matrix.with_int8_sidecar(codes, scales)?,
            None => matrix,
        };
        Ok((matrix, consumed))
    }
}

impl CsrMatrix {
    /// Serializes into `out` at the given value precision.
    ///
    /// Layout (little-endian): `"CSRM"`, version `u16`, precision `u8`,
    /// `rows/cols` as 2 × `u32`, `row_ptr` (`rows + 1` × `u32`), `col_idx`
    /// (`nnz` × `u32`), then the value payload — f32 scalars, f16 bit
    /// patterns, or per-row-block f32 scales followed by one-byte codes
    /// for int8.
    pub fn write_to(&self, out: &mut Vec<u8>, precision: Precision) {
        out.put_slice(MAGIC_CSR);
        out.put_u16_le(VERSION);
        put_precision_tag(out, precision);
        out.put_u32_le(self.rows() as u32);
        out.put_u32_le(self.cols() as u32);
        for &p in self.row_ptr() {
            out.put_u32_le(p);
        }
        for &c in self.col_idx() {
            out.put_u32_le(c);
        }
        match precision {
            Precision::F32 => {
                for &v in self.values() {
                    out.put_f32_le(v);
                }
            }
            Precision::F16 => {
                for &v in self.values() {
                    out.put_u16_le(F16::from_f32(v).to_bits());
                }
            }
            Precision::Int8 => {
                for &s in self.int8_scales() {
                    out.put_f32_le(s);
                }
                for &q in self.values_i8() {
                    out.put_u8(q as u8);
                }
            }
        }
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self, precision: Precision) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out, precision);
        out
    }

    /// Decodes one matrix from the front of `bytes`, returning it together
    /// with the number of bytes consumed. Int8 payloads install the stored
    /// codes as the authoritative sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, bad magic/version/precision,
    /// or a structurally invalid payload.
    pub fn read_from(bytes: &[u8]) -> Result<(CsrMatrix, usize), DecodeError> {
        let mut buf = bytes;
        let need = |buf: &[u8], n: usize| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };

        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC_CSR {
            return Err(DecodeError::BadMagic);
        }
        need(buf, 3)?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let precision = match buf.get_u8() {
            0 => Precision::F32,
            1 => Precision::F16,
            2 => Precision::Int8,
            other => return Err(DecodeError::BadPrecision(other)),
        };

        need(buf, 8)?;
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        need(buf, (rows + 1).saturating_mul(4))?;
        let row_ptr: Vec<u32> = (0..rows + 1).map(|_| buf.get_u32_le()).collect();
        if row_ptr[0] != 0 || row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(DecodeError::InvalidShape(ShapeError {
                op: "csr_decode",
                lhs: (rows, cols),
                rhs: (row_ptr.len(), 0),
            }));
        }
        // The nonzero count is derived from the validated row pointers,
        // never read from the wire; `need` guards every batch read.
        let nnz = row_ptr[rows] as usize;
        need(buf, nnz.saturating_mul(4))?;
        let col_idx: Vec<u32> = (0..nnz).map(|_| buf.get_u32_le()).collect();

        let mut int8_sidecar: Option<(Vec<i8>, Vec<f32>)> = None;
        let values: Vec<f32> = match precision {
            Precision::F32 => {
                need(buf, nnz.saturating_mul(4))?;
                (0..nnz).map(|_| buf.get_f32_le()).collect()
            }
            Precision::F16 => {
                need(buf, nnz.saturating_mul(2))?;
                (0..nnz)
                    .map(|_| F16::from_bits(buf.get_u16_le()).to_f32())
                    .collect()
            }
            Precision::Int8 => {
                let nscales = rows.div_ceil(CsrMatrix::ROW_BLOCK);
                need(buf, nscales.saturating_mul(4))?;
                let scales: Vec<f32> = (0..nscales).map(|_| buf.get_f32_le()).collect();
                need(buf, nnz)?;
                let codes: Vec<i8> = (0..nnz).map(|_| buf.get_u8() as i8).collect();
                let mut values = vec![0.0f32; nnz];
                for r in 0..rows {
                    let (s, e) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
                    let scale = scales[r / CsrMatrix::ROW_BLOCK];
                    for i in s..e {
                        values[i] = codes[i] as f32 * scale;
                    }
                }
                int8_sidecar = Some((codes, scales));
                values
            }
        };

        let consumed = bytes.len() - buf.remaining();
        let matrix = CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, values)?;
        let matrix = match int8_sidecar {
            Some((codes, scales)) => matrix.with_int8_sidecar(codes, scales)?,
            None => matrix,
        };
        Ok((matrix, consumed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::Matrix;

    fn sample() -> BspcMatrix {
        let dense = Matrix::from_fn(8, 8, |r, c| {
            let stripe = r / 4;
            if r != 3 && c % 4 == stripe {
                0.25 + (r * 8 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        BspcMatrix::from_dense(&dense, 2, 2).expect("partition fits")
    }

    #[test]
    fn roundtrip_f32_exact() {
        let m = sample();
        let bytes = m.to_bytes(Precision::F32);
        let (decoded, consumed) = BspcMatrix::read_from(&bytes).expect("decodes");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, m);
        assert_eq!(decoded.to_dense(), m.to_dense());
    }

    #[test]
    fn roundtrip_f16_quantizes_values_only() {
        let m = sample();
        let bytes = m.to_bytes(Precision::F16);
        let (decoded, _) = BspcMatrix::read_from(&bytes).expect("decodes");
        // Structure identical.
        assert_eq!(decoded.kept_rows(), m.kept_rows());
        assert_eq!(decoded.stored_len(), m.stored_len());
        // Values within f16 tolerance of the originals.
        for (a, b) in m.values().iter().zip(decoded.values()) {
            assert!((a - b).abs() <= a.abs() * 0.001 + 1e-4, "{a} vs {b}");
        }
        // And the f16 file is smaller.
        assert!(bytes.len() < m.to_bytes(Precision::F32).len());
    }

    #[test]
    fn roundtrip_int8_codes_bit_exact() {
        let m = sample();
        let bytes = m.to_bytes(Precision::Int8);
        let (decoded, consumed) = BspcMatrix::read_from(&bytes).expect("decodes");
        assert_eq!(consumed, bytes.len());
        // Structure identical; codes and scales round-trip bit for bit.
        assert_eq!(decoded.kept_rows(), m.kept_rows());
        assert_eq!(decoded.values_i8(), m.values_i8());
        assert_eq!(decoded.int8_scales(), m.int8_scales());
        // Reconstructed values are code · scale, within the quantization
        // error bound of the originals.
        for (a, b) in m.values().iter().zip(decoded.values()) {
            let bound = m.int8_scales().iter().fold(0.0f32, |x, s| x.max(*s)) * 0.5 + 1e-6;
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
        // A second encode of the decoded matrix is byte-identical — the
        // sidecar install, not float re-derivation, is what guarantees this.
        assert_eq!(decoded.to_bytes(Precision::Int8), bytes);
        // The int8 file beats f32 even here; on this tiny sample the 16 B
        // of scale metadata outweighs the byte-per-value saving vs f16
        // (large matrices amortize it — see the footprint tests).
        assert!(bytes.len() < m.to_bytes(Precision::F32).len());
    }

    #[test]
    fn roundtrip_with_reorder() {
        let m = sample()
            .with_reorder((0..8).rev().map(|i| i as u32).collect())
            .expect("valid perm");
        let bytes = m.to_bytes(Precision::F32);
        let (decoded, _) = BspcMatrix::read_from(&bytes).expect("decodes");
        assert_eq!(decoded.reorder(), m.reorder());
    }

    #[test]
    fn concatenated_matrices_decode_sequentially() {
        let a = sample();
        let b = sample();
        let mut bytes = a.to_bytes(Precision::F32);
        b.write_to(&mut bytes, Precision::F16);
        let (da, used) = BspcMatrix::read_from(&bytes).expect("first");
        let (db, _) = BspcMatrix::read_from(&bytes[used..]).expect("second");
        assert_eq!(da, a);
        assert_eq!(db.stored_len(), b.stored_len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            BspcMatrix::read_from(&[]).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            BspcMatrix::read_from(b"NOPE\x01\x00\x00").unwrap_err(),
            DecodeError::BadMagic
        );
        let mut bytes = sample().to_bytes(Precision::F32);
        bytes[4] = 99; // version
        assert!(matches!(
            BspcMatrix::read_from(&bytes).unwrap_err(),
            DecodeError::BadVersion(_)
        ));
        let mut bytes = sample().to_bytes(Precision::F32);
        bytes[6] = 7; // precision tag
        assert!(matches!(
            BspcMatrix::read_from(&bytes).unwrap_err(),
            DecodeError::BadPrecision(7)
        ));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = sample().to_bytes(Precision::F32);
        // Chop the buffer at every prefix; all must fail cleanly (never
        // panic), except the full length.
        for n in 0..bytes.len() {
            let err = BspcMatrix::read_from(&bytes[..n]);
            assert!(err.is_err(), "prefix {n} must not decode");
        }
        assert!(BspcMatrix::read_from(&bytes).is_ok());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeError::Truncated,
            DecodeError::BadMagic,
            DecodeError::BadVersion(2),
            DecodeError::BadPrecision(9),
            DecodeError::SectionChecksum(*b"WGHT"),
            DecodeError::FileChecksum,
            DecodeError::BadTrailer,
            DecodeError::MissingSection(*b"WGHT"),
            DecodeError::MetaMismatch,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    /// Random BSP-ish matrices round-trip at f32 exactly, and at f16
    /// within binary16 tolerance, for arbitrary partitions.
    #[test]
    fn prop_wire_roundtrip() {
        for seed in 0u64..150 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..12);
            let cols = rng.gen_range(1usize..12);
            let stripes = rng.gen_range(1usize..4).min(rows);
            let blocks = rng.gen_range(1usize..4).min(cols);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.5 {
                    0.0
                } else {
                    v
                }
            });
            let m = BspcMatrix::from_dense(&dense, stripes, blocks).expect("fits");

            let bytes = m.to_bytes(Precision::F32);
            let (d32, used) = BspcMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len(), "seed {seed}");
            assert_eq!(&d32, &m, "seed {seed}");

            let bytes = m.to_bytes(Precision::F16);
            let (d16, _) = BspcMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(d16.kept_rows(), m.kept_rows(), "seed {seed}");
            for (a, b) in m.values().iter().zip(d16.values()) {
                assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-4, "seed {seed}");
            }
        }
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn prop_decoder_never_panics() {
        for seed in 0u64..300 {
            let mut rng = rtm_tensor::rng::StdRng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..256);
            let mut bytes = vec![0u8; len];
            rng.fill_bytes(&mut bytes);
            let _ = BspcMatrix::read_from(&bytes);
            // Truncations of a valid stream must also be handled gracefully.
            let m = BspcMatrix::from_dense(&Matrix::zeros(2, 2), 1, 1).expect("fits");
            let valid = m.to_bytes(Precision::F32);
            let cut = rng.gen_range(0usize..valid.len());
            let _ = BspcMatrix::read_from(&valid[..cut]);
        }
    }

    mod bbs_csb {
        use super::*;
        use crate::{BbsMatrix, CsbMatrix};

        fn sample_dense() -> Matrix {
            Matrix::from_fn(9, 8, |r, c| {
                if (r * 7 + c * 3) % 5 < 2 {
                    0.2 + (r * 8 + c) as f32 * 0.01
                } else {
                    0.0
                }
            })
        }

        #[test]
        fn bbs_roundtrips_all_precisions() {
            let m = BbsMatrix::from_dense(&sample_dense(), 2).unwrap();
            let bytes = m.to_bytes(Precision::F32);
            let (d, used) = BbsMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(d, m);

            let bytes = m.to_bytes(Precision::F16);
            let (d, _) = BbsMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(d.col_idx(), m.col_idx());
            for (a, b) in m.values().iter().zip(d.values()) {
                assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-4, "{a} vs {b}");
            }

            let bytes = m.to_bytes(Precision::Int8);
            let (d, used) = BbsMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(d.values_i8(), m.values_i8());
            assert_eq!(d.int8_scales(), m.int8_scales());
            // Re-encode is byte-identical — the sidecar install guarantees it.
            assert_eq!(d.to_bytes(Precision::Int8), bytes);
        }

        #[test]
        fn csb_roundtrips_all_precisions() {
            let m = CsbMatrix::from_dense(&sample_dense(), 3, 4).unwrap();
            let bytes = m.to_bytes(Precision::F32);
            let (d, used) = CsbMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(d, m);

            let bytes = m.to_bytes(Precision::F16);
            let (d, _) = CsbMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(d.cols_idx(), m.cols_idx());
            for (a, b) in m.values().iter().zip(d.values()) {
                assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-4, "{a} vs {b}");
            }

            let bytes = m.to_bytes(Precision::Int8);
            let (d, used) = CsbMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(d.values_i8(), m.values_i8());
            assert_eq!(d.int8_scales(), m.int8_scales());
            assert_eq!(d.to_bytes(Precision::Int8), bytes);
        }

        #[test]
        fn csr_roundtrips_all_precisions() {
            let m = CsrMatrix::from_dense(&sample_dense());
            let bytes = m.to_bytes(Precision::F32);
            let (d, used) = CsrMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(d, m);

            let bytes = m.to_bytes(Precision::F16);
            let (d, _) = CsrMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(d.col_idx(), m.col_idx());
            for (a, b) in m.values().iter().zip(d.values()) {
                assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-4, "{a} vs {b}");
            }

            let bytes = m.to_bytes(Precision::Int8);
            let (d, used) = CsrMatrix::read_from(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(d.values_i8(), m.values_i8());
            assert_eq!(d.int8_scales(), m.int8_scales());
            assert_eq!(d.to_bytes(Precision::Int8), bytes);

            for prec in [Precision::F32, Precision::F16, Precision::Int8] {
                let bytes = m.to_bytes(prec);
                for n in 0..bytes.len() {
                    assert!(CsrMatrix::read_from(&bytes[..n]).is_err(), "prefix {n}");
                }
            }
            assert_eq!(
                CsrMatrix::read_from(&m.to_bytes(Precision::F32)[4..]).unwrap_err(),
                DecodeError::BadMagic
            );
        }

        #[test]
        fn magics_are_disjoint() {
            let m = BbsMatrix::from_dense(&sample_dense(), 2).unwrap();
            let bytes = m.to_bytes(Precision::F32);
            assert_eq!(
                CsbMatrix::read_from(&bytes).unwrap_err(),
                DecodeError::BadMagic
            );
            assert_eq!(
                BspcMatrix::read_from(&bytes).unwrap_err(),
                DecodeError::BadMagic
            );
            let c = CsbMatrix::from_dense(&sample_dense(), 3, 3).unwrap();
            assert_eq!(
                BbsMatrix::read_from(&c.to_bytes(Precision::F32)).unwrap_err(),
                DecodeError::BadMagic
            );
        }

        #[test]
        fn decode_rejects_truncation_everywhere() {
            let b = BbsMatrix::from_dense(&sample_dense(), 2).unwrap();
            for prec in [Precision::F32, Precision::F16, Precision::Int8] {
                let bytes = b.to_bytes(prec);
                for n in 0..bytes.len() {
                    assert!(BbsMatrix::read_from(&bytes[..n]).is_err(), "prefix {n}");
                }
                assert!(BbsMatrix::read_from(&bytes).is_ok());
            }
            let c = CsbMatrix::from_dense(&sample_dense(), 3, 4).unwrap();
            for prec in [Precision::F32, Precision::F16, Precision::Int8] {
                let bytes = c.to_bytes(prec);
                for n in 0..bytes.len() {
                    assert!(CsbMatrix::read_from(&bytes[..n]).is_err(), "prefix {n}");
                }
                assert!(CsbMatrix::read_from(&bytes).is_ok());
            }
        }

        /// Arbitrary byte soup never panics either new decoder.
        #[test]
        fn prop_decoders_never_panic() {
            for seed in 0u64..300 {
                let mut rng = rtm_tensor::rng::StdRng::seed_from_u64(seed);
                let len = rng.gen_range(0usize..256);
                let mut bytes = vec![0u8; len];
                rng.fill_bytes(&mut bytes);
                let _ = BbsMatrix::read_from(&bytes);
                let _ = CsbMatrix::read_from(&bytes);
                // Corrupting a valid stream must also fail cleanly.
                let m = BbsMatrix::from_dense(&sample_dense(), 2).unwrap();
                let mut valid = m.to_bytes(Precision::F32);
                let at = rng.gen_range(0usize..valid.len());
                valid[at] ^= 1 << rng.gen_range(0usize..8) as u8;
                let _ = BbsMatrix::read_from(&valid);
                let m = CsbMatrix::from_dense(&sample_dense(), 2, 3).unwrap();
                let mut valid = m.to_bytes(Precision::Int8);
                let at = rng.gen_range(0usize..valid.len());
                valid[at] ^= 1 << rng.gen_range(0usize..8) as u8;
                let _ = CsbMatrix::read_from(&valid);
            }
        }

        /// Random matrices round-trip at f32 exactly for arbitrary
        /// bank/block geometry.
        #[test]
        fn prop_wire_roundtrip() {
            for seed in 0u64..150 {
                let mut rng = rtm_tensor::init::rng_from_seed(seed);
                let rows = rng.gen_range(1usize..12);
                let cols = rng.gen_range(1usize..12);
                let banks = rng.gen_range(1usize..4).min(cols);
                let bh = rng.gen_range(1usize..5);
                let bw = rng.gen_range(1usize..5);
                let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                    if v.abs() < 0.5 {
                        0.0
                    } else {
                        v
                    }
                });
                let m = BbsMatrix::from_dense(&dense, banks).unwrap();
                let bytes = m.to_bytes(Precision::F32);
                let (d, used) = BbsMatrix::read_from(&bytes).expect("decodes");
                assert_eq!(used, bytes.len(), "seed {seed}");
                assert_eq!(d, m, "seed {seed}");
                let m = CsbMatrix::from_dense(&dense, bh, bw).unwrap();
                let bytes = m.to_bytes(Precision::F32);
                let (d, used) = CsbMatrix::read_from(&bytes).expect("decodes");
                assert_eq!(used, bytes.len(), "seed {seed}");
                assert_eq!(d, m, "seed {seed}");
            }
        }
    }
}
