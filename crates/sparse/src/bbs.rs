//! Bank-Balanced Sparsity storage (the BBS scheme of Cao et al., which
//! RTMobile's Table I compares against).
//!
//! Each row is split into `num_banks` equal-width column banks and every
//! bank stores exactly `bank_nnz` entries (the maximum any bank needs;
//! lighter banks are padded with explicit zeros). The payoff is a fully
//! regular layout: every row owns `num_banks · bank_nnz` contiguous
//! `(value, column)` slots, so the inner loop needs no per-row pointer
//! chasing and the executor can partition by plain row count — per-row
//! cost is uniform by construction. The price is the padding: a matrix
//! whose nonzeros cluster in few banks stores (and multiplies) zeros for
//! the empty ones, which is exactly the trade the tuner measures when it
//! weighs BBS against BSPC/CSR per layer.

use crate::footprint::Precision;
use rtm_tensor::{Matrix, ShapeError};
use std::cell::RefCell;
use std::ops::Range;

// Thread-local scratch for the quantized kernels (see `bspc.rs` — worker
// threads get independent buffers, so the steady state is allocation-free
// and row chunks can run concurrently).
thread_local! {
    static TLS_ACT: RefCell<(Vec<i8>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    static TLS_KERNEL: RefCell<(Vec<f32>, Vec<i8>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A sparse matrix in bank-balanced (padded ELL) format.
///
/// Invariants (maintained by construction, checked in `from_parts`):
/// `values.len() == col_idx.len() == rows · num_banks · bank_nnz`, every
/// stored column index is `< cols`, and within a row the slots of bank `k`
/// occupy positions `[k · bank_nnz, (k+1) · bank_nnz)`. Padded slots carry
/// value `0.0` and a clamped in-range column, so every kernel can treat
/// all slots uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct BbsMatrix {
    rows: usize,
    cols: usize,
    num_banks: usize,
    bank_nnz: usize,
    /// Column of every slot, row-major (`rows × num_banks × bank_nnz`).
    col_idx: Vec<u32>,
    /// Value of every slot (padding slots store `0.0`).
    values: Vec<f32>,
    /// `values` as raw f16 bit patterns (fp16 weight-storage sidecar).
    values_f16: Vec<u16>,
    /// `values` as int8 codes under the per-row scales.
    scales_i8: Vec<f32>,
    values_i8: Vec<i8>,
}

impl BbsMatrix {
    /// Builds a bank-balanced matrix from a dense one, keeping entries
    /// that are not exactly zero. `bank_nnz` becomes the largest per-bank
    /// nonzero count any row needs; all other banks are zero-padded up to
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `num_banks` is zero or exceeds the
    /// column count.
    pub fn from_dense(dense: &Matrix, num_banks: usize) -> Result<BbsMatrix, ShapeError> {
        let (rows, cols) = dense.shape();
        if num_banks == 0 || num_banks > cols.max(1) {
            return Err(ShapeError {
                op: "bbs_from_dense",
                lhs: (rows, cols),
                rhs: (num_banks, 0),
            });
        }
        let bank_w = cols.div_ceil(num_banks).max(1);
        // Pass 1: the balance point — the largest per-(row, bank) count.
        let mut bank_nnz = 0usize;
        for r in 0..rows {
            let mut counts = vec![0usize; num_banks];
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    counts[c / bank_w] += 1;
                }
            }
            for &n in &counts {
                bank_nnz = bank_nnz.max(n);
            }
        }
        // Pass 2: pack row-major, bank by bank, padding with explicit
        // zeros at a clamped in-bank column (any valid column works: the
        // padded value is 0.0, so the slot contributes nothing).
        let slots = rows * num_banks * bank_nnz;
        let mut col_idx = Vec::with_capacity(slots);
        let mut values = Vec::with_capacity(slots);
        for r in 0..rows {
            let row = dense.row(r);
            for bank in 0..num_banks {
                let lo = bank * bank_w;
                let hi = ((bank + 1) * bank_w).min(cols);
                let mut stored = 0usize;
                // `lo` can exceed `hi` for a bank past the last column
                // (hi clamps to `cols`); such banks hold only padding.
                for (off, &v) in row[lo.min(hi)..hi].iter().enumerate() {
                    if v != 0.0 {
                        col_idx.push((lo + off) as u32);
                        values.push(v);
                        stored += 1;
                    }
                }
                let pad_col = lo.min(cols.saturating_sub(1)) as u32;
                for _ in stored..bank_nnz {
                    col_idx.push(pad_col);
                    values.push(0.0);
                }
            }
        }
        let mut m = BbsMatrix {
            rows,
            cols,
            num_banks,
            bank_nnz,
            col_idx,
            values,
            values_f16: Vec::new(),
            scales_i8: Vec::new(),
            values_i8: Vec::new(),
        };
        m.build_sidecars();
        Ok(m)
    }

    /// Rebuilds the f16 and int8 sidecars from `values`. BBS rows are the
    /// natural scale granularity (each row is one uniform slab), so the
    /// int8 sidecar carries one symmetric scale per row; padded slots
    /// quantize to code 0 and stay exact.
    fn build_sidecars(&mut self) {
        self.values_f16 = rtm_tensor::f16::f32_to_f16_bits(&self.values);
        let stride = self.row_stride();
        self.scales_i8 = (0..self.rows)
            .map(|r| {
                let m = self.values[r * stride..(r + 1) * stride]
                    .iter()
                    .fold(0.0f32, |a, v| a.max(v.abs()));
                if m > 0.0 && m.is_finite() {
                    m / 127.0
                } else {
                    1.0
                }
            })
            .collect();
        self.values_i8 = vec![0; self.values.len()];
        for r in 0..self.rows {
            let scale = self.scales_i8[r];
            for i in r * stride..(r + 1) * stride {
                self.values_i8[i] = (self.values[i] / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
    }

    /// Builds from raw parts (the deserialization path).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the arrays are inconsistent: bad bank
    /// count, slot arrays whose length is not `rows · num_banks · bank_nnz`,
    /// or an out-of-range column. (Bank membership of each slot is a
    /// construction property, not revalidated — padded slots may carry a
    /// clamped out-of-bank column.)
    pub fn from_parts(
        rows: usize,
        cols: usize,
        num_banks: usize,
        bank_nnz: usize,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<BbsMatrix, ShapeError> {
        let bad = || ShapeError {
            op: "bbs_from_parts",
            lhs: (rows, cols),
            rhs: (num_banks, bank_nnz),
        };
        if num_banks == 0 || num_banks > cols.max(1) {
            return Err(bad());
        }
        let slots = rows
            .checked_mul(num_banks)
            .and_then(|n| n.checked_mul(bank_nnz))
            .ok_or_else(bad)?;
        if col_idx.len() != slots || values.len() != slots {
            return Err(bad());
        }
        if col_idx.iter().any(|&c| c as usize >= cols) {
            return Err(bad());
        }
        let mut m = BbsMatrix {
            rows,
            cols,
            num_banks,
            bank_nnz,
            col_idx,
            values,
            values_f16: Vec::new(),
            scales_i8: Vec::new(),
            values_i8: Vec::new(),
        };
        m.build_sidecars();
        Ok(m)
    }

    /// Replaces the int8 sidecar with externally supplied codes and
    /// per-row scales (used by the decoder so stored codes round-trip
    /// bit-exactly instead of being re-derived from floats).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `codes` does not have one entry per
    /// stored slot or `scales` one entry per row.
    pub fn with_int8_sidecar(
        mut self,
        codes: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<BbsMatrix, ShapeError> {
        if codes.len() != self.values.len() || scales.len() != self.rows {
            return Err(ShapeError {
                op: "bbs_int8_sidecar",
                lhs: (self.rows, self.cols),
                rhs: (codes.len(), scales.len()),
            });
        }
        self.values_i8 = codes;
        self.scales_i8 = scales;
        Ok(self)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of column banks per row.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Stored entries per bank (identical for every row and bank).
    pub fn bank_nnz(&self) -> usize {
        self.bank_nnz
    }

    /// Columns spanned by each bank (the last bank may cover fewer).
    pub fn bank_width(&self) -> usize {
        self.cols.div_ceil(self.num_banks).max(1)
    }

    /// Stored slots per row (`num_banks · bank_nnz`).
    pub fn row_stride(&self) -> usize {
        self.num_banks * self.bank_nnz
    }

    /// Total stored slots, padding included — what the format actually
    /// streams, and hence what [`crate::Footprint`] prices.
    pub fn stored_len(&self) -> usize {
        self.values.len()
    }

    /// Column index of every slot, row-major.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value of every slot, row-major (padding slots are `0.0`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The slot values as raw f16 bit patterns.
    pub fn values_f16(&self) -> &[u16] {
        &self.values_f16
    }

    /// The slot values as int8 codes under [`BbsMatrix::int8_scales`].
    pub fn values_i8(&self) -> &[i8] {
        &self.values_i8
    }

    /// Symmetric int8 scale per row.
    pub fn int8_scales(&self) -> &[f32] {
        &self.scales_i8
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        let mut y = vec![0.0f32; self.rows];
        self.spmv_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free SpMV into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "bbs_spmv_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BBS, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmv_rows_into(x, 0..self.rows, y, 0);
        Ok(())
    }

    /// Sparse matrix × dense multi-vector `Y = A X` for `b` interleaved
    /// input lanes (layout as `CsrMatrix::spmm_into`: `xs[c·b + j]`,
    /// `ys[r·b + j]`). Lane `j` is bit-identical to [`spmv_into`] of lane
    /// `j`'s column.
    ///
    /// [`spmv_into`]: BbsMatrix::spmv_into
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "bbs_spmm_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BBS, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmm_rows_into(xs, b, 0..self.rows, ys, 0);
        Ok(())
    }

    /// Allocating form of [`spmm_into`](BbsMatrix::spmm_into).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b`.
    pub fn spmm(&self, xs: &[f32], b: usize) -> Result<Vec<f32>, ShapeError> {
        let mut ys = vec![0.0f32; self.rows * b];
        self.spmm_into(xs, b, &mut ys)?;
        Ok(ys)
    }

    /// Precision-dispatched SpMV (numeric contracts as
    /// `BspcMatrix::spmv_prec_into`; int8 uses one scale per row with
    /// exact i32 accumulation, so results are bit-identical across SIMD
    /// variants and thread counts).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_prec_into(
        &self,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmv_into(x, y),
            Precision::F16 => self.spmv_f16_into(x, y),
            Precision::Int8 => self.spmv_i8_into(x, y),
        }
    }

    /// Precision-dispatched batched SpMM (int8 quantizes each lane with
    /// its own scale; lane `j` matches the serial int8 SpMV of lane `j`'s
    /// column exactly).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_prec_into(
        &self,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmm_into(xs, b, ys),
            Precision::F16 => self.spmm_f16_into(xs, b, ys),
            Precision::Int8 => self.spmm_i8_into(xs, b, ys),
        }
    }

    fn spmv_f16_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "bbs_spmv_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BBS, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmv_rows_f16_into(x, 0..self.rows, y, 0);
        Ok(())
    }

    fn spmv_i8_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "bbs_spmv_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BBS, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut act.0);
            self.spmv_rows_i8_into(&act.0, sx, 0..self.rows, y, 0);
        });
        Ok(())
    }

    fn spmm_f16_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "bbs_spmm_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BBS, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmm_rows_f16_into(xs, b, 0..self.rows, ys, 0);
        Ok(())
    }

    fn spmm_i8_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "bbs_spmm_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BBS, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let (xq, sxs) = (&mut act.0, &mut act.1);
            rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, xq, sxs);
            self.spmm_rows_i8_into(xq, sxs, b, 0..self.rows, ys, 0);
        });
        Ok(())
    }

    /// f32 SpMV over the row range `rows` (engine hook shared by the
    /// serial path and the executor's row chunks; output row `r` lands at
    /// `y[r - y_base]`, no tracing — the dispatching entry point counts).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; the public entry
    /// points validate shapes first.
    pub fn spmv_rows_into(&self, x: &[f32], rows: Range<usize>, y: &mut [f32], y_base: usize) {
        let v = rtm_tensor::simd::active_variant();
        let stride = self.row_stride();
        for r in rows {
            let (start, end) = (r * stride, (r + 1) * stride);
            y[r - y_base] = rtm_tensor::simd::indexed_dot_variant(
                v,
                &self.values[start..end],
                &self.col_idx[start..end],
                x,
            );
        }
    }

    /// f16 SpMV over the row range `rows` (conventions as
    /// [`spmv_rows_into`](BbsMatrix::spmv_rows_into)).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers.
    pub fn spmv_rows_f16_into(&self, x: &[f32], rows: Range<usize>, y: &mut [f32], y_base: usize) {
        let v = rtm_tensor::simd::active_variant();
        let stride = self.row_stride();
        TLS_KERNEL.with(|cell| {
            let (conv, _) = &mut *cell.borrow_mut();
            for r in rows {
                let (start, end) = (r * stride, (r + 1) * stride);
                rtm_tensor::f16::f16_bits_to_f32(&self.values_f16[start..end], conv);
                y[r - y_base] =
                    rtm_tensor::simd::indexed_dot_variant(v, conv, &self.col_idx[start..end], x);
            }
        });
    }

    /// Int8 SpMV over the row range `rows` on pre-quantized activations
    /// (the caller quantizes once so parallel chunks share the same
    /// codes).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers.
    pub fn spmv_rows_i8_into(
        &self,
        xq: &[i8],
        sx: f32,
        rows: Range<usize>,
        y: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        let stride = self.row_stride();
        for r in rows {
            let (start, end) = (r * stride, (r + 1) * stride);
            let acc = rtm_tensor::simd_i8::indexed_dot_i8_variant(
                v,
                &self.values_i8[start..end],
                &self.col_idx[start..end],
                xq,
            );
            // `sx · (acc · scale)` — the association order of the fused
            // batched register tile, so lane results stay bit-identical.
            y[r - y_base] = sx * (acc as f32 * self.scales_i8[r]);
        }
    }

    /// f32 batched SpMM over the row range `rows` (engine hook; output row
    /// `r` lands at `ys[(r - y_base) · b ..]`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; `b` must be positive.
    pub fn spmm_rows_into(
        &self,
        xs: &[f32],
        b: usize,
        rows: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        let stride = self.row_stride();
        for r in rows {
            let (start, end) = (r * stride, (r + 1) * stride);
            let o = r - y_base;
            rtm_tensor::simd::indexed_dot_batch_variant(
                v,
                &self.values[start..end],
                &self.col_idx[start..end],
                xs,
                b,
                &mut ys[o * b..(o + 1) * b],
            );
        }
    }

    /// f16 batched SpMM over the row range `rows` (engine hook).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; `b` must be positive.
    pub fn spmm_rows_f16_into(
        &self,
        xs: &[f32],
        b: usize,
        rows: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        let stride = self.row_stride();
        TLS_KERNEL.with(|cell| {
            let (conv, _) = &mut *cell.borrow_mut();
            for r in rows {
                let (start, end) = (r * stride, (r + 1) * stride);
                rtm_tensor::f16::f16_bits_to_f32(&self.values_f16[start..end], conv);
                let o = r - y_base;
                rtm_tensor::simd::indexed_dot_batch_variant(
                    v,
                    conv,
                    &self.col_idx[start..end],
                    xs,
                    b,
                    &mut ys[o * b..(o + 1) * b],
                );
            }
        });
    }

    /// Int8 batched SpMM over the row range `rows` on pre-quantized
    /// lane-major activations with per-lane scales.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; `sxs.len()` must
    /// equal `b` and `b` must be positive.
    pub fn spmm_rows_i8_into(
        &self,
        xq: &[i8],
        sxs: &[f32],
        b: usize,
        rows: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        assert_eq!(sxs.len(), b, "one activation scale per lane");
        let v = rtm_tensor::simd::active_variant();
        let stride = self.row_stride();
        TLS_KERNEL.with(|cell| {
            let (_, gi8) = &mut *cell.borrow_mut();
            for r in rows {
                let (start, end) = (r * stride, (r + 1) * stride);
                // Gather this row's activation lanes once, lane-major.
                gi8.clear();
                for &c in &self.col_idx[start..end] {
                    let c = c as usize;
                    gi8.extend_from_slice(&xq[c * b..(c + 1) * b]);
                }
                // A BBS row is one uniform slab under a single scale, so
                // the whole row is one segment of the fused register tile.
                let seg = [stride as u32];
                let scales = [self.scales_i8[r]];
                let o = r - y_base;
                rtm_tensor::simd_i8::row_block_dots_batch_i8(
                    v,
                    &self.values_i8[start..end],
                    gi8,
                    b,
                    &seg,
                    &scales,
                    sxs,
                    &mut ys[o * b..(o + 1) * b],
                );
            }
        });
    }

    /// Expands back to a dense matrix. Padded slots (value `0.0`) are
    /// skipped, so a padding column that collides with a stored entry
    /// cannot clobber it.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        let stride = self.row_stride();
        for r in 0..self.rows {
            for i in r * stride..(r + 1) * stride {
                let v = self.values[i];
                if v != 0.0 {
                    m[(r, self.col_idx[i] as usize)] = v;
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::gemm;

    fn example() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0, 0.0, 5.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 4.0, 6.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_dense_roundtrip_and_balance() {
        let d = example();
        let m = BbsMatrix::from_dense(&d, 2).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 6);
        assert_eq!(m.num_banks(), 2);
        assert_eq!(m.bank_width(), 3);
        // Row 2 has 2 nonzeros in each bank → bank_nnz = 2, every row
        // stores exactly 2 banks × 2 slots.
        assert_eq!(m.bank_nnz(), 2);
        assert_eq!(m.row_stride(), 4);
        assert_eq!(m.stored_len(), 12);
        assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn bank_partition_validation() {
        let d = example();
        assert!(BbsMatrix::from_dense(&d, 0).is_err());
        assert!(BbsMatrix::from_dense(&d, 7).is_err());
        assert!(BbsMatrix::from_dense(&d, 6).is_ok());
        // A 0-column matrix accepts one (empty) bank.
        assert!(BbsMatrix::from_dense(&Matrix::zeros(2, 0), 1).is_ok());
    }

    #[test]
    fn spmv_matches_dense() {
        let d = example();
        let m = BbsMatrix::from_dense(&d, 3).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let want = gemm::gemv(&d, &x).unwrap();
        let got = m.spmv(&x).unwrap();
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-5, "{w} vs {g}");
        }
        assert!(m.spmv(&[1.0]).is_err());
    }

    #[test]
    fn from_parts_validation() {
        // Good: 2 rows × 1 bank × 1 slot.
        assert!(BbsMatrix::from_parts(2, 2, 1, 1, vec![0, 1], vec![1.0, 2.0]).is_ok());
        // Wrong slot count.
        assert!(BbsMatrix::from_parts(2, 2, 1, 1, vec![0], vec![1.0]).is_err());
        // Mismatched idx/value lengths.
        assert!(BbsMatrix::from_parts(2, 2, 1, 1, vec![0, 1], vec![1.0]).is_err());
        // Column out of range.
        assert!(BbsMatrix::from_parts(2, 2, 1, 1, vec![0, 5], vec![1.0, 2.0]).is_err());
        // Zero banks.
        assert!(BbsMatrix::from_parts(2, 2, 0, 1, vec![], vec![]).is_err());
    }

    #[test]
    fn int8_sidecar_install() {
        let m = BbsMatrix::from_dense(&example(), 2).unwrap();
        let codes = m.values_i8().to_vec();
        let scales = m.int8_scales().to_vec();
        let m2 = m.clone().with_int8_sidecar(codes, scales).unwrap();
        assert_eq!(m2, m);
        assert!(m
            .clone()
            .with_int8_sidecar(vec![0; 1], vec![1.0; 3])
            .is_err());
        assert!(m.with_int8_sidecar(vec![0; 12], vec![1.0]).is_err());
    }

    #[test]
    fn spmm_lanes_match_spmv_columns() {
        let m = BbsMatrix::from_dense(&example(), 2).unwrap();
        for b in [1usize, 2, 4, 7, 8, 9] {
            let xs: Vec<f32> = (0..6 * b).map(|i| (i as f32 * 0.31).cos()).collect();
            let mut ys = vec![f32::NAN; 3 * b];
            m.spmm_into(&xs, b, &mut ys).unwrap();
            assert_eq!(m.spmm(&xs, b).unwrap(), ys);
            for j in 0..b {
                let col: Vec<f32> = (0..6).map(|c| xs[c * b + j]).collect();
                let want = m.spmv(&col).unwrap();
                for r in 0..3 {
                    assert_eq!(ys[r * b + j], want[r], "b={b} lane {j} row {r}");
                }
            }
        }
        assert!(m.spmm_into(&[0.0; 3], 2, &mut [0.0; 6]).is_err());
        assert!(m.spmm_into(&[0.0; 12], 2, &mut [0.0; 5]).is_err());
    }

    #[test]
    fn f16_kernels_match_f32_on_rounded_values() {
        let mut rng = rtm_tensor::init::rng_from_seed(51);
        let d = rtm_tensor::init::uniform(20, 14, -1.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                rtm_tensor::f16::quantize_f16(v)
            }
        });
        let m = BbsMatrix::from_dense(&d, 4).unwrap();
        let x: Vec<f32> = (0..14).map(|i| (i as f32 * 0.43).sin()).collect();
        let want = m.spmv(&x).unwrap();
        let mut got = vec![f32::NAN; 20];
        m.spmv_prec_into(Precision::F16, &x, &mut got).unwrap();
        assert_eq!(got, want);
        let b = 4usize;
        let xs: Vec<f32> = (0..14 * b).map(|i| (i as f32 * 0.19).cos()).collect();
        let mut ys = vec![f32::NAN; 20 * b];
        m.spmm_prec_into(Precision::F16, &xs, b, &mut ys).unwrap();
        let mut want_m = vec![0.0f32; 20 * b];
        m.spmm_into(&xs, b, &mut want_m).unwrap();
        assert_eq!(ys, want_m);
    }

    #[test]
    fn i8_kernels_bounded_and_lane_consistent() {
        let mut rng = rtm_tensor::init::rng_from_seed(62);
        let d = rtm_tensor::init::uniform(19, 13, -1.5, 1.5, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                v
            }
        });
        let m = BbsMatrix::from_dense(&d, 3).unwrap();
        assert_eq!(m.int8_scales().len(), 19);
        let x: Vec<f32> = (0..13).map(|i| (i as f32 * 0.61).sin()).collect();
        let want = gemm::gemv(&d, &x).unwrap();
        let mut got = vec![0.0f32; 19];
        m.spmv_prec_into(Precision::Int8, &x, &mut got).unwrap();
        let wmax = d.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let xmax = x.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let smax = m.int8_scales().iter().fold(0.0f32, |a, v| a.max(*v));
        let sx = xmax / 127.0;
        let bound = 13.0 * (0.5 * smax * xmax + 0.5 * sx * wmax + 0.25 * smax * sx) + 1e-4;
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= bound, "{w} vs {g} (bound {bound})");
        }
        // Batched int8 lanes are exactly the serial int8 columns.
        for b in [1usize, 3, 6, 8, 11] {
            let xs: Vec<f32> = (0..13 * b).map(|i| (i as f32 * 0.83).cos()).collect();
            let mut ys = vec![f32::NAN; 19 * b];
            m.spmm_prec_into(Precision::Int8, &xs, b, &mut ys).unwrap();
            for j in 0..b {
                let col: Vec<f32> = (0..13).map(|c| xs[c * b + j]).collect();
                let mut yy = vec![0.0f32; 19];
                m.spmv_prec_into(Precision::Int8, &col, &mut yy).unwrap();
                for r in 0..19 {
                    assert_eq!(ys[r * b + j], yy[r], "b={b} lane {j} row {r}");
                }
            }
        }
    }

    /// Randomized dense↔BBS round-trip across bank counts.
    #[test]
    fn prop_roundtrip() {
        for seed in 0u64..300 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..12);
            let cols = rng.gen_range(1usize..12);
            let banks = rng.gen_range(1usize..5).min(cols);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.5 {
                    0.0
                } else {
                    v
                }
            });
            let m = BbsMatrix::from_dense(&dense, banks).unwrap();
            assert_eq!(m.to_dense(), dense, "seed {seed}");
            assert_eq!(m.stored_len(), rows * banks * m.bank_nnz(), "seed {seed}");
        }
    }

    /// Randomized SpMV-vs-GEMV agreement.
    #[test]
    fn prop_spmv_equals_gemv() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..10);
            let cols = rng.gen_range(1usize..10);
            let banks = rng.gen_range(1usize..4).min(cols);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.3 {
                    0.0
                } else {
                    v
                }
            });
            let x: Vec<f32> = (0..cols).map(|i| (i as f32).sin()).collect();
            let want = gemm::gemv(&dense, &x).unwrap();
            let got = BbsMatrix::from_dense(&dense, banks)
                .unwrap()
                .spmv(&x)
                .unwrap();
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-4, "seed {seed}");
            }
        }
    }
}
