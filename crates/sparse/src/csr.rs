//! Compressed Sparse Row storage.
//!
//! CSR is the format the paper's unstructured baselines (ESE) must use: every
//! nonzero carries an explicit `u32` column index, and each SpMV row walk
//! performs an indirect gather through those indices — the "decoding of each
//! stored index" overhead §II-B-a calls out.

use crate::footprint::Precision;
use rtm_tensor::{Matrix, ShapeError};
use std::cell::RefCell;
use std::ops::Range;

// Thread-local scratch for the quantized CSR kernels (see `bspc.rs` for the
// rationale — worker threads get independent buffers, so the steady state is
// allocation-free and row chunks can run concurrently).
thread_local! {
    static TLS_ACT: RefCell<(Vec<i8>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    static TLS_KERNEL: RefCell<(Vec<f32>, Vec<i8>, Vec<i32>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants (maintained by construction, checked by `debug_assert`s):
/// `row_ptr.len() == rows + 1`, `row_ptr` is non-decreasing,
/// `row_ptr[rows] == values.len() == col_idx.len()`, and column indices are
/// strictly increasing within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
    /// `values` as raw f16 bit patterns (fp16 weight-storage sidecar).
    values_f16: Vec<u16>,
    /// `values` as int8 codes under the per-row-block scales.
    values_i8: Vec<i8>,
    /// Symmetric int8 scale per block of [`CsrMatrix::ROW_BLOCK`] rows.
    scales_i8: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, keeping entries that are not
    /// exactly zero.
    pub fn from_dense(dense: &Matrix) -> CsrMatrix {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        let mut m = CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
            values_f16: Vec::new(),
            values_i8: Vec::new(),
            scales_i8: Vec::new(),
        };
        m.build_sidecars();
        m
    }

    /// Rows sharing one symmetric int8 scale. CSR has no stripe structure to
    /// hang scales on, so the int8 sidecar uses fixed blocks of 8 rows — the
    /// same granularity ESE-style row batching uses.
    pub const ROW_BLOCK: usize = 8;

    /// Rebuilds the f16 and int8 sidecars from `values` (deterministic, so
    /// the `PartialEq` derive and serialization round trips are unaffected).
    fn build_sidecars(&mut self) {
        self.values_f16 = rtm_tensor::f16::f32_to_f16_bits(&self.values);
        let nb = self.rows.div_ceil(Self::ROW_BLOCK);
        let mut max_abs = vec![0.0f32; nb];
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let m = &mut max_abs[r / Self::ROW_BLOCK];
            for &v in &self.values[start..end] {
                *m = m.max(v.abs());
            }
        }
        self.scales_i8 = max_abs
            .iter()
            .map(|&m| {
                if m > 0.0 && m.is_finite() {
                    m / 127.0
                } else {
                    1.0
                }
            })
            .collect();
        self.values_i8 = vec![0; self.values.len()];
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let scale = self.scales_i8[r / Self::ROW_BLOCK];
            for i in start..end {
                self.values_i8[i] = (self.values[i] / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
    }

    /// Builds from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the arrays are inconsistent (wrong `row_ptr`
    /// length, mismatched value/index lengths, out-of-range columns, or a
    /// decreasing `row_ptr`).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<CsrMatrix, ShapeError> {
        let bad = || ShapeError {
            op: "csr_from_parts",
            lhs: (rows, cols),
            rhs: (row_ptr.len(), values.len()),
        };
        if row_ptr.len() != rows + 1
            || col_idx.len() != values.len()
            || row_ptr.last().copied().unwrap_or(0) as usize != values.len()
        {
            return Err(bad());
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad());
        }
        if col_idx.iter().any(|&c| c as usize >= cols) && !values.is_empty() {
            return Err(bad());
        }
        let mut m = CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
            values_f16: Vec::new(),
            values_i8: Vec::new(),
            scales_i8: Vec::new(),
        };
        m.build_sidecars();
        Ok(m)
    }

    /// The nonzero values as raw f16 bit patterns (same layout as
    /// [`CsrMatrix::values`]).
    pub fn values_f16(&self) -> &[u16] {
        &self.values_f16
    }

    /// The nonzero values as int8 codes under [`CsrMatrix::int8_scales`].
    pub fn values_i8(&self) -> &[i8] {
        &self.values_i8
    }

    /// Symmetric int8 scale per block of [`CsrMatrix::ROW_BLOCK`] rows.
    pub fn int8_scales(&self) -> &[f32] {
        &self.scales_i8
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index of every nonzero, row-major.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value of every nonzero, row-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Nonzero count of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row out of bounds");
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// The `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(r < self.rows, "row out of bounds");
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        self.col_idx[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError {
                op: "csr_spmv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        self.spmv_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free SpMV into a caller-provided buffer — the hot-loop
    /// form (serial and parallel runtimes reuse the output across calls).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csr_spmv_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSR, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        // One indexed dot per row through the simd kernel layer (AVX2 runs
        // the column gather in-register); the variant is hoisted so every
        // row of a call uses the same realization.
        let v = rtm_tensor::simd::active_variant();
        for (r, yr) in y.iter_mut().enumerate() {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            *yr = rtm_tensor::simd::indexed_dot_variant(
                v,
                &self.values[start..end],
                &self.col_idx[start..end],
                x,
            );
        }
        Ok(())
    }

    /// Sparse matrix × dense multi-vector `Y = A X` for `b` interleaved
    /// input lanes (batched SpMM). `xs` holds element `c` of lane `j` at
    /// `xs[c·b + j]`; `ys` receives row `r` of lane `j` at `ys[r·b + j]`.
    ///
    /// Each row's column indices are decoded **once** and applied to all
    /// `b` lanes — the index-traversal cost §II-B-a identifies is amortized
    /// `b`×. Lane `j` of the result is bit-identical to [`spmv_into`] of
    /// lane `j`'s column under the same ambient policy (see
    /// `rtm_tensor::simd::indexed_dot_batch_variant`).
    ///
    /// [`spmv_into`]: CsrMatrix::spmv_into
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "csr_spmm_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSR, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        let v = rtm_tensor::simd::active_variant();
        for (r, yr) in ys.chunks_exact_mut(b).enumerate() {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            rtm_tensor::simd::indexed_dot_batch_variant(
                v,
                &self.values[start..end],
                &self.col_idx[start..end],
                xs,
                b,
                yr,
            );
        }
        Ok(())
    }

    /// Allocating form of [`spmm_into`](CsrMatrix::spmm_into).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b`.
    pub fn spmm(&self, xs: &[f32], b: usize) -> Result<Vec<f32>, ShapeError> {
        let mut ys = vec![0.0f32; self.rows * b];
        self.spmm_into(xs, b, &mut ys)?;
        Ok(ys)
    }

    /// Precision-dispatched SpMV (see `BspcMatrix::spmv_prec_into` for the
    /// numeric contracts; CSR int8 uses one scale per
    /// [`CsrMatrix::ROW_BLOCK`] rows and a scalar gathered dot with exact
    /// i32 accumulation, so results are bit-identical across SIMD variants
    /// and thread counts).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_prec_into(
        &self,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmv_into(x, y),
            Precision::F16 => self.spmv_f16_into(x, y),
            Precision::Int8 => self.spmv_i8_into(x, y),
        }
    }

    /// Precision-dispatched batched SpMM (lane layout as
    /// [`spmm_into`](CsrMatrix::spmm_into); int8 quantizes each lane with
    /// its own scale, so lane `j` matches the serial int8 SpMV of lane `j`'s
    /// column exactly).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_prec_into(
        &self,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmm_into(xs, b, ys),
            Precision::F16 => self.spmm_f16_into(xs, b, ys),
            Precision::Int8 => self.spmm_i8_into(xs, b, ys),
        }
    }

    fn spmv_f16_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csr_spmv_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSR, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmv_rows_f16_into(x, 0..self.rows, y, 0);
        Ok(())
    }

    fn spmv_i8_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csr_spmv_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSR, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut act.0);
            self.spmv_rows_i8_into(&act.0, sx, 0..self.rows, y, 0);
        });
        Ok(())
    }

    fn spmm_f16_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "csr_spmm_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSR, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmm_rows_f16_into(xs, b, 0..self.rows, ys, 0);
        Ok(())
    }

    fn spmm_i8_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "csr_spmm_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSR, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let (xq, sxs) = (&mut act.0, &mut act.1);
            rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, xq, sxs);
            self.spmm_rows_i8_into(xq, sxs, b, 0..self.rows, ys, 0);
        });
        Ok(())
    }

    /// f16 SpMV over the row range `rows` (engine hook shared by the serial
    /// path and the executor's row chunks; output row `r` lands at
    /// `y[r - y_base]`, no tracing — the dispatching entry point counts).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; the public entry points
    /// validate shapes first.
    pub fn spmv_rows_f16_into(&self, x: &[f32], rows: Range<usize>, y: &mut [f32], y_base: usize) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (conv, _, _) = &mut *cell.borrow_mut();
            for r in rows {
                let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                rtm_tensor::f16::f16_bits_to_f32(&self.values_f16[start..end], conv);
                y[r - y_base] =
                    rtm_tensor::simd::indexed_dot_variant(v, conv, &self.col_idx[start..end], x);
            }
        });
    }

    /// Int8 SpMV over the row range `rows` on pre-quantized activations
    /// (conventions as [`spmv_rows_f16_into`](CsrMatrix::spmv_rows_f16_into);
    /// the caller quantizes once so parallel chunks share the same codes).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers.
    pub fn spmv_rows_i8_into(
        &self,
        xq: &[i8],
        sx: f32,
        rows: Range<usize>,
        y: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        for r in rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let acc = rtm_tensor::simd_i8::indexed_dot_i8_variant(
                v,
                &self.values_i8[start..end],
                &self.col_idx[start..end],
                xq,
            );
            y[r - y_base] = sx * self.scales_i8[r / Self::ROW_BLOCK] * acc as f32;
        }
    }

    /// f16 batched SpMM over the row range `rows` (engine hook; output row
    /// `r` lands at `ys[(r - y_base) · b ..]`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; `b` must be positive.
    pub fn spmm_rows_f16_into(
        &self,
        xs: &[f32],
        b: usize,
        rows: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (conv, _, _) = &mut *cell.borrow_mut();
            for r in rows {
                let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                rtm_tensor::f16::f16_bits_to_f32(&self.values_f16[start..end], conv);
                let o = r - y_base;
                rtm_tensor::simd::indexed_dot_batch_variant(
                    v,
                    conv,
                    &self.col_idx[start..end],
                    xs,
                    b,
                    &mut ys[o * b..(o + 1) * b],
                );
            }
        });
    }

    /// Int8 batched SpMM over the row range `rows` on pre-quantized
    /// lane-major activations with per-lane scales.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or short buffers; `sxs.len()` must equal
    /// `b` and `b` must be positive.
    pub fn spmm_rows_i8_into(
        &self,
        xq: &[i8],
        sxs: &[f32],
        b: usize,
        rows: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        assert_eq!(sxs.len(), b, "one activation scale per lane");
        TLS_KERNEL.with(|cell| {
            let (_, gi8, acc) = &mut *cell.borrow_mut();
            acc.resize(b, 0);
            for r in rows {
                let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                // Gather this row's activation lanes once, lane-major.
                gi8.clear();
                for &c in &self.col_idx[start..end] {
                    let c = c as usize;
                    gi8.extend_from_slice(&xq[c * b..(c + 1) * b]);
                }
                acc.fill(0);
                rtm_tensor::simd_i8::dot_batch_i8_accumulate(
                    &self.values_i8[start..end],
                    gi8,
                    b,
                    acc,
                );
                let scale = self.scales_i8[r / Self::ROW_BLOCK];
                let o = r - y_base;
                for (j, (&a, &sx)) in acc.iter().zip(sxs.iter()).enumerate() {
                    ys[o * b + j] = sx * scale * a as f32;
                }
            }
        });
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] = v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::gemm;

    fn example() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = example();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn row_structure() {
        let csr = CsrMatrix::from_dense(&example());
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 2);
        let entries: Vec<_> = csr.row_entries(2).collect();
        assert_eq!(entries, vec![(1, 3.0), (3, 4.0)]);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = example();
        let csr = CsrMatrix::from_dense(&d);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let want = gemm::gemv(&d, &x).unwrap();
        assert_eq!(csr.spmv(&x).unwrap(), want);
    }

    #[test]
    fn spmv_shape_error() {
        let csr = CsrMatrix::from_dense(&example());
        assert!(csr.spmv(&[1.0]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(0, 0));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.spmv(&[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn all_zero_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(3, 3));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.spmv(&[1.0, 1.0, 1.0]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn from_parts_validation() {
        // Good.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // Wrong row_ptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Mismatched idx/value lengths.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        // Decreasing row_ptr.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(CsrMatrix::from_parts(2, 2, vec![2, 0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn spmm_lanes_match_spmv_columns() {
        let csr = CsrMatrix::from_dense(&example());
        for b in [1usize, 2, 4, 7, 8, 9] {
            let xs: Vec<f32> = (0..4 * b).map(|i| (i as f32 * 0.31).cos()).collect();
            let mut ys = vec![f32::NAN; 3 * b];
            csr.spmm_into(&xs, b, &mut ys).unwrap();
            assert_eq!(csr.spmm(&xs, b).unwrap(), ys);
            for j in 0..b {
                let col: Vec<f32> = (0..4).map(|c| xs[c * b + j]).collect();
                let want = csr.spmv(&col).unwrap();
                for r in 0..3 {
                    assert_eq!(ys[r * b + j], want[r], "b={b} lane {j} row {r}");
                }
            }
        }
        // Shape errors.
        assert!(csr.spmm_into(&[0.0; 3], 2, &mut [0.0; 6]).is_err());
        assert!(csr.spmm_into(&[0.0; 8], 2, &mut [0.0; 5]).is_err());
    }

    #[test]
    fn f16_kernels_match_f32_on_rounded_values() {
        let mut rng = rtm_tensor::init::rng_from_seed(51);
        let d = rtm_tensor::init::uniform(20, 14, -1.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                rtm_tensor::f16::quantize_f16(v)
            }
        });
        let m = CsrMatrix::from_dense(&d);
        let x: Vec<f32> = (0..14).map(|i| (i as f32 * 0.43).sin()).collect();
        let want = m.spmv(&x).unwrap();
        let mut got = vec![f32::NAN; 20];
        m.spmv_prec_into(Precision::F16, &x, &mut got).unwrap();
        assert_eq!(got, want);
        let b = 4usize;
        let xs: Vec<f32> = (0..14 * b).map(|i| (i as f32 * 0.19).cos()).collect();
        let mut ys = vec![f32::NAN; 20 * b];
        m.spmm_prec_into(Precision::F16, &xs, b, &mut ys).unwrap();
        let mut want_m = vec![0.0f32; 20 * b];
        m.spmm_into(&xs, b, &mut want_m).unwrap();
        assert_eq!(ys, want_m);
    }

    #[test]
    fn i8_kernels_bounded_and_lane_consistent() {
        let mut rng = rtm_tensor::init::rng_from_seed(62);
        let d = rtm_tensor::init::uniform(19, 13, -1.5, 1.5, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                v
            }
        });
        let m = CsrMatrix::from_dense(&d);
        assert_eq!(
            m.int8_scales().len(),
            19usize.div_ceil(CsrMatrix::ROW_BLOCK)
        );
        let x: Vec<f32> = (0..13).map(|i| (i as f32 * 0.61).sin()).collect();
        let want = gemm::gemv(&d, &x).unwrap();
        let mut got = vec![0.0f32; 19];
        m.spmv_prec_into(Precision::Int8, &x, &mut got).unwrap();
        let wmax = d.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let xmax = x.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let smax = m.int8_scales().iter().fold(0.0f32, |a, v| a.max(*v));
        let sx = xmax / 127.0;
        let bound = 13.0 * (0.5 * smax * xmax + 0.5 * sx * wmax + 0.25 * smax * sx) + 1e-4;
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= bound, "{w} vs {g} (bound {bound})");
        }
        // Batched int8 lanes are exactly the serial int8 columns.
        for b in [1usize, 3, 6] {
            let xs: Vec<f32> = (0..13 * b).map(|i| (i as f32 * 0.83).cos()).collect();
            let mut ys = vec![f32::NAN; 19 * b];
            m.spmm_prec_into(Precision::Int8, &xs, b, &mut ys).unwrap();
            for j in 0..b {
                let col: Vec<f32> = (0..13).map(|c| xs[c * b + j]).collect();
                let mut yy = vec![0.0f32; 19];
                m.spmv_prec_into(Precision::Int8, &col, &mut yy).unwrap();
                for r in 0..19 {
                    assert_eq!(ys[r * b + j], yy[r], "b={b} lane {j} row {r}");
                }
            }
        }
    }

    /// Randomized (seed-driven) dense↔CSR round-trip.
    #[test]
    fn prop_roundtrip() {
        for seed in 0u64..300 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..12);
            let cols = rng.gen_range(1usize..12);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.5 {
                    0.0
                } else {
                    v
                }
            });
            let csr = CsrMatrix::from_dense(&dense);
            assert_eq!(csr.to_dense(), dense, "seed {seed}");
            assert_eq!(csr.nnz(), dense.count_nonzero(), "seed {seed}");
        }
    }

    /// Randomized SpMV-vs-GEMV agreement.
    #[test]
    fn prop_spmv_equals_gemv() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..10);
            let cols = rng.gen_range(1usize..10);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.3 {
                    0.0
                } else {
                    v
                }
            });
            let x: Vec<f32> = (0..cols).map(|i| (i as f32).sin()).collect();
            let want = gemm::gemv(&dense, &x).unwrap();
            let got = CsrMatrix::from_dense(&dense).spmv(&x).unwrap();
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-4, "seed {seed}");
            }
        }
    }
}
