//! BSPC — Block-based Structured Pruning Compact format (paper §IV-B-c).
//!
//! After BSP pruning, a weight matrix has two kinds of regularity a generic
//! CSR cannot exploit:
//!
//! 1. **Shared column patterns.** Step 1 prunes whole *columns within each
//!    (row-stripe × column-block)*, so every surviving row of a stripe reads
//!    exactly the same input elements. CSR would store those column indices
//!    once per row; BSPC stores them once per *stripe-block*.
//! 2. **Whole pruned rows.** Step 2 removes rows globally; BSPC keeps a list
//!    of surviving rows and stores nothing at all for the removed ones.
//!
//! The value array is dense *within the kept pattern*: row `r` of stripe `s`
//! stores its weights at the stripe's kept columns back-to-back, so the SpMV
//! inner loop is a unit-stride walk with one shared index stream per stripe —
//! this is what enables the compiler's redundant-load elimination.
//!
//! BSPC also carries the matrix-reorder permutation (see
//! `rtm_compiler::reorder`) so the runtime can match the reordered rows back
//! to the original output ordering, as the paper specifies.

use crate::footprint::Precision;
use rtm_tensor::{Matrix, ShapeError};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::ops::Range;

// Thread-local scratch for the quantized kernels: activation codes for the
// serial entry points, and gather/convert/accumulator buffers for the
// row-range kernels. Worker-pool threads each get their own set, so the
// steady state of every quantized kernel is allocation-free and the
// parallel engine can run row-range chunks concurrently without sharing.
thread_local! {
    static TLS_ACT: RefCell<(Vec<i8>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    static TLS_KERNEL: RefCell<KernelScratch> = const { RefCell::new(KernelScratch::new()) };
}

struct KernelScratch {
    /// Gathered int8 activations (stripe-local, serial or lane-major).
    gi8: Vec<i8>,
    /// Gathered f32 activations (stripe-local, serial or lane-major).
    gf32: Vec<f32>,
    /// One row's f16 values converted to f32.
    conv: Vec<f32>,
    /// Per-block segment lengths of the current stripe (int8 row kernels).
    seg: Vec<u32>,
}

impl KernelScratch {
    const fn new() -> KernelScratch {
        KernelScratch {
            gi8: Vec::new(),
            gf32: Vec::new(),
            conv: Vec::new(),
            seg: Vec::new(),
        }
    }
}

/// One kept row's contiguous value segment belonging to a single
/// (stripe, block) — the granularity the int8 scales live at.
struct BlockSegment<'a> {
    /// Flat stripe-block index `stripe * num_blocks + block`.
    block: usize,
    /// Segment start inside the packed value array.
    offset: usize,
    /// The segment's values.
    values: &'a [f32],
}

/// Error building a [`BspcMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BspcError {
    /// `num_stripes` or `num_blocks` was zero.
    ZeroPartition,
    /// More stripes than rows or more blocks than columns.
    PartitionTooFine {
        /// Requested (stripes, blocks).
        requested: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// A supplied permutation was not a valid permutation of `0..rows`.
    BadPermutation,
    /// A supplied int8 sidecar did not match the matrix shape (one code per
    /// stored value, one scale per stripe-block).
    SidecarMismatch,
}

impl fmt::Display for BspcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BspcError::ZeroPartition => write!(f, "stripe and block counts must be positive"),
            BspcError::PartitionTooFine { requested, shape } => write!(
                f,
                "partition {}x{} too fine for {}x{} matrix",
                requested.0, requested.1, shape.0, shape.1
            ),
            BspcError::BadPermutation => write!(f, "row permutation is not a bijection"),
            BspcError::SidecarMismatch => {
                write!(f, "int8 sidecar does not match the stored pattern")
            }
        }
    }
}

impl Error for BspcError {}

/// A sparse matrix in the Block-based Structured Pruning Compact format.
#[derive(Debug, Clone, PartialEq)]
pub struct BspcMatrix {
    rows: usize,
    cols: usize,
    num_stripes: usize,
    num_blocks: usize,
    /// Global indices of surviving rows, ascending.
    kept_rows: Vec<u32>,
    /// Kept absolute column indices per `stripe * num_blocks + block`,
    /// ascending within each entry.
    block_cols: Vec<Vec<u32>>,
    /// Flattened kept columns per stripe (concatenation of the stripe's
    /// block column lists) — the shared index stream of the SpMV.
    stripe_cols: Vec<Vec<u32>>,
    /// Offset of each kept row's value run inside `values`.
    row_offsets: Vec<u32>,
    /// Values of each kept row at its stripe's kept columns, row after row.
    values: Vec<f32>,
    /// Optional reorder permutation: `reorder[i]` is the *original* row index
    /// executed at position `i`.
    reorder: Option<Vec<u32>>,
    /// `values` as raw f16 bit patterns (fp16 weight-storage sidecar).
    values_f16: Vec<u16>,
    /// `values` as int8 codes under the per-(stripe, block) scales.
    values_i8: Vec<i8>,
    /// Symmetric int8 scale per `stripe * num_blocks + block`.
    scales_i8: Vec<f32>,
}

impl BspcMatrix {
    /// Builds a BSPC matrix from a dense (pruned) matrix.
    ///
    /// The kept pattern is detected conservatively: a column survives in a
    /// stripe-block iff *any* row of the stripe is nonzero there, and a row
    /// survives iff it has any nonzero. A matrix that is not actually
    /// BSP-structured still round-trips exactly, it just stores explicit
    /// zeros inside the detected pattern (quantified by
    /// [`Footprint`](crate::Footprint)).
    ///
    /// Stripes and blocks use ceiling division, so the final stripe/block may
    /// be smaller when the dimensions do not divide evenly.
    ///
    /// # Errors
    ///
    /// Returns [`BspcError`] when the partition is empty or finer than the
    /// matrix.
    pub fn from_dense(
        dense: &Matrix,
        num_stripes: usize,
        num_blocks: usize,
    ) -> Result<BspcMatrix, BspcError> {
        if num_stripes == 0 || num_blocks == 0 {
            return Err(BspcError::ZeroPartition);
        }
        let (rows, cols) = dense.shape();
        if num_stripes > rows.max(1) || num_blocks > cols.max(1) {
            return Err(BspcError::PartitionTooFine {
                requested: (num_stripes, num_blocks),
                shape: (rows, cols),
            });
        }

        let stripe_h = rows.div_ceil(num_stripes);
        let block_w = cols.div_ceil(num_blocks);

        // Detect kept columns per stripe-block.
        let mut block_cols = vec![Vec::new(); num_stripes * num_blocks];
        for s in 0..num_stripes {
            let r0 = s * stripe_h;
            let r1 = ((s + 1) * stripe_h).min(rows);
            for b in 0..num_blocks {
                let c0 = b * block_w;
                let c1 = ((b + 1) * block_w).min(cols);
                let kept = &mut block_cols[s * num_blocks + b];
                for c in c0..c1 {
                    let mut any = false;
                    for r in r0..r1 {
                        if dense[(r, c)] != 0.0 {
                            any = true;
                            break;
                        }
                    }
                    if any {
                        kept.push(c as u32);
                    }
                }
            }
        }

        // Stripe-level flattened column stream.
        let stripe_cols: Vec<Vec<u32>> = (0..num_stripes)
            .map(|s| {
                let mut v = Vec::new();
                for b in 0..num_blocks {
                    v.extend_from_slice(&block_cols[s * num_blocks + b]);
                }
                v
            })
            .collect();

        // Kept rows and packed values.
        let mut kept_rows = Vec::new();
        let mut row_offsets = Vec::new();
        let mut values = Vec::new();
        for r in 0..rows {
            if dense.row(r).iter().any(|&v| v != 0.0) {
                let s = r / stripe_h;
                kept_rows.push(r as u32);
                row_offsets.push(values.len() as u32);
                let row = dense.row(r);
                for &c in &stripe_cols[s] {
                    values.push(row[c as usize]);
                }
            }
        }

        let mut m = BspcMatrix {
            rows,
            cols,
            num_stripes,
            num_blocks,
            kept_rows,
            block_cols,
            stripe_cols,
            row_offsets,
            values,
            reorder: None,
            values_f16: Vec::new(),
            values_i8: Vec::new(),
            scales_i8: Vec::new(),
        };
        m.build_sidecars();
        Ok(m)
    }

    /// Rebuilds the f16 and int8 storage sidecars from `values`.
    ///
    /// The derivation is deterministic — sidecars are a pure function of the
    /// structural fields plus `values` — so two matrices with equal values
    /// always compare equal, and the f32 wire round trip stays bit-exact.
    ///
    /// Int8 uses one symmetric scale per (stripe, block): within each kept
    /// row, the value run splits into contiguous block segments (the stripe
    /// column stream is the concatenation of its block lists), and every
    /// segment of block `(s, b)` shares `scale = max|v| / 127` over the whole
    /// stripe-block. All-zero blocks get scale 1.0.
    fn build_sidecars(&mut self) {
        self.values_f16 = rtm_tensor::f16::f32_to_f16_bits(&self.values);
        let nb = self.num_blocks;
        let mut max_abs = vec![0.0f32; self.num_stripes * nb];
        self.for_each_block_segment(|sb, _| {
            let m = &mut max_abs[sb.block];
            for &v in sb.values {
                // f32::max ignores a NaN operand, so non-finite weights
                // (rejected later by model validation anyway) cannot poison
                // the scale.
                *m = m.max(v.abs());
            }
        });
        let scales: Vec<f32> = max_abs
            .iter()
            .map(|&m| {
                if m > 0.0 && m.is_finite() {
                    m / 127.0
                } else {
                    1.0
                }
            })
            .collect();
        let mut codes = vec![0i8; self.values.len()];
        self.for_each_block_segment(|sb, _| {
            let scale = scales[sb.block];
            for (i, &v) in sb.values.iter().enumerate() {
                codes[sb.offset + i] = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        });
        self.scales_i8 = scales;
        self.values_i8 = codes;
    }

    /// Walks every kept row's contiguous block segments in storage order.
    ///
    /// The callback receives the segment descriptor and the kept-row index.
    fn for_each_block_segment(&self, mut f: impl FnMut(BlockSegment<'_>, usize)) {
        let stripe_h = self.stripe_height();
        for (k, &r) in self.kept_rows.iter().enumerate() {
            let s = ((r as usize) / stripe_h).min(self.num_stripes - 1);
            let mut off = self.row_offsets[k] as usize;
            for b in 0..self.num_blocks {
                let len = self.block_cols[s * self.num_blocks + b].len();
                if len > 0 {
                    f(
                        BlockSegment {
                            block: s * self.num_blocks + b,
                            offset: off,
                            values: &self.values[off..off + len],
                        },
                        k,
                    );
                }
                off += len;
            }
        }
    }

    /// Attaches a matrix-reorder permutation (original row index per
    /// execution slot). The permutation travels with the format, as §IV-B-c
    /// requires, so downstream consumers can reconstruct original row order.
    ///
    /// # Errors
    ///
    /// Returns [`BspcError::BadPermutation`] if `perm` is not a permutation
    /// of `0..self.rows()`.
    pub fn with_reorder(mut self, perm: Vec<u32>) -> Result<BspcMatrix, BspcError> {
        if perm.len() != self.rows {
            return Err(BspcError::BadPermutation);
        }
        let mut seen = vec![false; self.rows];
        for &p in &perm {
            let p = p as usize;
            if p >= self.rows || seen[p] {
                return Err(BspcError::BadPermutation);
            }
            seen[p] = true;
        }
        self.reorder = Some(perm);
        Ok(self)
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-stripe count (the paper's `Numr`).
    pub fn num_stripes(&self) -> usize {
        self.num_stripes
    }

    /// Column-block count per stripe (the paper's `Numc`).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Stripe height in rows (last stripe may be shorter).
    pub fn stripe_height(&self) -> usize {
        self.rows.div_ceil(self.num_stripes)
    }

    /// Stored (pattern) entries — the number of f32 values held.
    pub fn stored_len(&self) -> usize {
        self.values.len()
    }

    /// Surviving row indices, ascending.
    pub fn kept_rows(&self) -> &[u32] {
        &self.kept_rows
    }

    /// Kept columns of stripe `s` across all its blocks, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.num_stripes()`.
    pub fn stripe_kept_cols(&self, s: usize) -> &[u32] {
        &self.stripe_cols[s]
    }

    /// Kept columns of block `(s, b)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn block_kept_cols(&self, s: usize, b: usize) -> &[u32] {
        &self.block_cols[s * self.num_blocks + b]
    }

    /// The attached reorder permutation, if any.
    pub fn reorder(&self) -> Option<&[u32]> {
        self.reorder.as_deref()
    }

    /// The packed value array (kept rows' weights at their stripe's kept
    /// columns, row after row).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Offset of the `k`-th kept row's value run inside [`BspcMatrix::values`].
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.kept_rows().len()`.
    pub fn row_offset(&self, k: usize) -> usize {
        self.row_offsets[k] as usize
    }

    /// The packed values as raw f16 bit patterns (same layout as
    /// [`BspcMatrix::values`]). Decoding each bit pattern back to f32 is
    /// exact, so the f16 kernels match the f32 kernels run on pre-rounded
    /// values bit for bit.
    pub fn values_f16(&self) -> &[u16] {
        &self.values_f16
    }

    /// The packed values as int8 codes (same layout as
    /// [`BspcMatrix::values`]) under [`BspcMatrix::int8_scales`].
    pub fn values_i8(&self) -> &[i8] {
        &self.values_i8
    }

    /// Symmetric int8 scale per `stripe * num_blocks + block`.
    pub fn int8_scales(&self) -> &[f32] {
        &self.scales_i8
    }

    /// Reassembles a matrix from raw parts (the deserialization path).
    ///
    /// # Errors
    ///
    /// Returns [`BspcError`] when the parts are structurally inconsistent:
    /// empty partition, out-of-range or non-ascending kept rows / block
    /// columns, offset/value-length mismatches, or a bad permutation.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        num_stripes: usize,
        num_blocks: usize,
        kept_rows: Vec<u32>,
        block_cols: Vec<Vec<u32>>,
        row_offsets: Vec<u32>,
        values: Vec<f32>,
        reorder: Option<Vec<u32>>,
    ) -> Result<BspcMatrix, BspcError> {
        if num_stripes == 0 || num_blocks == 0 {
            return Err(BspcError::ZeroPartition);
        }
        if num_stripes > rows.max(1) || num_blocks > cols.max(1) {
            return Err(BspcError::PartitionTooFine {
                requested: (num_stripes, num_blocks),
                shape: (rows, cols),
            });
        }
        let bad = || BspcError::PartitionTooFine {
            requested: (num_stripes, num_blocks),
            shape: (rows, cols),
        };
        if block_cols.len() != num_stripes * num_blocks || row_offsets.len() != kept_rows.len() {
            return Err(bad());
        }
        if kept_rows.windows(2).any(|w| w[0] >= w[1])
            || kept_rows.iter().any(|&r| r as usize >= rows)
        {
            return Err(bad());
        }
        for list in &block_cols {
            if list.windows(2).any(|w| w[0] >= w[1]) || list.iter().any(|&c| c as usize >= cols) {
                return Err(bad());
            }
        }
        let stripe_cols: Vec<Vec<u32>> = (0..num_stripes)
            .map(|s| {
                let mut v = Vec::new();
                for b in 0..num_blocks {
                    v.extend_from_slice(&block_cols[s * num_blocks + b]);
                }
                v
            })
            .collect();
        // Offsets must tile the value array exactly, in kept-row order.
        let stripe_h = rows.div_ceil(num_stripes);
        let mut expected = 0usize;
        for (k, &r) in kept_rows.iter().enumerate() {
            if row_offsets[k] as usize != expected {
                return Err(bad());
            }
            expected += stripe_cols[(r as usize / stripe_h).min(num_stripes - 1)].len();
        }
        if expected != values.len() {
            return Err(bad());
        }
        let mut m = BspcMatrix {
            rows,
            cols,
            num_stripes,
            num_blocks,
            kept_rows,
            block_cols,
            stripe_cols,
            row_offsets,
            values,
            reorder: None,
            values_f16: Vec::new(),
            values_i8: Vec::new(),
            scales_i8: Vec::new(),
        };
        m.build_sidecars();
        match reorder {
            Some(perm) => m.with_reorder(perm),
            None => Ok(m),
        }
    }

    /// Replaces the derived int8 sidecar with an authoritative one (the
    /// deserialization path for int8-precision wire data, where the stored
    /// codes — not a float re-derivation — are the source of truth).
    ///
    /// # Errors
    ///
    /// Returns [`BspcError::SidecarMismatch`] when `codes` does not have one
    /// entry per stored value or `scales` one entry per stripe-block.
    pub fn with_int8_sidecar(
        mut self,
        codes: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<BspcMatrix, BspcError> {
        if codes.len() != self.values.len() || scales.len() != self.num_stripes * self.num_blocks {
            return Err(BspcError::SidecarMismatch);
        }
        self.values_i8 = codes;
        self.scales_i8 = scales;
        Ok(self)
    }

    /// Count of explicit index words stored (`u32` units): kept rows + one
    /// column list per stripe-block + per-row offsets. This is the quantity
    /// BSPC compresses relative to CSR's one-index-per-nonzero.
    pub fn index_words(&self) -> usize {
        self.kept_rows.len()
            + self.row_offsets.len()
            + self.block_cols.iter().map(Vec::len).sum::<usize>()
            + self.reorder.as_ref().map_or(0, Vec::len)
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// The inner loop walks the stripe's shared column stream once per row —
    /// the same memory behaviour the mobile runtime gets after redundant
    /// load elimination.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError {
                op: "bspc_spmv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        self.spmv_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free SpMV into a caller-provided buffer — the runtime's
    /// steady-state form (the output buffer is reused across timesteps).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "bspc_spmv_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        y.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BSPC, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.kept_rows.len() as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        let stripe_h = self.stripe_height();
        // One indexed dot over the stripe's shared column stream per kept
        // row, through the simd kernel layer. The vector realization
        // groups lanes exactly like the dense dot `rtm-exec` runs after
        // gathering a stripe into scratch, so serial and parallel SpMV
        // stay bit-identical under every SimdPolicy.
        let v = rtm_tensor::simd::active_variant();
        for (k, &r) in self.kept_rows.iter().enumerate() {
            let r = r as usize;
            let s = r / stripe_h;
            let cols = &self.stripe_cols[s];
            let off = self.row_offsets[k] as usize;
            let vals = &self.values[off..off + cols.len()];
            y[r] = rtm_tensor::simd::indexed_dot_variant(v, vals, cols, x);
        }
        Ok(())
    }

    /// Sparse matrix × dense multi-vector `Y = A X` for `b` interleaved
    /// input lanes (batched SpMM). `xs` holds element `c` of lane `j` at
    /// `xs[c·b + j]`; `ys` receives row `r` of lane `j` at `ys[r·b + j]`.
    ///
    /// The stripe's shared column stream is decoded **once per kept row**
    /// and applied to all `b` lanes; the vector path reads the lanes with
    /// unit-stride loads, so even irregular stripes use full vector width.
    /// Lane `j` of the result is bit-identical to
    /// [`spmv_into`](BspcMatrix::spmv_into) of lane `j`'s column under the
    /// same ambient policy.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "bspc_spmm_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        ys.fill(0.0);
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BSPC, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.kept_rows.len() as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        let stripe_h = self.stripe_height();
        let v = rtm_tensor::simd::active_variant();
        for (k, &r) in self.kept_rows.iter().enumerate() {
            let r = r as usize;
            let s = r / stripe_h;
            let cols = &self.stripe_cols[s];
            let off = self.row_offsets[k] as usize;
            let vals = &self.values[off..off + cols.len()];
            rtm_tensor::simd::indexed_dot_batch_variant(
                v,
                vals,
                cols,
                xs,
                b,
                &mut ys[r * b..(r + 1) * b],
            );
        }
        Ok(())
    }

    /// Allocating form of [`spmm_into`](BspcMatrix::spmm_into).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b`.
    pub fn spmm(&self, xs: &[f32], b: usize) -> Result<Vec<f32>, ShapeError> {
        let mut ys = vec![0.0f32; self.rows * b];
        self.spmm_into(xs, b, &mut ys)?;
        Ok(ys)
    }

    /// Precision-dispatched SpMV.
    ///
    /// * [`Precision::F32`] is exactly [`spmv_into`](BspcMatrix::spmv_into).
    /// * [`Precision::F16`] decodes the fp16 weight sidecar per row; because
    ///   f16 → f32 decoding is exact, the result is bit-identical to the f32
    ///   kernel run on f16-rounded values under every SIMD policy.
    /// * [`Precision::Int8`] quantizes the activation vector once
    ///   (`sx = max|x| / 127`), runs int8 × int8 → i32 block dots (exact —
    ///   no accumulation rounding), and dequantizes at the store:
    ///   `y[r] = sx · Σ_b scale_sb · acc_b` in block order. The i32
    ///   accumulation makes the result bit-identical across SIMD variants
    ///   and thread counts by construction.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_prec_into(
        &self,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmv_into(x, y),
            Precision::F16 => self.spmv_f16_into(x, y),
            Precision::Int8 => self.spmv_i8_into(x, y),
        }
    }

    /// Precision-dispatched batched SpMM (same lane layout as
    /// [`spmm_into`](BspcMatrix::spmm_into)). Int8 quantizes each lane with
    /// its own activation scale, so lane `j` stays bit-identical to the
    /// serial int8 SpMV of lane `j`'s column.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_prec_into(
        &self,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmm_into(xs, b, ys),
            Precision::F16 => self.spmm_f16_into(xs, b, ys),
            Precision::Int8 => self.spmm_i8_into(xs, b, ys),
        }
    }

    fn spmv_f16_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "bspc_spmv_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        y.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BSPC, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.kept_rows.len() as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmv_rows_f16_into(x, 0..self.kept_rows.len(), y, 0);
        Ok(())
    }

    fn spmv_i8_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "bspc_spmv_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        y.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BSPC, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.kept_rows.len() as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut act.0);
            self.spmv_rows_i8_into(&act.0, sx, 0..self.kept_rows.len(), y, 0);
        });
        Ok(())
    }

    fn spmm_f16_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "bspc_spmm_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        ys.fill(0.0);
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BSPC, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.kept_rows.len() as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        self.spmm_rows_f16_into(xs, b, 0..self.kept_rows.len(), ys, 0);
        Ok(())
    }

    fn spmm_i8_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "bspc_spmm_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        ys.fill(0.0);
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BSPC, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.kept_rows.len() as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let (xq, sxs) = (&mut act.0, &mut act.1);
            rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, xq, sxs);
            self.spmm_rows_i8_into(xq, sxs, b, 0..self.kept_rows.len(), ys, 0);
        });
        Ok(())
    }

    /// f16 SpMV over the kept-row slots `kept` (engine hook shared by the
    /// serial path and the parallel executor's row chunks). `y` starts at
    /// logical row `y_base`; output rows land at `y[row - y_base]`.
    ///
    /// No tracing here — the entry point that dispatched the work counts the
    /// kernel once, mirroring the executor's chunk-kernel convention.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `kept` slots or an output buffer that does not
    /// cover the chunk's rows; the public entry points validate shapes first.
    pub fn spmv_rows_f16_into(&self, x: &[f32], kept: Range<usize>, y: &mut [f32], y_base: usize) {
        let stripe_h = self.stripe_height();
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut k = kept.start;
            while k < kept.end {
                let s = (self.kept_rows[k] as usize) / stripe_h;
                let mut end = k + 1;
                while end < kept.end && (self.kept_rows[end] as usize) / stripe_h == s {
                    end += 1;
                }
                let cols = &self.stripe_cols[s];
                scratch.gf32.clear();
                scratch.gf32.extend(cols.iter().map(|&c| x[c as usize]));
                for kk in k..end {
                    let off = self.row_offsets[kk] as usize;
                    rtm_tensor::f16::f16_bits_to_f32(
                        &self.values_f16[off..off + cols.len()],
                        &mut scratch.conv,
                    );
                    y[self.kept_rows[kk] as usize - y_base] =
                        rtm_tensor::simd::dot_variant(v, &scratch.conv, &scratch.gf32);
                }
                k = end;
            }
        });
    }

    /// Int8 SpMV over the kept-row slots `kept` on pre-quantized activations
    /// `xq` with activation scale `sx` (engine hook; see
    /// [`spmv_rows_f16_into`](BspcMatrix::spmv_rows_f16_into) for the output
    /// and tracing conventions). The caller quantizes the activation vector
    /// exactly once — parallel chunks share the same codes, which is what
    /// keeps serial and pooled int8 results bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `kept` slots, a short `xq`, or a short output
    /// buffer.
    pub fn spmv_rows_i8_into(
        &self,
        xq: &[i8],
        sx: f32,
        kept: Range<usize>,
        y: &mut [f32],
        y_base: usize,
    ) {
        let stripe_h = self.stripe_height();
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut k = kept.start;
            while k < kept.end {
                let s = (self.kept_rows[k] as usize) / stripe_h;
                let mut end = k + 1;
                while end < kept.end && (self.kept_rows[end] as usize) / stripe_h == s {
                    end += 1;
                }
                let cols = &self.stripe_cols[s];
                scratch.gi8.clear();
                scratch.gi8.extend(cols.iter().map(|&c| xq[c as usize]));
                scratch.seg.clear();
                scratch.seg.extend(
                    (0..self.num_blocks)
                        .map(|blk| self.block_cols[s * self.num_blocks + blk].len() as u32),
                );
                let scales = &self.scales_i8[s * self.num_blocks..(s + 1) * self.num_blocks];
                // Four rows at a time: the quad kernel widens each
                // gathered-activation segment once and shares it across
                // four value streams, with exact i32 accumulation and
                // block-order dequantization identical to the single-row
                // path.
                let nnz = cols.len();
                let row_vals = |kk: usize| {
                    let off = self.row_offsets[kk] as usize;
                    &self.values_i8[off..off + nnz]
                };
                let mut kk = k;
                while kk + 4 <= end {
                    let quad = rtm_tensor::simd_i8::row_quad_block_dots_i8(
                        v,
                        [
                            row_vals(kk),
                            row_vals(kk + 1),
                            row_vals(kk + 2),
                            row_vals(kk + 3),
                        ],
                        &scratch.gi8,
                        &scratch.seg,
                        scales,
                    );
                    for (i, acc_f) in quad.into_iter().enumerate() {
                        y[self.kept_rows[kk + i] as usize - y_base] = sx * acc_f;
                    }
                    kk += 4;
                }
                while kk < end {
                    let acc_f = rtm_tensor::simd_i8::row_block_dots_i8(
                        v,
                        row_vals(kk),
                        &scratch.gi8,
                        &scratch.seg,
                        scales,
                    );
                    y[self.kept_rows[kk] as usize - y_base] = sx * acc_f;
                    kk += 1;
                }
                k = end;
            }
        });
    }

    /// f16 batched SpMM over the kept-row slots `kept` (engine hook; lane
    /// layout as [`spmm_into`](BspcMatrix::spmm_into), output row `r` lands
    /// at `ys[(r - y_base) · b ..]`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `kept` slots or short buffers; `b` must be
    /// positive (the entry points early-return on `b == 0`).
    pub fn spmm_rows_f16_into(
        &self,
        xs: &[f32],
        b: usize,
        kept: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        let stripe_h = self.stripe_height();
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut k = kept.start;
            while k < kept.end {
                let s = (self.kept_rows[k] as usize) / stripe_h;
                let mut end = k + 1;
                while end < kept.end && (self.kept_rows[end] as usize) / stripe_h == s {
                    end += 1;
                }
                let cols = &self.stripe_cols[s];
                // Lane-major gather: gathered element i, lane j at [i·b + j].
                scratch.gf32.clear();
                for &c in cols {
                    let c = c as usize;
                    scratch.gf32.extend_from_slice(&xs[c * b..(c + 1) * b]);
                }
                for kk in k..end {
                    let off = self.row_offsets[kk] as usize;
                    rtm_tensor::f16::f16_bits_to_f32(
                        &self.values_f16[off..off + cols.len()],
                        &mut scratch.conv,
                    );
                    let r = self.kept_rows[kk] as usize - y_base;
                    rtm_tensor::simd::dot_batch_variant(
                        v,
                        &scratch.conv,
                        &scratch.gf32,
                        b,
                        &mut ys[r * b..(r + 1) * b],
                    );
                }
                k = end;
            }
        });
    }

    /// Int8 batched SpMM over the kept-row slots `kept` on pre-quantized
    /// lane-major activations `xq` with per-lane scales `sxs` (engine hook;
    /// conventions as [`spmm_rows_f16_into`](BspcMatrix::spmm_rows_f16_into)).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `kept` slots or short buffers; `b` must be
    /// positive and `sxs.len() == b`.
    pub fn spmm_rows_i8_into(
        &self,
        xq: &[i8],
        sxs: &[f32],
        b: usize,
        kept: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        assert_eq!(sxs.len(), b, "one activation scale per lane");
        let stripe_h = self.stripe_height();
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut k = kept.start;
            while k < kept.end {
                let s = (self.kept_rows[k] as usize) / stripe_h;
                let mut end = k + 1;
                while end < kept.end && (self.kept_rows[end] as usize) / stripe_h == s {
                    end += 1;
                }
                let cols = &self.stripe_cols[s];
                scratch.gi8.clear();
                for &c in cols {
                    let c = c as usize;
                    scratch.gi8.extend_from_slice(&xq[c * b..(c + 1) * b]);
                }
                scratch.seg.clear();
                scratch.seg.extend(
                    (0..self.num_blocks)
                        .map(|blk| self.block_cols[s * self.num_blocks + blk].len() as u32),
                );
                let scales = &self.scales_i8[s * self.num_blocks..(s + 1) * self.num_blocks];
                let nnz = cols.len();
                let row_vals = |kk: usize| {
                    let off = self.row_offsets[kk] as usize;
                    &self.values_i8[off..off + nnz]
                };
                // Four rows at a time through the lane-major register tile:
                // the widened activation pairs are shared across the four
                // value streams and the i32/f32 accumulators stay in
                // registers for the whole row, with the same block-order
                // dequantize as the serial path.
                scratch.conv.resize(4 * b, 0.0);
                let mut kk = k;
                while kk + 4 <= end {
                    rtm_tensor::simd_i8::row_quad_block_dots_batch_i8(
                        v,
                        [
                            row_vals(kk),
                            row_vals(kk + 1),
                            row_vals(kk + 2),
                            row_vals(kk + 3),
                        ],
                        &scratch.gi8,
                        b,
                        &scratch.seg,
                        scales,
                        sxs,
                        &mut scratch.conv,
                    );
                    for i in 0..4 {
                        let r = self.kept_rows[kk + i] as usize - y_base;
                        ys[r * b..(r + 1) * b].copy_from_slice(&scratch.conv[i * b..(i + 1) * b]);
                    }
                    kk += 4;
                }
                while kk < end {
                    let r = self.kept_rows[kk] as usize - y_base;
                    rtm_tensor::simd_i8::row_block_dots_batch_i8(
                        v,
                        row_vals(kk),
                        &scratch.gi8,
                        b,
                        &scratch.seg,
                        scales,
                        sxs,
                        &mut ys[r * b..(r + 1) * b],
                    );
                    kk += 1;
                }
                k = end;
            }
        });
    }

    /// Expands back to a dense matrix (exact round trip of the input of
    /// [`BspcMatrix::from_dense`]).
    pub fn to_dense(&self) -> Matrix {
        let stripe_h = self.stripe_height();
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (k, &r) in self.kept_rows.iter().enumerate() {
            let r = r as usize;
            let s = r / stripe_h;
            let cols = &self.stripe_cols[s];
            let off = self.row_offsets[k] as usize;
            for (i, &c) in cols.iter().enumerate() {
                m[(r, c as usize)] = self.values[off + i];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::gemm;

    /// A hand-built BSP-structured matrix: 4 rows (2 stripes of 2),
    /// 4 cols (2 blocks of 2). Stripe 0 keeps col 1 in block 0, col 2 in
    /// block 1; stripe 1 keeps cols 0,3; row 3 fully pruned.
    fn bsp_example() -> Matrix {
        Matrix::from_rows(&[
            &[0.0, 1.0, 2.0, 0.0],
            &[0.0, 3.0, 4.0, 0.0],
            &[5.0, 0.0, 0.0, 6.0],
            &[0.0, 0.0, 0.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_dense_detects_pattern() {
        let b = BspcMatrix::from_dense(&bsp_example(), 2, 2).unwrap();
        assert_eq!(b.kept_rows(), &[0, 1, 2]);
        assert_eq!(b.block_kept_cols(0, 0), &[1]);
        assert_eq!(b.block_kept_cols(0, 1), &[2]);
        assert_eq!(b.block_kept_cols(1, 0), &[0]);
        assert_eq!(b.block_kept_cols(1, 1), &[3]);
        assert_eq!(b.stripe_kept_cols(0), &[1, 2]);
        assert_eq!(b.stored_len(), 6); // 3 kept rows x 2 kept cols each
    }

    #[test]
    fn roundtrip_exact() {
        let d = bsp_example();
        let b = BspcMatrix::from_dense(&d, 2, 2).unwrap();
        assert_eq!(b.to_dense(), d);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = bsp_example();
        let b = BspcMatrix::from_dense(&d, 2, 2).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(b.spmv(&x).unwrap(), gemm::gemv(&d, &x).unwrap());
    }

    #[test]
    fn unstructured_matrix_still_roundtrips() {
        // Not BSP-structured: pattern detection stores explicit zeros but
        // values must survive exactly.
        let d = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0], &[0.0, 0.0, 3.0]]).unwrap();
        let b = BspcMatrix::from_dense(&d, 1, 1).unwrap();
        assert_eq!(b.to_dense(), d);
        // Whole 3x3 block pattern is the union of columns {0,1,2}.
        assert_eq!(b.stripe_kept_cols(0), &[0, 1, 2]);
        assert_eq!(b.stored_len(), 9);
    }

    #[test]
    fn index_words_smaller_than_csr_for_structured() {
        // 64 rows in 4 stripes, each stripe keeps the same 8 columns of 64.
        let rows = 64;
        let cols = 64;
        let d = Matrix::from_fn(rows, cols, |r, c| {
            let stripe = r / 16;
            if c % 8 == stripe {
                1.0
            } else {
                0.0
            }
        });
        let b = BspcMatrix::from_dense(&d, 4, 4).unwrap();
        let csr = crate::CsrMatrix::from_dense(&d);
        // CSR: one u32 per nonzero (64*8) + row_ptr 65.
        let csr_words = csr.nnz() + csr.row_ptr().len();
        assert!(
            b.index_words() < csr_words / 2,
            "bspc {} vs csr {}",
            b.index_words(),
            csr_words
        );
        assert_eq!(b.to_dense(), d);
    }

    #[test]
    fn partition_validation() {
        let d = Matrix::zeros(4, 4);
        assert_eq!(
            BspcMatrix::from_dense(&d, 0, 2).unwrap_err(),
            BspcError::ZeroPartition
        );
        assert!(matches!(
            BspcMatrix::from_dense(&d, 5, 2).unwrap_err(),
            BspcError::PartitionTooFine { .. }
        ));
        assert!(matches!(
            BspcMatrix::from_dense(&d, 2, 5).unwrap_err(),
            BspcError::PartitionTooFine { .. }
        ));
    }

    #[test]
    fn uneven_partition_supported() {
        // 5 rows, 2 stripes -> heights 3 and 2; 7 cols, 3 blocks -> 3,3,1.
        let mut rng = rtm_tensor::init::rng_from_seed(9);
        let d = rtm_tensor::init::uniform(5, 7, -1.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                v
            }
        });
        let b = BspcMatrix::from_dense(&d, 2, 3).unwrap();
        assert_eq!(b.to_dense(), d);
        let x: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let want = gemm::gemv(&d, &x).unwrap();
        let got = b.spmv(&x).unwrap();
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-5);
        }
    }

    #[test]
    fn spmv_into_matches_spmv() {
        let d = bsp_example();
        let b = BspcMatrix::from_dense(&d, 2, 2).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let want = b.spmv(&x).unwrap();
        let mut y = vec![99.0f32; 4]; // stale contents must be overwritten
        b.spmv_into(&x, &mut y).unwrap();
        assert_eq!(y, want);
        // Shape errors on both sides.
        assert!(b.spmv_into(&[1.0], &mut y).is_err());
        let mut short = vec![0.0; 2];
        assert!(b.spmv_into(&x, &mut short).is_err());
    }

    #[test]
    fn spmm_lanes_match_spmv_columns() {
        let d = bsp_example();
        let m = BspcMatrix::from_dense(&d, 2, 2).unwrap();
        for b in [1usize, 2, 4, 7, 8, 11] {
            let xs: Vec<f32> = (0..4 * b).map(|i| (i as f32 * 0.53).sin()).collect();
            let mut ys = vec![f32::NAN; 4 * b];
            m.spmm_into(&xs, b, &mut ys).unwrap();
            assert_eq!(m.spmm(&xs, b).unwrap(), ys);
            for j in 0..b {
                let col: Vec<f32> = (0..4).map(|c| xs[c * b + j]).collect();
                let want = m.spmv(&col).unwrap();
                for r in 0..4 {
                    assert_eq!(ys[r * b + j], want[r], "b={b} lane {j} row {r}");
                }
            }
        }
        assert!(m.spmm_into(&[0.0; 3], 2, &mut [0.0; 8]).is_err());
        assert!(m.spmm_into(&[0.0; 8], 2, &mut [0.0; 3]).is_err());
    }

    #[test]
    fn reorder_validation() {
        let b = BspcMatrix::from_dense(&bsp_example(), 2, 2).unwrap();
        assert!(b.clone().with_reorder(vec![0, 1, 2, 3]).is_ok());
        assert!(b.clone().with_reorder(vec![3, 2, 1, 0]).is_ok());
        assert_eq!(
            b.clone().with_reorder(vec![0, 0, 1, 2]).unwrap_err(),
            BspcError::BadPermutation
        );
        assert_eq!(
            b.clone().with_reorder(vec![0, 1]).unwrap_err(),
            BspcError::BadPermutation
        );
        assert_eq!(
            b.with_reorder(vec![0, 1, 2, 9]).unwrap_err(),
            BspcError::BadPermutation
        );
    }

    #[test]
    fn reorder_counts_toward_index_words() {
        let b = BspcMatrix::from_dense(&bsp_example(), 2, 2).unwrap();
        let before = b.index_words();
        let with = b.with_reorder(vec![0, 1, 2, 3]).unwrap();
        assert_eq!(with.index_words(), before + 4);
        assert_eq!(with.reorder(), Some(&[0u32, 1, 2, 3][..]));
    }

    #[test]
    fn empty_matrix_error_path() {
        // A 0x0 matrix: partition 1x1 is "too fine" guard-safe via max(1).
        let b = BspcMatrix::from_dense(&Matrix::zeros(0, 0), 1, 1).unwrap();
        assert_eq!(b.stored_len(), 0);
        assert_eq!(b.spmv(&[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn display_of_errors() {
        let e = BspcError::ZeroPartition;
        assert!(!format!("{e}").is_empty());
        let e = BspcError::PartitionTooFine {
            requested: (9, 9),
            shape: (2, 2),
        };
        assert!(format!("{e}").contains("9x9"));
        assert!(!format!("{}", BspcError::BadPermutation).is_empty());
    }

    #[test]
    fn sidecars_derived_deterministically() {
        let d = bsp_example();
        let a = BspcMatrix::from_dense(&d, 2, 2).unwrap();
        // from_parts on the same raw parts derives identical sidecars, so
        // the PartialEq derive (which includes them) still holds.
        let b = BspcMatrix::from_parts(
            a.rows(),
            a.cols(),
            a.num_stripes(),
            a.num_blocks(),
            a.kept_rows().to_vec(),
            (0..4)
                .map(|i| a.block_kept_cols(i / 2, i % 2).to_vec())
                .collect(),
            (0..a.kept_rows().len())
                .map(|k| a.row_offset(k) as u32)
                .collect(),
            a.values().to_vec(),
            None,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.values_f16().len(), a.stored_len());
        assert_eq!(a.values_i8().len(), a.stored_len());
        assert_eq!(a.int8_scales().len(), 4);
        // Stripe 0 block 0 holds values {1, 3} -> scale 3/127; the max code
        // in each nonempty block is exactly ±127.
        assert!((a.int8_scales()[0] - 3.0 / 127.0).abs() < 1e-7);
        assert!(a.values_i8().contains(&127));
    }

    #[test]
    fn f16_spmv_matches_f32_on_rounded_values() {
        // Round the dense weights through f16 first: then the f16 sidecar is
        // exact and the f16 kernel must match the f32 kernel bit for bit.
        let mut rng = rtm_tensor::init::rng_from_seed(21);
        let d = rtm_tensor::init::uniform(24, 16, -1.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                rtm_tensor::f16::quantize_f16(v)
            }
        });
        let m = BspcMatrix::from_dense(&d, 3, 2).unwrap();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).cos()).collect();
        let mut want = vec![0.0f32; 24];
        m.spmv_into(&x, &mut want).unwrap();
        let mut got = vec![f32::NAN; 24];
        m.spmv_prec_into(Precision::F16, &x, &mut got).unwrap();
        assert_eq!(got, want);
        // Batched f16: every lane bit-identical to the serial f16 SpMV.
        for b in [1usize, 3, 8] {
            let xs: Vec<f32> = (0..16 * b).map(|i| (i as f32 * 0.29).sin()).collect();
            let mut ys = vec![f32::NAN; 24 * b];
            m.spmm_prec_into(Precision::F16, &xs, b, &mut ys).unwrap();
            for j in 0..b {
                let col: Vec<f32> = (0..16).map(|c| xs[c * b + j]).collect();
                let mut yy = vec![0.0f32; 24];
                m.spmv_prec_into(Precision::F16, &col, &mut yy).unwrap();
                for r in 0..24 {
                    assert_eq!(ys[r * b + j], yy[r], "b={b} lane {j} row {r}");
                }
            }
        }
    }

    #[test]
    fn i8_spmv_error_bounded_against_dense() {
        let mut rng = rtm_tensor::init::rng_from_seed(33);
        let d = rtm_tensor::init::uniform(20, 18, -1.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.3 {
                0.0
            } else {
                v
            }
        });
        let m = BspcMatrix::from_dense(&d, 4, 3).unwrap();
        let x: Vec<f32> = (0..18).map(|i| (i as f32 * 0.51).sin()).collect();
        let want = gemm::gemv(&d, &x).unwrap();
        let mut got = vec![0.0f32; 20];
        m.spmv_prec_into(Precision::Int8, &x, &mut got).unwrap();
        // Worst case per output: each of the `cols` terms contributes a
        // weight rounding error (scale/2 · |x|) plus an activation rounding
        // error (sx/2 · |w|) plus the cross term.
        let wmax = d.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let xmax = x.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let smax = m.int8_scales().iter().fold(0.0f32, |a, v| a.max(*v));
        let sx = xmax / 127.0;
        let bound = 18.0 * (0.5 * smax * xmax + 0.5 * sx * wmax + 0.25 * smax * sx) + 1e-4;
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= bound, "{w} vs {g} (bound {bound})");
        }
    }

    #[test]
    fn i8_spmm_lanes_match_i8_spmv_exactly() {
        let mut rng = rtm_tensor::init::rng_from_seed(45);
        let d = rtm_tensor::init::uniform(12, 10, -2.0, 2.0, &mut rng).map(|v| {
            if v.abs() < 0.5 {
                0.0
            } else {
                v
            }
        });
        let m = BspcMatrix::from_dense(&d, 3, 2).unwrap();
        for b in [1usize, 2, 5, 8] {
            let xs: Vec<f32> = (0..10 * b).map(|i| (i as f32 * 0.73).cos()).collect();
            let mut ys = vec![f32::NAN; 12 * b];
            m.spmm_prec_into(Precision::Int8, &xs, b, &mut ys).unwrap();
            for j in 0..b {
                let col: Vec<f32> = (0..10).map(|c| xs[c * b + j]).collect();
                let mut yy = vec![0.0f32; 12];
                m.spmv_prec_into(Precision::Int8, &col, &mut yy).unwrap();
                for r in 0..12 {
                    // Per-lane activation scales make lane j's quantization
                    // identical to the serial quantization of its column, so
                    // this equality is exact, not approximate.
                    assert_eq!(ys[r * b + j], yy[r], "b={b} lane {j} row {r}");
                }
            }
        }
    }

    #[test]
    fn int8_sidecar_replacement_validated() {
        let m = BspcMatrix::from_dense(&bsp_example(), 2, 2).unwrap();
        let codes = m.values_i8().to_vec();
        let scales = m.int8_scales().to_vec();
        assert!(m
            .clone()
            .with_int8_sidecar(codes.clone(), scales.clone())
            .is_ok());
        assert_eq!(
            m.clone()
                .with_int8_sidecar(vec![0; 1], scales.clone())
                .unwrap_err(),
            BspcError::SidecarMismatch
        );
        assert_eq!(
            m.clone().with_int8_sidecar(codes, vec![1.0]).unwrap_err(),
            BspcError::SidecarMismatch
        );
    }

    #[test]
    fn quantized_kernels_handle_degenerate_inputs() {
        // Empty matrix: all three precisions accept the empty product.
        let e = BspcMatrix::from_dense(&Matrix::zeros(0, 0), 1, 1).unwrap();
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            e.spmv_prec_into(p, &[], &mut []).unwrap();
            e.spmm_prec_into(p, &[], 0, &mut []).unwrap();
        }
        // Zero activations: int8 picks the neutral scale and stays exact.
        let m = BspcMatrix::from_dense(&bsp_example(), 2, 2).unwrap();
        let mut y = vec![1.0f32; 4];
        m.spmv_prec_into(Precision::Int8, &[0.0; 4], &mut y)
            .unwrap();
        assert_eq!(y, vec![0.0; 4]);
        // Shape errors propagate through the dispatcher.
        assert!(m
            .spmv_prec_into(Precision::Int8, &[0.0; 2], &mut y)
            .is_err());
        assert!(m
            .spmm_prec_into(Precision::F16, &[0.0; 3], 2, &mut [0.0; 8])
            .is_err());
    }

    /// Randomized (seed-driven) round-trip + SpMV property over arbitrary
    /// shapes and partitions.
    #[test]
    fn prop_roundtrip_and_spmv() {
        for seed in 0u64..300 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..16);
            let cols = rng.gen_range(1usize..16);
            let stripes = rng.gen_range(1usize..4).min(rows);
            let blocks = rng.gen_range(1usize..4).min(cols);
            let d = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.5 {
                    0.0
                } else {
                    v
                }
            });
            let b = BspcMatrix::from_dense(&d, stripes, blocks).unwrap();
            assert_eq!(b.to_dense(), d, "seed {seed}");
            let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.7).sin()).collect();
            let want = gemm::gemv(&d, &x).unwrap();
            let got = b.spmv(&x).unwrap();
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-4, "seed {seed}");
            }
        }
    }
}
