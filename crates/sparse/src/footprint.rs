//! Byte-level memory accounting per storage format.
//!
//! Table II's discussion attributes RTMobile's mobile-GPU win partly to BSPC
//! "significantly reduc\[ing\] the memory footprint thus alleviating the
//! memory-bound issue". The simulator charges memory cycles proportional to
//! bytes moved, so the numbers here directly drive the Table II and
//! ablation-A3 results.

use crate::{BbsMatrix, BspcMatrix, CsbMatrix, CscMatrix, CsrMatrix};
use rtm_tensor::Matrix;

/// Size in bytes of one stored weight scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 32-bit float (CPU path).
    #[default]
    F32,
    /// 16-bit float (the paper's mobile-GPU path).
    F16,
    /// Symmetric int8 weights (one byte per weight plus explicit f32 scale
    /// metadata — per stripe-block for BSPC, per row block for CSR/CSC, one
    /// per tensor for dense).
    Int8,
}

impl Precision {
    /// Bytes per scalar.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
            Precision::Int8 => 1,
        }
    }

    /// Short lowercase label ("f32" / "f16" / "int8") — used for trace keys,
    /// report fields and CLI round trips.
    pub fn tag(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }
}

/// Byte breakdown of one stored matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Bytes holding weight values.
    pub value_bytes: usize,
    /// Bytes holding structural indices (column ids, pointers, permutations).
    pub index_bytes: usize,
    /// Bytes holding quantization scale metadata (int8 only: one f32 per
    /// scale group; zero for f32/f16 storage).
    pub scale_bytes: usize,
}

impl Footprint {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.value_bytes + self.index_bytes + self.scale_bytes
    }

    /// Footprint of a dense matrix: `rows*cols` scalars and no indices;
    /// int8 adds the single per-tensor scale.
    pub fn dense(m: &Matrix, prec: Precision) -> Footprint {
        Footprint {
            value_bytes: m.len() * prec.bytes(),
            index_bytes: 0,
            scale_bytes: if prec == Precision::Int8 { 4 } else { 0 },
        }
    }

    /// Footprint of a CSR matrix: one scalar and one `u32` column index per
    /// nonzero plus the `rows + 1` row-pointer array; int8 adds one f32
    /// scale per [`CsrMatrix::ROW_BLOCK`] rows.
    pub fn csr(m: &CsrMatrix, prec: Precision) -> Footprint {
        Footprint {
            value_bytes: m.nnz() * prec.bytes(),
            index_bytes: (m.nnz() + m.row_ptr().len()) * 4,
            scale_bytes: if prec == Precision::Int8 {
                m.rows().div_ceil(CsrMatrix::ROW_BLOCK) * 4
            } else {
                0
            },
        }
    }

    /// Footprint of a CSC matrix (mirror of CSR; int8 scales go per column
    /// block of the same width).
    pub fn csc(m: &CscMatrix, prec: Precision) -> Footprint {
        Footprint {
            value_bytes: m.nnz() * prec.bytes(),
            index_bytes: (m.nnz() + m.col_ptr().len()) * 4,
            scale_bytes: if prec == Precision::Int8 {
                m.cols().div_ceil(CsrMatrix::ROW_BLOCK) * 4
            } else {
                0
            },
        }
    }

    /// Footprint of a BSPC matrix: stored pattern values plus the shared
    /// per-stripe-block index words (see [`BspcMatrix::index_words`]); int8
    /// adds one f32 scale per (stripe, block).
    pub fn bspc(m: &BspcMatrix, prec: Precision) -> Footprint {
        Footprint {
            value_bytes: m.stored_len() * prec.bytes(),
            index_bytes: m.index_words() * 4,
            scale_bytes: if prec == Precision::Int8 {
                m.num_stripes() * m.num_blocks() * 4
            } else {
                0
            },
        }
    }

    /// Footprint of a bank-balanced matrix: every padded slot stores one
    /// scalar and one `u32` column index (padding is the format's price —
    /// it is charged here); int8 adds one f32 scale per row.
    pub fn bbs(m: &BbsMatrix, prec: Precision) -> Footprint {
        Footprint {
            value_bytes: m.stored_len() * prec.bytes(),
            index_bytes: m.col_idx().len() * 4,
            scale_bytes: if prec == Precision::Int8 {
                m.rows() * 4
            } else {
                0
            },
        }
    }

    /// Footprint of a compressed-structured-block matrix: the per-block
    /// value panels plus all structural words (block pointers, block
    /// columns, kept-column unions and both prefix arrays); int8 adds one
    /// f32 scale per stored block.
    pub fn csb(m: &CsbMatrix, prec: Precision) -> Footprint {
        let index_words = m.block_ptr().len()
            + m.block_col().len()
            + m.col_ptr().len()
            + m.cols_idx().len()
            + m.val_ptr().len();
        Footprint {
            value_bytes: m.stored_len() * prec.bytes(),
            index_bytes: index_words * 4,
            scale_bytes: if prec == Precision::Int8 {
                m.stored_blocks() * 4
            } else {
                0
            },
        }
    }

    /// Compression factor of this footprint relative to `dense_bytes`
    /// (higher is better). Returns infinity if this footprint is empty.
    pub fn compression_vs(&self, dense_bytes: usize) -> f64 {
        if self.total() == 0 {
            f64::INFINITY
        } else {
            dense_bytes as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured(rows: usize, cols: usize, stripes: usize, keep_per_stripe: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let s = r / (rows / stripes);
            if c % (cols / keep_per_stripe) == s % (cols / keep_per_stripe) {
                0.5
            } else {
                0.0
            }
        })
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::F16.bytes(), 2);
        assert_eq!(Precision::Int8.bytes(), 1);
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::F32.tag(), "f32");
        assert_eq!(Precision::F16.tag(), "f16");
        assert_eq!(Precision::Int8.tag(), "int8");
    }

    #[test]
    fn int8_charges_scale_metadata() {
        let m = structured(64, 64, 4, 8);
        let bspc = BspcMatrix::from_dense(&m, 4, 4).unwrap();
        let fp = Footprint::bspc(&bspc, Precision::Int8);
        assert_eq!(fp.scale_bytes, 4 * 4 * 4); // stripes * blocks * f32
        assert_eq!(fp.total(), fp.value_bytes + fp.index_bytes + fp.scale_bytes);
        // f32/f16 storage carries no scale metadata.
        assert_eq!(Footprint::bspc(&bspc, Precision::F16).scale_bytes, 0);
        let csr = CsrMatrix::from_dense(&m);
        let fp_csr = Footprint::csr(&csr, Precision::Int8);
        assert_eq!(
            fp_csr.scale_bytes,
            64usize.div_ceil(CsrMatrix::ROW_BLOCK) * 4
        );
        assert_eq!(Footprint::csr(&csr, Precision::F32).scale_bytes, 0);
        let csc = Footprint::csc(&CscMatrix::from_dense(&m), Precision::Int8);
        assert_eq!(csc.scale_bytes, fp_csr.scale_bytes); // square matrix
        assert_eq!(Footprint::dense(&m, Precision::Int8).scale_bytes, 4);
        // Int8 still wins on total bytes despite the metadata.
        assert!(fp.total() < Footprint::bspc(&bspc, Precision::F16).total());
    }

    #[test]
    fn dense_footprint() {
        let m = Matrix::zeros(10, 10);
        let fp = Footprint::dense(&m, Precision::F32);
        assert_eq!(fp.value_bytes, 400);
        assert_eq!(fp.index_bytes, 0);
        assert_eq!(fp.total(), 400);
        assert_eq!(Footprint::dense(&m, Precision::F16).total(), 200);
    }

    #[test]
    fn csr_footprint_counts_indices() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let csr = CsrMatrix::from_dense(&m);
        let fp = Footprint::csr(&csr, Precision::F32);
        assert_eq!(fp.value_bytes, 8); // 2 nnz * 4B
        assert_eq!(fp.index_bytes, (2 + 3) * 4); // col idx + row ptr
    }

    #[test]
    fn bspc_beats_csr_on_structured_matrix() {
        let m = structured(64, 64, 4, 8);
        let csr = CsrMatrix::from_dense(&m);
        let bspc = BspcMatrix::from_dense(&m, 4, 4).unwrap();
        let fp_csr = Footprint::csr(&csr, Precision::F16);
        let fp_bspc = Footprint::bspc(&bspc, Precision::F16);
        assert!(
            fp_bspc.index_bytes < fp_csr.index_bytes / 3,
            "bspc idx {} vs csr idx {}",
            fp_bspc.index_bytes,
            fp_csr.index_bytes
        );
        assert!(fp_bspc.total() < fp_csr.total());
    }

    #[test]
    fn compression_factor() {
        let m = structured(64, 64, 4, 8);
        let dense_bytes = Footprint::dense(&m, Precision::F32).total();
        let csr = CsrMatrix::from_dense(&m);
        let fp = Footprint::csr(&csr, Precision::F32);
        let ratio = fp.compression_vs(dense_bytes);
        assert!(ratio > 1.0, "pruned CSR should compress: {ratio}");
        let empty = Footprint::default();
        assert!(empty.compression_vs(100).is_infinite());
    }

    #[test]
    fn csc_mirrors_csr() {
        let m = structured(32, 32, 4, 8);
        let a = Footprint::csr(&CsrMatrix::from_dense(&m), Precision::F32);
        let b = Footprint::csc(&CscMatrix::from_dense(&m), Precision::F32);
        assert_eq!(a.value_bytes, b.value_bytes);
        // Same nnz; pointer arrays differ by (rows vs cols) + 1 — equal here.
        assert_eq!(a.index_bytes, b.index_bytes);
    }
}
