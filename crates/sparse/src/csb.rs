//! Compressed Structured Block storage (the CSB-RNN family of formats —
//! see PAPERS.md — which RTMobile's scheme-vs-scheme comparison targets).
//!
//! The matrix is tiled into `block_h × block_w` blocks. A block that
//! contains any nonzero is *stored*: it records the union of its nonzero
//! columns once (`cols_idx`, shared by all rows of the block) and a dense
//! `rows_in_block × kept_cols` value panel. Blocks with no nonzeros cost
//! nothing. Compared with BSPC — whose column unions span a full stripe of
//! rows — CSB's unions span only `block_h` rows, so a matrix whose nonzero
//! columns vary quickly down the rows (e.g. pattern-pruned weights) stores
//! far fewer explicit zeros; the price is per-block index metadata and a
//! shorter unit-stride inner loop. The tuner weighs exactly that trade.

use crate::footprint::Precision;
use rtm_tensor::{Matrix, ShapeError};
use std::cell::RefCell;
use std::ops::Range;

// Thread-local scratch: f32 gather, f16→f32 conversion, int8 gather, and
// a per-row lane accumulator for the batched kernels. Worker threads get
// independent buffers, so chunks run concurrently without allocation.
type KernelScratch = (Vec<f32>, Vec<f32>, Vec<i8>, Vec<f32>);
thread_local! {
    static TLS_ACT: RefCell<(Vec<i8>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    static TLS_KERNEL: RefCell<KernelScratch> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new(), Vec::new())) };
}

/// A sparse matrix in compressed-structured-block format.
///
/// Invariants (maintained by construction, checked by `from_parts`):
/// `block_ptr` has `num_block_rows + 1` non-decreasing entries ending at
/// `block_col.len()`; within a block row the stored `block_col`s ascend
/// strictly; `col_ptr`/`val_ptr` are non-decreasing prefix arrays over
/// `cols_idx`/`values`; each stored block's `cols_idx` run ascends
/// strictly inside the block's column span and its value panel holds
/// exactly `rows_in_block × kept_cols` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct CsbMatrix {
    rows: usize,
    cols: usize,
    block_h: usize,
    block_w: usize,
    /// Stored-block extent per block row (`num_block_rows + 1` entries).
    block_ptr: Vec<u32>,
    /// Block-column coordinate of every stored block.
    block_col: Vec<u32>,
    /// Prefix offsets into `cols_idx` (`stored_blocks + 1` entries).
    col_ptr: Vec<u32>,
    /// Absolute kept columns of every stored block, ascending per block.
    cols_idx: Vec<u32>,
    /// Prefix offsets into `values` (`stored_blocks + 1` entries).
    val_ptr: Vec<u32>,
    /// Per-block dense panels, row-major within each block.
    values: Vec<f32>,
    /// `values` as raw f16 bit patterns.
    values_f16: Vec<u16>,
    /// Symmetric int8 scale per stored block.
    scales_i8: Vec<f32>,
    /// `values` as int8 codes under the per-block scales.
    values_i8: Vec<i8>,
}

impl CsbMatrix {
    /// Builds a CSB matrix from a dense one. A `block_h × block_w` block
    /// is stored iff it contains a nonzero; its kept columns are the union
    /// of nonzero columns over the block's rows.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `block_h` or `block_w` is zero.
    pub fn from_dense(
        dense: &Matrix,
        block_h: usize,
        block_w: usize,
    ) -> Result<CsbMatrix, ShapeError> {
        let (rows, cols) = dense.shape();
        if block_h == 0 || block_w == 0 {
            return Err(ShapeError {
                op: "csb_from_dense",
                lhs: (rows, cols),
                rhs: (block_h, block_w),
            });
        }
        let nbr = rows.div_ceil(block_h);
        let nbc = cols.div_ceil(block_w);
        let mut block_ptr = Vec::with_capacity(nbr + 1);
        let mut block_col = Vec::new();
        let mut col_ptr = vec![0u32];
        let mut cols_idx = Vec::new();
        let mut val_ptr = vec![0u32];
        let mut values = Vec::new();
        block_ptr.push(0u32);
        for br in 0..nbr {
            let r0 = br * block_h;
            let bh_eff = block_h.min(rows - r0);
            for bc in 0..nbc {
                let c0 = bc * block_w;
                let c1 = ((bc + 1) * block_w).min(cols);
                // Union of nonzero columns over the block's rows.
                let mut kept: Vec<u32> = Vec::new();
                for c in c0..c1 {
                    if (0..bh_eff).any(|lr| dense[(r0 + lr, c)] != 0.0) {
                        kept.push(c as u32);
                    }
                }
                if kept.is_empty() {
                    continue;
                }
                for lr in 0..bh_eff {
                    for &c in &kept {
                        values.push(dense[(r0 + lr, c as usize)]);
                    }
                }
                cols_idx.extend_from_slice(&kept);
                block_col.push(bc as u32);
                col_ptr.push(cols_idx.len() as u32);
                val_ptr.push(values.len() as u32);
            }
            block_ptr.push(block_col.len() as u32);
        }
        let mut m = CsbMatrix {
            rows,
            cols,
            block_h,
            block_w,
            block_ptr,
            block_col,
            col_ptr,
            cols_idx,
            val_ptr,
            values,
            values_f16: Vec::new(),
            scales_i8: Vec::new(),
            values_i8: Vec::new(),
        };
        m.build_sidecars();
        Ok(m)
    }

    /// Rebuilds the f16 and int8 sidecars from `values`; int8 carries one
    /// symmetric scale per stored block.
    fn build_sidecars(&mut self) {
        self.values_f16 = rtm_tensor::f16::f32_to_f16_bits(&self.values);
        let nblocks = self.block_col.len();
        self.scales_i8 = (0..nblocks)
            .map(|blk| {
                let (vs, ve) = (self.val_ptr[blk] as usize, self.val_ptr[blk + 1] as usize);
                let m = self.values[vs..ve]
                    .iter()
                    .fold(0.0f32, |a, v| a.max(v.abs()));
                if m > 0.0 && m.is_finite() {
                    m / 127.0
                } else {
                    1.0
                }
            })
            .collect();
        self.values_i8 = vec![0; self.values.len()];
        for blk in 0..nblocks {
            let (vs, ve) = (self.val_ptr[blk] as usize, self.val_ptr[blk + 1] as usize);
            let scale = self.scales_i8[blk];
            for i in vs..ve {
                self.values_i8[i] = (self.values[i] / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
    }

    /// Builds from raw parts (the deserialization path).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the arrays are structurally inconsistent:
    /// zero block sizes, wrong pointer-array lengths, decreasing prefix
    /// arrays, out-of-span or non-ascending block/kept columns, or a value
    /// panel whose length is not `rows_in_block × kept_cols`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        block_h: usize,
        block_w: usize,
        block_ptr: Vec<u32>,
        block_col: Vec<u32>,
        col_ptr: Vec<u32>,
        cols_idx: Vec<u32>,
        val_ptr: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<CsbMatrix, ShapeError> {
        let bad = || ShapeError {
            op: "csb_from_parts",
            lhs: (rows, cols),
            rhs: (block_h, block_w),
        };
        if block_h == 0 || block_w == 0 {
            return Err(bad());
        }
        let nbr = rows.div_ceil(block_h);
        let nbc = cols.div_ceil(block_w);
        let nblocks = block_col.len();
        if block_ptr.len() != nbr + 1
            || block_ptr.first().copied().unwrap_or(1) != 0
            || block_ptr.last().copied().unwrap_or(1) as usize != nblocks
            || block_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad());
        }
        if col_ptr.len() != nblocks + 1
            || col_ptr[0] != 0
            || col_ptr[nblocks] as usize != cols_idx.len()
            || col_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad());
        }
        if val_ptr.len() != nblocks + 1
            || val_ptr[0] != 0
            || val_ptr[nblocks] as usize != values.len()
            || val_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad());
        }
        for br in 0..nbr {
            let bh_eff = block_h.min(rows - br * block_h);
            let (bs, be) = (block_ptr[br] as usize, block_ptr[br + 1] as usize);
            for blk in bs..be {
                let bc = block_col[blk] as usize;
                if bc >= nbc || (blk > bs && block_col[blk - 1] >= block_col[blk]) {
                    return Err(bad());
                }
                let (cs, ce) = (col_ptr[blk] as usize, col_ptr[blk + 1] as usize);
                let kc = ce - cs;
                let span = (bc * block_w, ((bc + 1) * block_w).min(cols));
                for i in cs..ce {
                    let c = cols_idx[i] as usize;
                    if c < span.0 || c >= span.1 || (i > cs && cols_idx[i - 1] >= cols_idx[i]) {
                        return Err(bad());
                    }
                }
                if (val_ptr[blk + 1] - val_ptr[blk]) as usize != bh_eff * kc {
                    return Err(bad());
                }
            }
        }
        let mut m = CsbMatrix {
            rows,
            cols,
            block_h,
            block_w,
            block_ptr,
            block_col,
            col_ptr,
            cols_idx,
            val_ptr,
            values,
            values_f16: Vec::new(),
            scales_i8: Vec::new(),
            values_i8: Vec::new(),
        };
        m.build_sidecars();
        Ok(m)
    }

    /// Replaces the int8 sidecar with externally supplied codes and
    /// per-block scales (decoder path — stored codes round-trip
    /// bit-exactly).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `codes` does not have one entry per
    /// stored value or `scales` one entry per stored block.
    pub fn with_int8_sidecar(
        mut self,
        codes: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<CsbMatrix, ShapeError> {
        if codes.len() != self.values.len() || scales.len() != self.block_col.len() {
            return Err(ShapeError {
                op: "csb_int8_sidecar",
                lhs: (self.rows, self.cols),
                rhs: (codes.len(), scales.len()),
            });
        }
        self.values_i8 = codes;
        self.scales_i8 = scales;
        Ok(self)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block height (rows per block; the last block row may be shorter).
    pub fn block_h(&self) -> usize {
        self.block_h
    }

    /// Block width (columns per block; the last block column may be
    /// narrower).
    pub fn block_w(&self) -> usize {
        self.block_w
    }

    /// Number of block rows.
    pub fn num_block_rows(&self) -> usize {
        self.rows.div_ceil(self.block_h)
    }

    /// Number of block columns.
    pub fn num_block_cols(&self) -> usize {
        self.cols.div_ceil(self.block_w)
    }

    /// Number of stored (non-empty) blocks.
    pub fn stored_blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Total stored values (explicit zeros inside kept columns included).
    pub fn stored_len(&self) -> usize {
        self.values.len()
    }

    /// Stored-block extent per block row (`num_block_rows + 1` entries).
    pub fn block_ptr(&self) -> &[u32] {
        &self.block_ptr
    }

    /// Block-column coordinate of every stored block.
    pub fn block_col(&self) -> &[u32] {
        &self.block_col
    }

    /// Prefix offsets into [`CsbMatrix::cols_idx`].
    pub fn col_ptr(&self) -> &[u32] {
        &self.col_ptr
    }

    /// Absolute kept columns of every stored block.
    pub fn cols_idx(&self) -> &[u32] {
        &self.cols_idx
    }

    /// Prefix offsets into [`CsbMatrix::values`].
    pub fn val_ptr(&self) -> &[u32] {
        &self.val_ptr
    }

    /// Stored values, block panel by block panel.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The stored values as raw f16 bit patterns.
    pub fn values_f16(&self) -> &[u16] {
        &self.values_f16
    }

    /// The stored values as int8 codes under [`CsbMatrix::int8_scales`].
    pub fn values_i8(&self) -> &[i8] {
        &self.values_i8
    }

    /// Symmetric int8 scale per stored block.
    pub fn int8_scales(&self) -> &[f32] {
        &self.scales_i8
    }

    /// Stored values in block row `br` — the executor's cost measure for
    /// partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `br >= self.num_block_rows()`.
    pub fn block_row_cost(&self, br: usize) -> usize {
        let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
        (self.val_ptr[be] - self.val_ptr[bs]) as usize
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
        let mut y = vec![0.0f32; self.rows];
        self.spmv_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free SpMV into a caller-provided buffer. The output is
    /// overwritten (rows accumulate block by block over a zeroed buffer).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csb_spmv_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSB, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        y.fill(0.0);
        self.spmv_block_rows_into(x, 0..self.num_block_rows(), y, 0);
        Ok(())
    }

    /// Sparse matrix × dense multi-vector `Y = A X` for `b` interleaved
    /// input lanes (layout as `CsrMatrix::spmm_into`). Lane `j` is
    /// bit-identical to [`spmv_into`] of lane `j`'s column.
    ///
    /// [`spmv_into`]: CsbMatrix::spmv_into
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "csb_spmm_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSB, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        ys.fill(0.0);
        self.spmm_block_rows_into(xs, b, 0..self.num_block_rows(), ys, 0);
        Ok(())
    }

    /// Allocating form of [`spmm_into`](CsbMatrix::spmm_into).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b`.
    pub fn spmm(&self, xs: &[f32], b: usize) -> Result<Vec<f32>, ShapeError> {
        let mut ys = vec![0.0f32; self.rows * b];
        self.spmm_into(xs, b, &mut ys)?;
        Ok(ys)
    }

    /// Precision-dispatched SpMV (numeric contracts as
    /// `BspcMatrix::spmv_prec_into`; int8 uses one scale per stored block
    /// with exact i32 accumulation per block, so results are bit-identical
    /// across SIMD variants and thread counts).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != self.cols()` or
    /// `y.len() != self.rows()`.
    pub fn spmv_prec_into(
        &self,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmv_into(x, y),
            Precision::F16 => self.spmv_f16_into(x, y),
            Precision::Int8 => self.spmv_i8_into(x, y),
        }
    }

    /// Precision-dispatched batched SpMM (int8 quantizes each lane with
    /// its own scale; lane `j` matches the serial int8 SpMV of lane `j`'s
    /// column exactly).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `xs.len() != self.cols() * b` or
    /// `ys.len() != self.rows() * b`.
    pub fn spmm_prec_into(
        &self,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ShapeError> {
        match prec {
            Precision::F32 => self.spmm_into(xs, b, ys),
            Precision::F16 => self.spmm_f16_into(xs, b, ys),
            Precision::Int8 => self.spmm_i8_into(xs, b, ys),
        }
    }

    fn spmv_f16_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csb_spmv_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSB, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        y.fill(0.0);
        self.spmv_block_rows_f16_into(x, 0..self.num_block_rows(), y, 0);
        Ok(())
    }

    fn spmv_i8_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(ShapeError {
                op: "csb_spmv_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSB, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        y.fill(0.0);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut act.0);
            self.spmv_block_rows_i8_into(&act.0, sx, 0..self.num_block_rows(), y, 0);
        });
        Ok(())
    }

    fn spmm_f16_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "csb_spmm_f16_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSB, "f16"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        ys.fill(0.0);
        self.spmm_block_rows_f16_into(xs, b, 0..self.num_block_rows(), ys, 0);
        Ok(())
    }

    fn spmm_i8_into(&self, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
        if xs.len() != self.cols * b || ys.len() != self.rows * b {
            return Err(ShapeError {
                op: "csb_spmm_i8_into",
                lhs: (self.rows, self.cols),
                rhs: (xs.len(), b),
            });
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSB, "int8"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, self.rows as u64),
            (rtm_trace::key::KERNEL_NNZ, self.values.len() as u64),
        ]);
        ys.fill(0.0);
        TLS_ACT.with(|cell| {
            let act = &mut *cell.borrow_mut();
            let (xq, sxs) = (&mut act.0, &mut act.1);
            rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, xq, sxs);
            self.spmm_block_rows_i8_into(xq, sxs, b, 0..self.num_block_rows(), ys, 0);
        });
        Ok(())
    }

    /// f32 SpMV over the block-row range `brs` (engine hook shared by the
    /// serial path and the executor's chunks). Output row `r` accumulates
    /// at `y[r - y_base]` — the caller provides a **zeroed** slice; rows
    /// accumulate block by block in storage order, so serial, pooled and
    /// batched realizations add in the same sequence.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block rows or short buffers; the public
    /// entry points validate shapes first.
    pub fn spmv_block_rows_into(&self, x: &[f32], brs: Range<usize>, y: &mut [f32], y_base: usize) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (gf32, _, _, _) = &mut *cell.borrow_mut();
            for br in brs {
                let r0 = br * self.block_h;
                let bh_eff = self.block_h.min(self.rows - r0);
                let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
                for blk in bs..be {
                    let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                    let kc = ce - cs;
                    gf32.clear();
                    gf32.extend(self.cols_idx[cs..ce].iter().map(|&c| x[c as usize]));
                    let vb = self.val_ptr[blk] as usize;
                    for lr in 0..bh_eff {
                        let vals = &self.values[vb + lr * kc..vb + (lr + 1) * kc];
                        y[r0 + lr - y_base] += rtm_tensor::simd::dot_variant(v, vals, gf32);
                    }
                }
            }
        });
    }

    /// f16 SpMV over the block-row range `brs` (conventions as
    /// [`spmv_block_rows_into`](CsbMatrix::spmv_block_rows_into)).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block rows or short buffers.
    pub fn spmv_block_rows_f16_into(
        &self,
        x: &[f32],
        brs: Range<usize>,
        y: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (gf32, conv, _, _) = &mut *cell.borrow_mut();
            for br in brs {
                let r0 = br * self.block_h;
                let bh_eff = self.block_h.min(self.rows - r0);
                let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
                for blk in bs..be {
                    let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                    let kc = ce - cs;
                    gf32.clear();
                    gf32.extend(self.cols_idx[cs..ce].iter().map(|&c| x[c as usize]));
                    let (vb, ve) = (self.val_ptr[blk] as usize, self.val_ptr[blk + 1] as usize);
                    rtm_tensor::f16::f16_bits_to_f32(&self.values_f16[vb..ve], conv);
                    for lr in 0..bh_eff {
                        let vals = &conv[lr * kc..(lr + 1) * kc];
                        y[r0 + lr - y_base] += rtm_tensor::simd::dot_variant(v, vals, gf32);
                    }
                }
            }
        });
    }

    /// Int8 SpMV over the block-row range `brs` on pre-quantized
    /// activations (the caller quantizes once so parallel chunks share the
    /// same codes).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block rows or short buffers.
    pub fn spmv_block_rows_i8_into(
        &self,
        xq: &[i8],
        sx: f32,
        brs: Range<usize>,
        y: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (_, _, gi8, _) = &mut *cell.borrow_mut();
            for br in brs {
                let r0 = br * self.block_h;
                let bh_eff = self.block_h.min(self.rows - r0);
                let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
                for blk in bs..be {
                    let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                    let kc = ce - cs;
                    gi8.clear();
                    gi8.extend(self.cols_idx[cs..ce].iter().map(|&c| xq[c as usize]));
                    let vb = self.val_ptr[blk] as usize;
                    let scale = self.scales_i8[blk];
                    for lr in 0..bh_eff {
                        let vals = &self.values_i8[vb + lr * kc..vb + (lr + 1) * kc];
                        let acc = rtm_tensor::simd_i8::dot_i8_variant(v, vals, gi8);
                        // `sx · (acc · scale)` — the association order of
                        // the fused batched register tile.
                        y[r0 + lr - y_base] += sx * (acc as f32 * scale);
                    }
                }
            }
        });
    }

    /// f32 batched SpMM over the block-row range `brs` (engine hook;
    /// output row `r` accumulates at `ys[(r - y_base) · b ..]` over a
    /// zeroed slice).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block rows or short buffers; `b` must be
    /// positive.
    pub fn spmm_block_rows_into(
        &self,
        xs: &[f32],
        b: usize,
        brs: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (gf32, _, _, tmp) = &mut *cell.borrow_mut();
            tmp.resize(b, 0.0);
            for br in brs {
                let r0 = br * self.block_h;
                let bh_eff = self.block_h.min(self.rows - r0);
                let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
                for blk in bs..be {
                    let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                    let kc = ce - cs;
                    // Gather the block's activation lanes once, lane-major.
                    gf32.clear();
                    for &c in &self.cols_idx[cs..ce] {
                        let base = c as usize * b;
                        gf32.extend_from_slice(&xs[base..base + b]);
                    }
                    let vb = self.val_ptr[blk] as usize;
                    for lr in 0..bh_eff {
                        let vals = &self.values[vb + lr * kc..vb + (lr + 1) * kc];
                        rtm_tensor::simd::dot_batch_variant(v, vals, gf32, b, tmp);
                        let o = (r0 + lr - y_base) * b;
                        for (yj, tj) in ys[o..o + b].iter_mut().zip(tmp.iter()) {
                            *yj += tj;
                        }
                    }
                }
            }
        });
    }

    /// f16 batched SpMM over the block-row range `brs` (engine hook).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block rows or short buffers; `b` must be
    /// positive.
    pub fn spmm_block_rows_f16_into(
        &self,
        xs: &[f32],
        b: usize,
        brs: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (gf32, conv, _, tmp) = &mut *cell.borrow_mut();
            tmp.resize(b, 0.0);
            for br in brs {
                let r0 = br * self.block_h;
                let bh_eff = self.block_h.min(self.rows - r0);
                let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
                for blk in bs..be {
                    let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                    let kc = ce - cs;
                    gf32.clear();
                    for &c in &self.cols_idx[cs..ce] {
                        let base = c as usize * b;
                        gf32.extend_from_slice(&xs[base..base + b]);
                    }
                    let (vb, ve) = (self.val_ptr[blk] as usize, self.val_ptr[blk + 1] as usize);
                    rtm_tensor::f16::f16_bits_to_f32(&self.values_f16[vb..ve], conv);
                    for lr in 0..bh_eff {
                        let vals = &conv[lr * kc..(lr + 1) * kc];
                        rtm_tensor::simd::dot_batch_variant(v, vals, gf32, b, tmp);
                        let o = (r0 + lr - y_base) * b;
                        for (yj, tj) in ys[o..o + b].iter_mut().zip(tmp.iter()) {
                            *yj += tj;
                        }
                    }
                }
            }
        });
    }

    /// Int8 batched SpMM over the block-row range `brs` on pre-quantized
    /// lane-major activations with per-lane scales.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block rows or short buffers; `sxs.len()`
    /// must equal `b` and `b` must be positive.
    pub fn spmm_block_rows_i8_into(
        &self,
        xq: &[i8],
        sxs: &[f32],
        b: usize,
        brs: Range<usize>,
        ys: &mut [f32],
        y_base: usize,
    ) {
        assert_eq!(sxs.len(), b, "one activation scale per lane");
        let v = rtm_tensor::simd::active_variant();
        TLS_KERNEL.with(|cell| {
            let (_, _, gi8, tmp) = &mut *cell.borrow_mut();
            tmp.resize(b, 0.0);
            for br in brs {
                let r0 = br * self.block_h;
                let bh_eff = self.block_h.min(self.rows - r0);
                let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
                for blk in bs..be {
                    let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                    let kc = ce - cs;
                    gi8.clear();
                    for &c in &self.cols_idx[cs..ce] {
                        let base = c as usize * b;
                        gi8.extend_from_slice(&xq[base..base + b]);
                    }
                    let vb = self.val_ptr[blk] as usize;
                    let seg = [kc as u32];
                    let scales = [self.scales_i8[blk]];
                    for lr in 0..bh_eff {
                        let vals = &self.values_i8[vb + lr * kc..vb + (lr + 1) * kc];
                        // The fused tile yields `sxs[j] · (acc_j · scale)`
                        // per lane — the serial hook's exact expression —
                        // which then accumulates in the same block order.
                        rtm_tensor::simd_i8::row_block_dots_batch_i8(
                            v, vals, gi8, b, &seg, &scales, sxs, tmp,
                        );
                        let o = (r0 + lr - y_base) * b;
                        for (yj, tj) in ys[o..o + b].iter_mut().zip(tmp.iter()) {
                            *yj += tj;
                        }
                    }
                }
            }
        });
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for br in 0..self.num_block_rows() {
            let r0 = br * self.block_h;
            let bh_eff = self.block_h.min(self.rows - r0);
            let (bs, be) = (self.block_ptr[br] as usize, self.block_ptr[br + 1] as usize);
            for blk in bs..be {
                let (cs, ce) = (self.col_ptr[blk] as usize, self.col_ptr[blk + 1] as usize);
                let kc = ce - cs;
                let vb = self.val_ptr[blk] as usize;
                for lr in 0..bh_eff {
                    for (i, &c) in self.cols_idx[cs..ce].iter().enumerate() {
                        m[(r0 + lr, c as usize)] = self.values[vb + lr * kc + i];
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::gemm;

    fn example() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0, 0.0, 5.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 4.0, 6.0, 0.0],
            &[0.5, 0.0, 0.0, 0.0, 0.0, -1.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_dense_roundtrip_and_structure() {
        let d = example();
        let m = CsbMatrix::from_dense(&d, 2, 3).unwrap();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 6);
        assert_eq!(m.num_block_rows(), 3);
        assert_eq!(m.num_block_cols(), 2);
        assert_eq!(m.to_dense(), d);
        // Empty blocks cost nothing: block row 2 (rows 4..5) is all zero.
        assert_eq!(m.block_row_cost(2), 0);
        assert!(m.block_row_cost(0) > 0);
    }

    #[test]
    fn block_size_validation() {
        let d = example();
        assert!(CsbMatrix::from_dense(&d, 0, 2).is_err());
        assert!(CsbMatrix::from_dense(&d, 2, 0).is_err());
        // Oversized blocks are fine — one block covers everything.
        assert!(CsbMatrix::from_dense(&d, 100, 100).is_ok());
        assert_eq!(CsbMatrix::from_dense(&d, 100, 100).unwrap().to_dense(), d);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = example();
        let m = CsbMatrix::from_dense(&d, 2, 2).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let want = gemm::gemv(&d, &x).unwrap();
        let got = m.spmv(&x).unwrap();
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-5, "{w} vs {g}");
        }
        assert!(m.spmv(&[1.0]).is_err());
    }

    #[test]
    fn from_parts_validation() {
        let m = CsbMatrix::from_dense(&example(), 2, 3).unwrap();
        // Reassembling from its own parts round-trips.
        let re = CsbMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.block_h(),
            m.block_w(),
            m.block_ptr().to_vec(),
            m.block_col().to_vec(),
            m.col_ptr().to_vec(),
            m.cols_idx().to_vec(),
            m.val_ptr().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(re, m);
        // Zero block sizes.
        assert!(CsbMatrix::from_parts(
            2,
            2,
            0,
            1,
            vec![0, 0],
            vec![],
            vec![0],
            vec![],
            vec![0],
            vec![]
        )
        .is_err());
        // Wrong block_ptr length.
        assert!(CsbMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.block_h(),
            m.block_w(),
            vec![0],
            m.block_col().to_vec(),
            m.col_ptr().to_vec(),
            m.cols_idx().to_vec(),
            m.val_ptr().to_vec(),
            m.values().to_vec(),
        )
        .is_err());
        // Out-of-span kept column.
        let mut bad_cols = m.cols_idx().to_vec();
        bad_cols[0] = 5;
        assert!(CsbMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.block_h(),
            m.block_w(),
            m.block_ptr().to_vec(),
            m.block_col().to_vec(),
            m.col_ptr().to_vec(),
            bad_cols,
            m.val_ptr().to_vec(),
            m.values().to_vec(),
        )
        .is_err());
        // Panel length mismatch.
        let mut bad_vals = m.values().to_vec();
        bad_vals.pop();
        assert!(CsbMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.block_h(),
            m.block_w(),
            m.block_ptr().to_vec(),
            m.block_col().to_vec(),
            m.col_ptr().to_vec(),
            m.cols_idx().to_vec(),
            m.val_ptr().to_vec(),
            bad_vals,
        )
        .is_err());
    }

    #[test]
    fn int8_sidecar_install() {
        let m = CsbMatrix::from_dense(&example(), 2, 2).unwrap();
        let codes = m.values_i8().to_vec();
        let scales = m.int8_scales().to_vec();
        let m2 = m.clone().with_int8_sidecar(codes, scales).unwrap();
        assert_eq!(m2, m);
        assert!(m.clone().with_int8_sidecar(vec![0; 1], vec![1.0]).is_err());
    }

    #[test]
    fn spmm_lanes_match_spmv_columns() {
        let m = CsbMatrix::from_dense(&example(), 2, 3).unwrap();
        for b in [1usize, 2, 4, 7, 8, 9] {
            let xs: Vec<f32> = (0..6 * b).map(|i| (i as f32 * 0.31).cos()).collect();
            let mut ys = vec![f32::NAN; 5 * b];
            m.spmm_into(&xs, b, &mut ys).unwrap();
            assert_eq!(m.spmm(&xs, b).unwrap(), ys);
            for j in 0..b {
                let col: Vec<f32> = (0..6).map(|c| xs[c * b + j]).collect();
                let want = m.spmv(&col).unwrap();
                for r in 0..5 {
                    assert_eq!(ys[r * b + j], want[r], "b={b} lane {j} row {r}");
                }
            }
        }
        assert!(m.spmm_into(&[0.0; 3], 2, &mut [0.0; 10]).is_err());
        assert!(m.spmm_into(&[0.0; 12], 2, &mut [0.0; 5]).is_err());
    }

    #[test]
    fn f16_kernels_match_f32_on_rounded_values() {
        let mut rng = rtm_tensor::init::rng_from_seed(51);
        let d = rtm_tensor::init::uniform(20, 14, -1.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                rtm_tensor::f16::quantize_f16(v)
            }
        });
        let m = CsbMatrix::from_dense(&d, 4, 4).unwrap();
        let x: Vec<f32> = (0..14).map(|i| (i as f32 * 0.43).sin()).collect();
        let want = m.spmv(&x).unwrap();
        let mut got = vec![f32::NAN; 20];
        m.spmv_prec_into(Precision::F16, &x, &mut got).unwrap();
        assert_eq!(got, want);
        let b = 4usize;
        let xs: Vec<f32> = (0..14 * b).map(|i| (i as f32 * 0.19).cos()).collect();
        let mut ys = vec![f32::NAN; 20 * b];
        m.spmm_prec_into(Precision::F16, &xs, b, &mut ys).unwrap();
        let mut want_m = vec![0.0f32; 20 * b];
        m.spmm_into(&xs, b, &mut want_m).unwrap();
        assert_eq!(ys, want_m);
    }

    #[test]
    fn i8_kernels_bounded_and_lane_consistent() {
        let mut rng = rtm_tensor::init::rng_from_seed(62);
        let d = rtm_tensor::init::uniform(19, 13, -1.5, 1.5, &mut rng).map(|v| {
            if v.abs() < 0.4 {
                0.0
            } else {
                v
            }
        });
        let m = CsbMatrix::from_dense(&d, 4, 4).unwrap();
        assert_eq!(m.int8_scales().len(), m.stored_blocks());
        let x: Vec<f32> = (0..13).map(|i| (i as f32 * 0.61).sin()).collect();
        let want = gemm::gemv(&d, &x).unwrap();
        let mut got = vec![0.0f32; 19];
        m.spmv_prec_into(Precision::Int8, &x, &mut got).unwrap();
        let wmax = d.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let xmax = x.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let smax = m.int8_scales().iter().fold(0.0f32, |a, v| a.max(*v));
        let sx = xmax / 127.0;
        let bound = 13.0 * (0.5 * smax * xmax + 0.5 * sx * wmax + 0.25 * smax * sx) + 1e-4;
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= bound, "{w} vs {g} (bound {bound})");
        }
        // Batched int8 lanes are exactly the serial int8 columns.
        for b in [1usize, 3, 6, 8, 11] {
            let xs: Vec<f32> = (0..13 * b).map(|i| (i as f32 * 0.83).cos()).collect();
            let mut ys = vec![f32::NAN; 19 * b];
            m.spmm_prec_into(Precision::Int8, &xs, b, &mut ys).unwrap();
            for j in 0..b {
                let col: Vec<f32> = (0..13).map(|c| xs[c * b + j]).collect();
                let mut yy = vec![0.0f32; 19];
                m.spmv_prec_into(Precision::Int8, &col, &mut yy).unwrap();
                for r in 0..19 {
                    assert_eq!(ys[r * b + j], yy[r], "b={b} lane {j} row {r}");
                }
            }
        }
    }

    /// Randomized dense↔CSB round-trip across block shapes.
    #[test]
    fn prop_roundtrip() {
        for seed in 0u64..300 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..12);
            let cols = rng.gen_range(1usize..12);
            let bh = rng.gen_range(1usize..6);
            let bw = rng.gen_range(1usize..6);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.5 {
                    0.0
                } else {
                    v
                }
            });
            let m = CsbMatrix::from_dense(&dense, bh, bw).unwrap();
            assert_eq!(m.to_dense(), dense, "seed {seed}");
        }
    }

    /// Randomized SpMV-vs-GEMV agreement.
    #[test]
    fn prop_spmv_equals_gemv() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..10);
            let cols = rng.gen_range(1usize..10);
            let bh = rng.gen_range(1usize..5);
            let bw = rng.gen_range(1usize..5);
            let dense = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.3 {
                    0.0
                } else {
                    v
                }
            });
            let x: Vec<f32> = (0..cols).map(|i| (i as f32).sin()).collect();
            let want = gemm::gemv(&dense, &x).unwrap();
            let got = CsbMatrix::from_dense(&dense, bh, bw)
                .unwrap()
                .spmv(&x)
                .unwrap();
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-4, "seed {seed}");
            }
        }
    }
}
