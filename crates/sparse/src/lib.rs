#![warn(missing_docs)]

//! # rtm-sparse
//!
//! Sparse matrix formats and kernels for the RTMobile reproduction.
//!
//! The paper contrasts three ways of storing a pruned RNN weight matrix:
//!
//! * **CSR** ([`CsrMatrix`]) — the conventional compressed-sparse-row format
//!   that unstructured pruning (ESE-style) is stuck with: one explicit column
//!   index per nonzero;
//! * **CSC** ([`CscMatrix`]) — column-compressed twin, provided for the
//!   comparison experiments and for transposed products;
//! * **BSPC** ([`BspcMatrix`]) — the paper's *Block-based Structured Pruning
//!   Compact* format (§IV-B-c): because BSP prunes whole columns inside each
//!   (row-stripe × column-block) and whole rows globally, the column indices
//!   are shared by *all rows in a stripe* and need to be stored only once per
//!   block, shrinking the index array by roughly the stripe height. BSPC also
//!   carries the matrix-reorder permutation so the input feature map can be
//!   matched to reordered rows;
//! * **BBS** ([`BbsMatrix`]) — bank-balanced rows (the BBS scheme of Table I):
//!   every row stores a fixed nonzero count per equal-width column bank, so
//!   the layout is fully regular and the per-row cost uniform;
//! * **CSB** ([`CsbMatrix`]) — compressed structured blocks (CSB-RNN family):
//!   per-block column unions over short `block_h`-row spans, the middle ground
//!   between CSR's per-entry indices and BSPC's per-stripe unions.
//!
//! [`footprint`] accounts the exact byte cost of each representation — the
//! quantity behind the paper's memory-bound analysis in Table II.
//!
//! # Example
//!
//! ```
//! use rtm_tensor::Matrix;
//! use rtm_sparse::CsrMatrix;
//!
//! # fn main() -> Result<(), rtm_tensor::ShapeError> {
//! let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]])?;
//! let csr = CsrMatrix::from_dense(&dense);
//! assert_eq!(csr.nnz(), 2);
//! assert_eq!(csr.spmv(&[1.0, 1.0])?, vec![1.0, 2.0]);
//! # Ok(())
//! # }
//! ```

pub mod bbs;
pub mod bspc;
pub mod csb;
pub mod csc;
pub mod csr;
pub mod footprint;
pub mod io;

pub use bbs::BbsMatrix;
pub use bspc::{BspcError, BspcMatrix};
pub use csb::CsbMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use footprint::{Footprint, Precision};
pub use io::DecodeError;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile() {
        let csr = super::CsrMatrix::from_dense(&rtm_tensor::Matrix::zeros(1, 1));
        assert_eq!(csr.nnz(), 0);
    }
}
