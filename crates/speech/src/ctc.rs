//! CTC decoding: greedy best-path and prefix beam search, streaming.
//!
//! The CTC output convention (Graves et al. 2006) reserves one class as the
//! *blank* symbol: the network may emit blank between (or instead of)
//! phones, repeated non-blank frames collapse to one symbol, and a blank
//! separates genuine doubled symbols. For the 39-phone head this crate maps
//! the blank onto the silence phone (`sil`, [`crate::phones::SILENCE`]) —
//! the synthetic corpus already pads utterance boundaries with it, so the
//! frame classifier needs no retraining to be decoded as a CTC head.
//!
//! Two decoders, both pure Rust and both implementing
//! [`crate::decode::Decoder`]:
//!
//! * [`CtcGreedyDecoder`] — best-path decoding: per-frame argmax, collapse
//!   repeats, drop blanks. Exact for peaked posteriors and O(classes) per
//!   frame.
//! * [`CtcBeamDecoder`] — prefix beam search with log-sum-exp merging of
//!   the blank/non-blank path probabilities per prefix (Hannun et al.
//!   2014). Beam width 1 specializes to the greedy algorithm by
//!   construction, which makes `beam(1) == greedy` an API guarantee rather
//!   than a numerical coincidence.
//!
//! Both decoders carry the trailing-blank endpointing heuristic and are
//! deterministic: beams are merged in a [`std::collections::BTreeMap`] and
//! pruned under total ordering, so streaming decode is bit-identical to
//! offline decode and independent of hash-map iteration order.

use std::collections::BTreeMap;

use crate::decode::{frame_argmax, Decoder, Endpointer, Hypothesis};
use crate::phones;

/// Default trailing-blank endpoint threshold, in frames (10 ms hop ⇒
/// 200 ms of sustained silence).
pub const DEFAULT_TRAILING_BLANKS: usize = 20;

/// Conventional blank index for a `classes`-way CTC head: the silence
/// phone when the head matches the 39-phone inventory, class 0 otherwise.
pub fn blank_for(classes: usize) -> usize {
    if classes > phones::SILENCE {
        phones::SILENCE
    } else {
        0
    }
}

/// Numerically stable log(exp(a) + exp(b)) under total ordering; never
/// panics on NaN (propagates it instead).
fn log_sum_exp(a: f32, b: f32) -> f32 {
    if a == f32::NEG_INFINITY {
        return b;
    }
    if b == f32::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a.total_cmp(&b) == std::cmp::Ordering::Less {
        (b, a)
    } else {
        (a, b)
    };
    hi + (lo - hi).exp().ln_1p()
}

/// Log-softmax of one logits frame, NaN-tolerant (propagates, no panics).
fn log_softmax(frame: &[f32]) -> Vec<f32> {
    let max = frame.iter().copied().max_by(f32::total_cmp).unwrap_or(0.0);
    let sum: f32 = frame.iter().map(|&v| (v - max).exp()).sum();
    let log_z = max + sum.max(f32::MIN_POSITIVE).ln();
    frame.iter().map(|&v| v - log_z).collect()
}

/// CTC best-path (greedy) decoder: per-frame argmax, collapse repeats,
/// drop blanks. Streaming-exact — the greedy rule is frame-local.
#[derive(Debug, Clone)]
pub struct CtcGreedyDecoder {
    blank: usize,
    symbols: Vec<usize>,
    prev_class: Option<usize>,
    score: f32,
    frames: usize,
    endpointer: Endpointer,
    emitted: (usize, bool),
}

impl CtcGreedyDecoder {
    /// Creates a greedy decoder with the given blank class and the default
    /// endpoint threshold.
    pub fn new(blank: usize) -> Self {
        Self::with_endpoint(blank, DEFAULT_TRAILING_BLANKS)
    }

    /// Creates a greedy decoder with an explicit trailing-blank endpoint
    /// threshold (in frames).
    pub fn with_endpoint(blank: usize, trailing_blanks: usize) -> Self {
        CtcGreedyDecoder {
            blank,
            symbols: Vec::new(),
            prev_class: None,
            score: 0.0,
            frames: 0,
            endpointer: Endpointer::new(blank, trailing_blanks),
            emitted: (0, false),
        }
    }

    fn hypothesis(&self, endpoint: bool, is_final: bool) -> Hypothesis {
        Hypothesis {
            symbols: self.symbols.clone(),
            score: self.score,
            frames: self.frames,
            endpoint,
            is_final,
        }
    }
}

impl Decoder for CtcGreedyDecoder {
    fn push_frame(&mut self, logits: &[f32]) -> Option<Hypothesis> {
        if logits.is_empty() {
            return None;
        }
        let lp = log_softmax(logits);
        let c = frame_argmax(&lp);
        self.score += lp[c];
        self.frames += 1;
        if c != self.blank && self.prev_class != Some(c) {
            self.symbols.push(c);
        }
        self.prev_class = Some(c);
        let endpoint = self.endpointer.observe(c);
        if (self.symbols.len(), endpoint) != self.emitted {
            self.emitted = (self.symbols.len(), endpoint);
            Some(self.hypothesis(endpoint, false))
        } else {
            None
        }
    }

    fn finish(&mut self) -> Hypothesis {
        self.hypothesis(self.emitted.1, true)
    }

    fn reset(&mut self) {
        self.symbols.clear();
        self.prev_class = None;
        self.score = 0.0;
        self.frames = 0;
        self.endpointer.reset();
        self.emitted = (0, false);
    }
}

/// One beam entry: a blank-free prefix with separate log-probabilities for
/// the path ensembles ending in blank (`p_blank`) and in the prefix's last
/// symbol (`p_non_blank`).
#[derive(Debug, Clone)]
struct Beam {
    prefix: Vec<usize>,
    p_blank: f32,
    p_non_blank: f32,
}

impl Beam {
    fn total(&self) -> f32 {
        log_sum_exp(self.p_blank, self.p_non_blank)
    }
}

/// CTC prefix beam search decoder with log-sum-exp path merging.
///
/// Keeps the `width` most probable blank-free prefixes per frame; each
/// prefix aggregates every frame alignment that collapses to it. Width 1
/// runs the greedy best-path algorithm (see the module docs for why that
/// equivalence is by construction).
#[derive(Debug, Clone)]
pub struct CtcBeamDecoder {
    blank: usize,
    width: usize,
    /// Width-1 fast path: prefix search degenerates to best-path.
    greedy: Option<CtcGreedyDecoder>,
    beams: Vec<Beam>,
    frames: usize,
    endpointer: Endpointer,
    emitted: (Vec<usize>, bool),
}

impl CtcBeamDecoder {
    /// Creates a beam decoder with the given blank class and beam width
    /// (≥ 1), using the default endpoint threshold.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(blank: usize, width: usize) -> Self {
        Self::with_endpoint(blank, width, DEFAULT_TRAILING_BLANKS)
    }

    /// Creates a beam decoder with an explicit trailing-blank endpoint
    /// threshold (in frames).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_endpoint(blank: usize, width: usize, trailing_blanks: usize) -> Self {
        assert!(width >= 1, "beam width must be at least 1");
        let greedy = (width == 1).then(|| CtcGreedyDecoder::with_endpoint(blank, trailing_blanks));
        CtcBeamDecoder {
            blank,
            width,
            greedy,
            beams: vec![Beam {
                prefix: Vec::new(),
                p_blank: 0.0,
                p_non_blank: f32::NEG_INFINITY,
            }],
            frames: 0,
            endpointer: Endpointer::new(blank, trailing_blanks),
            emitted: (Vec::new(), false),
        }
    }

    fn best(&self) -> &Beam {
        // `beams` is kept sorted best-first by the prune step.
        &self.beams[0]
    }

    fn hypothesis(&self, endpoint: bool, is_final: bool) -> Hypothesis {
        let best = self.best();
        Hypothesis {
            symbols: best.prefix.clone(),
            score: best.total(),
            frames: self.frames,
            endpoint,
            is_final,
        }
    }
}

impl Decoder for CtcBeamDecoder {
    fn push_frame(&mut self, logits: &[f32]) -> Option<Hypothesis> {
        if let Some(greedy) = &mut self.greedy {
            return greedy.push_frame(logits);
        }
        if logits.is_empty() {
            return None;
        }
        let lp = log_softmax(logits);
        self.frames += 1;

        // Merge successor prefixes deterministically (BTreeMap keeps
        // lexicographic prefix order, so score ties prune identically on
        // every run).
        let mut next: BTreeMap<Vec<usize>, (f32, f32)> = BTreeMap::new();
        let mut upd = |prefix: Vec<usize>, blank_part: f32, non_blank_part: f32| {
            let entry = next
                .entry(prefix)
                .or_insert((f32::NEG_INFINITY, f32::NEG_INFINITY));
            entry.0 = log_sum_exp(entry.0, blank_part);
            entry.1 = log_sum_exp(entry.1, non_blank_part);
        };
        for beam in &self.beams {
            let total = beam.total();
            for (c, &lpc) in lp.iter().enumerate() {
                if c == self.blank {
                    // Any path + blank stays on the same prefix.
                    upd(beam.prefix.clone(), total + lpc, f32::NEG_INFINITY);
                } else if beam.prefix.last() == Some(&c) {
                    // Repeat of the last symbol: without an intervening
                    // blank it collapses (same prefix, non-blank paths
                    // only); after a blank it extends the prefix.
                    upd(
                        beam.prefix.clone(),
                        f32::NEG_INFINITY,
                        beam.p_non_blank + lpc,
                    );
                    let mut ext = beam.prefix.clone();
                    ext.push(c);
                    upd(ext, f32::NEG_INFINITY, beam.p_blank + lpc);
                } else {
                    let mut ext = beam.prefix.clone();
                    ext.push(c);
                    upd(ext, f32::NEG_INFINITY, total + lpc);
                }
            }
        }

        // Prune to the top `width` prefixes, best first; ties keep
        // lexicographic order (stable sort over BTreeMap iteration).
        let mut beams: Vec<Beam> = next
            .into_iter()
            .map(|(prefix, (p_blank, p_non_blank))| Beam {
                prefix,
                p_blank,
                p_non_blank,
            })
            .collect();
        beams.sort_by(|a, b| b.total().total_cmp(&a.total()));
        beams.truncate(self.width);
        self.beams = beams;

        let endpoint = self.endpointer.observe(frame_argmax(&lp));
        let best_prefix = &self.beams[0].prefix;
        if (best_prefix, endpoint) != (&self.emitted.0, self.emitted.1) {
            self.emitted = (best_prefix.clone(), endpoint);
            Some(self.hypothesis(endpoint, false))
        } else {
            None
        }
    }

    fn finish(&mut self) -> Hypothesis {
        if let Some(greedy) = &mut self.greedy {
            return greedy.finish();
        }
        self.hypothesis(self.emitted.1, true)
    }

    fn reset(&mut self) {
        if let Some(greedy) = &mut self.greedy {
            greedy.reset();
        }
        self.beams = vec![Beam {
            prefix: Vec::new(),
            p_blank: 0.0,
            p_non_blank: f32::NEG_INFINITY,
        }];
        self.frames = 0;
        self.endpointer.reset();
        self.emitted = (Vec::new(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_offline;

    const B: usize = 0; // blank for the tiny test lattices

    /// Logits strongly favouring one class per frame.
    fn peaked(labels: &[usize], classes: usize) -> Vec<Vec<f32>> {
        labels
            .iter()
            .map(|&l| {
                (0..classes)
                    .map(|c| if c == l { 6.0 } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn greedy_collapses_and_drops_blanks() {
        // B 1 1 B 2 2 B → [1, 2]
        let logits = peaked(&[B, 1, 1, B, 2, 2, B], 3);
        let hyp = decode_offline(&mut CtcGreedyDecoder::new(B), &logits);
        assert_eq!(hyp.symbols, vec![1, 2]);
        assert_eq!(hyp.frames, 7);
    }

    #[test]
    fn blank_separates_doubled_symbols() {
        // 1 1 B 1 → [1, 1]; without the blank it would collapse to [1].
        let logits = peaked(&[1, 1, B, 1], 3);
        let hyp = decode_offline(&mut CtcGreedyDecoder::new(B), &logits);
        assert_eq!(hyp.symbols, vec![1, 1]);
        let collapsed = decode_offline(&mut CtcGreedyDecoder::new(B), &peaked(&[1, 1, 1], 3));
        assert_eq!(collapsed.symbols, vec![1]);
    }

    #[test]
    fn all_blank_decodes_empty() {
        let logits = peaked(&[B, B, B, B], 3);
        let hyp = decode_offline(&mut CtcGreedyDecoder::new(B), &logits);
        assert!(hyp.symbols.is_empty());
    }

    #[test]
    fn beam_width_one_is_greedy() {
        let logits = peaked(&[B, 1, 2, B, 2, 1, 1, B], 4);
        let greedy = decode_offline(&mut CtcGreedyDecoder::new(B), &logits);
        let beam1 = decode_offline(&mut CtcBeamDecoder::new(B, 1), &logits);
        assert_eq!(greedy, beam1, "width-1 beam must be exactly greedy");
    }

    #[test]
    fn beam_merges_paths_greedy_misses() {
        // The classic prefix-search counterexample: per-frame the blank
        // wins (0.6), so greedy decodes []. But the paths [1,1], [1,B],
        // [B,1] all collapse to [1] with mass 0.4*0.4 + 0.4*0.6 + 0.6*0.4
        // = 0.64 > 0.36 — the beam decoder merges them and finds [1].
        let frame = vec![0.6f32.ln(), 0.4f32.ln(), f32::MIN_POSITIVE.ln()];
        let logits = vec![frame.clone(), frame];
        let greedy = decode_offline(&mut CtcGreedyDecoder::new(B), &logits);
        assert!(greedy.symbols.is_empty(), "greedy takes the blank path");
        let beam = decode_offline(&mut CtcBeamDecoder::new(B, 4), &logits);
        assert_eq!(beam.symbols, vec![1], "beam merges the collapsed paths");
        // Check the merged score: ln(0.64) within fp32 tolerance.
        assert!((beam.score - 0.64f32.ln()).abs() < 1e-4);
    }

    #[test]
    fn golden_decode_on_hand_built_lattice() {
        // Frames (classes B,1,2):    probabilities
        //   t0: 1 strong              [0.1, 0.8, 0.1]
        //   t1: blank                 [0.8, 0.1, 0.1]
        //   t2: 2 vs 1 close          [0.1, 0.4, 0.5]
        //   t3: 2 strong              [0.1, 0.1, 0.8]
        let rows = [
            [0.1f32, 0.8, 0.1],
            [0.8, 0.1, 0.1],
            [0.1, 0.4, 0.5],
            [0.1, 0.1, 0.8],
        ];
        let logits: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|p| p.ln()).collect())
            .collect();
        for width in [2, 4, 8] {
            let hyp = decode_offline(&mut CtcBeamDecoder::new(B, width), &logits);
            assert_eq!(hyp.symbols, vec![1, 2], "width {width}");
        }
    }

    #[test]
    fn streaming_equals_offline_bitwise() {
        let logits = peaked(&[B, 1, 1, B, 2, B, 2, 2, B, B], 3);
        for width in [1usize, 2, 4] {
            let offline = decode_offline(&mut CtcBeamDecoder::new(B, width), &logits);
            let mut streaming = CtcBeamDecoder::new(B, width);
            let mut last = None;
            for f in &logits {
                if let Some(h) = streaming.push_frame(f) {
                    last = Some(h);
                }
            }
            let fin = streaming.finish();
            assert_eq!(offline, fin, "width {width}");
            // The last partial already carried the final symbols.
            assert_eq!(last.unwrap().symbols, fin.symbols);
        }
    }

    #[test]
    fn endpoint_fires_after_trailing_blanks() {
        let logits = peaked(&[1, 1, B, B, B, B], 3);
        let mut d = CtcGreedyDecoder::with_endpoint(B, 3);
        let mut fired_at = None;
        for (t, f) in logits.iter().enumerate() {
            if let Some(h) = d.push_frame(f) {
                if h.endpoint {
                    fired_at.get_or_insert(t);
                }
            }
        }
        assert_eq!(fired_at, Some(4), "3rd consecutive blank frame");
        assert!(d.finish().endpoint);
    }

    #[test]
    fn endpoint_clears_when_speech_resumes() {
        let logits = peaked(&[1, B, B, 2], 3);
        let mut d = CtcBeamDecoder::with_endpoint(B, 2, 2);
        let mut states = Vec::new();
        for f in &logits {
            if let Some(h) = d.push_frame(f) {
                states.push((h.symbols.clone(), h.endpoint));
            }
        }
        assert_eq!(
            states,
            vec![
                (vec![1], false),
                (vec![1], true),     // trailing blanks hit the threshold
                (vec![1, 2], false), // speech resumed
            ]
        );
    }

    #[test]
    fn blank_for_matches_inventory() {
        assert_eq!(blank_for(crate::phones::NUM_PHONES), crate::phones::SILENCE);
        assert_eq!(blank_for(4), 0);
    }

    #[test]
    fn nan_and_infinite_logits_never_panic() {
        let weird = vec![
            vec![f32::NAN, 1.0, 2.0],
            vec![f32::INFINITY, f32::NEG_INFINITY, 0.0],
            vec![f32::NAN, f32::NAN, f32::NAN],
            vec![1.0, 1.0, 1.0],
        ];
        for width in [1usize, 4] {
            let mut d = CtcBeamDecoder::new(B, width);
            let hyp = decode_offline(&mut d, &weird);
            assert!(hyp.symbols.iter().all(|&s| s < 3), "symbols stay in range");
        }
    }

    #[test]
    fn zero_length_utterance() {
        let mut d = CtcBeamDecoder::new(B, 4);
        let hyp = d.finish();
        assert!(hyp.symbols.is_empty());
        assert_eq!(hyp.frames, 0);
        assert!(hyp.is_final);
    }
}
