//! Synthetic TIMIT-like corpus generation.
//!
//! The generative model, all seeded and deterministic:
//!
//! 1. every phone gets an acoustic **prototype** vector in feature space,
//!    drawn once per corpus;
//! 2. every **dialect region** (8, like TIMIT) gets a small global shift;
//!    every **speaker** a slightly larger personal shift on top;
//! 3. sentences are phone sequences from a seeded **Markov chain** with a
//!    silence-biased start/end (TIMIT's ten-sentences-per-speaker structure
//!    is mirrored by `sentences_per_speaker`);
//! 4. each phone lasts a random number of frames; each frame is the
//!    prototype + dialect + speaker shifts + white noise, with a linear
//!    **coarticulation** ramp blending into the next phone over its final
//!    frames.
//!
//! The `noise` and `speaker_spread` knobs set task difficulty; the defaults
//! put the dense GRU's PER in the 10–20% band so pruning-induced
//! degradation is visible in both directions.

use crate::phones::{NUM_PHONES, SILENCE};
use rtm_tensor::init::{rng_from_seed, standard_normal};
use rtm_tensor::rng::StdRng;

/// One utterance: frames with frame-level labels and the phone sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Utterance {
    /// Acoustic feature frames.
    pub frames: Vec<Vec<f32>>,
    /// Per-frame phone labels (aligned).
    pub labels: Vec<usize>,
    /// The underlying phone sequence (collapsed labels).
    pub phones: Vec<usize>,
    /// Speaker id.
    pub speaker: usize,
    /// Dialect region id.
    pub dialect: usize,
}

/// Corpus generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Acoustic feature dimension.
    pub feature_dim: usize,
    /// Number of speakers (TIMIT: 630).
    pub speakers: usize,
    /// Number of dialect regions (TIMIT: 8).
    pub dialects: usize,
    /// Sentences generated per speaker (TIMIT: 10).
    pub sentences_per_speaker: usize,
    /// Phones per sentence.
    pub phones_per_sentence: usize,
    /// Minimum frames per phone.
    pub min_phone_frames: usize,
    /// Maximum frames per phone.
    pub max_phone_frames: usize,
    /// White-noise standard deviation added per frame.
    pub noise: f32,
    /// Speaker-shift standard deviation.
    pub speaker_spread: f32,
    /// Dialect-shift standard deviation.
    pub dialect_spread: f32,
}

impl CorpusConfig {
    /// A TIMIT-shaped default scaled to laptop training budgets:
    /// 24 speakers × 4 sentences.
    pub fn default_scaled() -> CorpusConfig {
        CorpusConfig {
            feature_dim: 13,
            speakers: 24,
            dialects: 8,
            sentences_per_speaker: 4,
            phones_per_sentence: 8,
            min_phone_frames: 3,
            max_phone_frames: 7,
            noise: 0.45,
            speaker_spread: 0.25,
            dialect_spread: 0.1,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> CorpusConfig {
        CorpusConfig {
            speakers: 4,
            sentences_per_speaker: 2,
            phones_per_sentence: 4,
            ..CorpusConfig::default_scaled()
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig::default_scaled()
    }
}

/// A generated corpus with a train/test split by speaker.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeechCorpus {
    /// All utterances, speaker-major.
    pub utterances: Vec<Utterance>,
    /// The configuration used.
    pub config: CorpusConfig,
    /// Per-phone prototype vectors (for inspection/tests).
    pub prototypes: Vec<Vec<f32>>,
}

impl SpeechCorpus {
    /// Generates a corpus deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero dims/speakers, inverted
    /// frame bounds).
    pub fn generate(cfg: &CorpusConfig, seed: u64) -> SpeechCorpus {
        assert!(cfg.feature_dim > 0, "feature_dim must be positive");
        assert!(
            cfg.speakers > 0 && cfg.dialects > 0,
            "speakers/dialects must be positive"
        );
        assert!(
            cfg.min_phone_frames > 0 && cfg.min_phone_frames <= cfg.max_phone_frames,
            "invalid phone duration bounds"
        );
        let mut rng = rng_from_seed(seed);

        // Phone prototypes: unit-norm-ish random directions scaled so
        // classes are separable but overlapping under the noise level.
        let prototypes: Vec<Vec<f32>> = (0..NUM_PHONES)
            .map(|_| {
                (0..cfg.feature_dim)
                    .map(|_| standard_normal(&mut rng))
                    .collect()
            })
            .collect();

        // Dialect and speaker shifts.
        let dialect_shift: Vec<Vec<f32>> = (0..cfg.dialects)
            .map(|_| {
                (0..cfg.feature_dim)
                    .map(|_| cfg.dialect_spread * standard_normal(&mut rng))
                    .collect()
            })
            .collect();
        let speaker_shift: Vec<Vec<f32>> = (0..cfg.speakers)
            .map(|_| {
                (0..cfg.feature_dim)
                    .map(|_| cfg.speaker_spread * standard_normal(&mut rng))
                    .collect()
            })
            .collect();

        // Phonotactic bigram: a seeded row-stochastic transition preference.
        let transition_bias: Vec<Vec<f32>> = (0..NUM_PHONES)
            .map(|_| {
                (0..NUM_PHONES)
                    .map(|_| rng.gen_range(0.0f32..1.0))
                    .collect()
            })
            .collect();

        let mut utterances = Vec::new();
        for (speaker, shift) in speaker_shift.iter().enumerate() {
            let dialect = speaker % cfg.dialects;
            for _ in 0..cfg.sentences_per_speaker {
                let utt = generate_utterance(
                    cfg,
                    &prototypes,
                    &dialect_shift[dialect],
                    shift,
                    &transition_bias,
                    speaker,
                    dialect,
                    &mut rng,
                );
                utterances.push(utt);
            }
        }

        SpeechCorpus {
            utterances,
            config: cfg.clone(),
            prototypes,
        }
    }

    /// Splits into (train, test) by speaker: speakers with
    /// `id % test_every == 0` go to test, mirroring TIMIT's disjoint
    /// speaker split.
    ///
    /// # Panics
    ///
    /// Panics if `test_every < 2`.
    pub fn split(&self, test_every: usize) -> (Vec<&Utterance>, Vec<&Utterance>) {
        assert!(test_every >= 2, "test_every must be at least 2");
        let mut train = Vec::new();
        let mut test = Vec::new();
        for u in &self.utterances {
            if u.speaker % test_every == 0 {
                test.push(u);
            } else {
                train.push(u);
            }
        }
        (train, test)
    }

    /// Total frame count.
    pub fn total_frames(&self) -> usize {
        self.utterances.iter().map(|u| u.frames.len()).sum()
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_utterance(
    cfg: &CorpusConfig,
    prototypes: &[Vec<f32>],
    dialect_shift: &[f32],
    speaker_shift: &[f32],
    transition_bias: &[Vec<f32>],
    speaker: usize,
    dialect: usize,
    rng: &mut StdRng,
) -> Utterance {
    // Phone sequence: silence, then Markov steps, then silence.
    let mut phones = vec![SILENCE];
    let mut current = SILENCE;
    for _ in 0..cfg.phones_per_sentence {
        // Sample the next phone proportional to the bigram bias, excluding
        // immediate repeats so collapsed decoding is well-defined.
        let row = &transition_bias[current];
        let total: f32 = row
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != current)
            .map(|(_, w)| w)
            .sum();
        let mut pick = rng.gen_range(0.0f32..total.max(f32::EPSILON));
        let mut next = (current + 1) % NUM_PHONES;
        for (p, w) in row.iter().enumerate() {
            if p == current {
                continue;
            }
            if pick < *w {
                next = p;
                break;
            }
            pick -= *w;
        }
        phones.push(next);
        current = next;
    }
    phones.push(SILENCE);

    // Frames with coarticulation ramps.
    let mut frames = Vec::new();
    let mut labels = Vec::new();
    for (i, &p) in phones.iter().enumerate() {
        let dur = rng.gen_range(cfg.min_phone_frames..=cfg.max_phone_frames);
        let next_proto = phones.get(i + 1).map(|&n| &prototypes[n]);
        for f in 0..dur {
            // Blend toward the next phone over the final third of this one.
            let ramp_start = dur - dur.div_ceil(3);
            let alpha = match next_proto {
                Some(_) if f >= ramp_start && dur > 1 => {
                    0.5 * (f - ramp_start + 1) as f32 / (dur - ramp_start + 1) as f32
                }
                _ => 0.0,
            };
            let mut frame = Vec::with_capacity(cfg.feature_dim);
            for d in 0..cfg.feature_dim {
                let base = prototypes[p][d];
                let blended = match next_proto {
                    Some(np) => (1.0 - alpha) * base + alpha * np[d],
                    None => base,
                };
                frame.push(
                    blended
                        + dialect_shift[d]
                        + speaker_shift[d]
                        + cfg.noise * standard_normal(rng),
                );
            }
            frames.push(frame);
            labels.push(p);
        }
    }

    // Collapse for the reference phone sequence (no immediate repeats by
    // construction).
    Utterance {
        frames,
        labels,
        phones,
        speaker,
        dialect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::tiny();
        let a = SpeechCorpus::generate(&cfg, 7);
        let b = SpeechCorpus::generate(&cfg, 7);
        assert_eq!(a, b);
        let c = SpeechCorpus::generate(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn structure_matches_config() {
        let cfg = CorpusConfig::tiny();
        let corpus = SpeechCorpus::generate(&cfg, 1);
        assert_eq!(
            corpus.utterances.len(),
            cfg.speakers * cfg.sentences_per_speaker
        );
        for u in &corpus.utterances {
            assert_eq!(u.frames.len(), u.labels.len());
            assert!(u.frames.iter().all(|f| f.len() == cfg.feature_dim));
            // phones_per_sentence + 2 silences.
            assert_eq!(u.phones.len(), cfg.phones_per_sentence + 2);
            assert_eq!(u.phones[0], SILENCE);
            assert_eq!(*u.phones.last().unwrap(), SILENCE);
            assert!(u.dialect < cfg.dialects);
            // Durations bounded.
            let expected_min = u.phones.len() * cfg.min_phone_frames;
            let expected_max = u.phones.len() * cfg.max_phone_frames;
            assert!(u.frames.len() >= expected_min && u.frames.len() <= expected_max);
        }
    }

    #[test]
    fn no_immediate_phone_repeats() {
        let corpus = SpeechCorpus::generate(&CorpusConfig::tiny(), 3);
        for u in &corpus.utterances {
            for w in u.phones.windows(2) {
                assert_ne!(w[0], w[1], "Markov chain must not repeat phones");
            }
        }
    }

    #[test]
    fn labels_collapse_to_phones() {
        let corpus = SpeechCorpus::generate(&CorpusConfig::tiny(), 5);
        for u in &corpus.utterances {
            let mut collapsed = Vec::new();
            for &l in &u.labels {
                if collapsed.last() != Some(&l) {
                    collapsed.push(l);
                }
            }
            assert_eq!(collapsed, u.phones);
        }
    }

    #[test]
    fn speaker_split_is_disjoint() {
        let corpus = SpeechCorpus::generate(&CorpusConfig::tiny(), 9);
        let (train, test) = corpus.split(2);
        assert!(!train.is_empty() && !test.is_empty());
        for tr in &train {
            for te in &test {
                assert_ne!(tr.speaker, te.speaker);
            }
        }
        assert_eq!(train.len() + test.len(), corpus.utterances.len());
    }

    #[test]
    fn frames_carry_class_signal() {
        // Frames of the same phone must be closer to their own prototype
        // than to a random other prototype, on average.
        let cfg = CorpusConfig {
            noise: 0.3,
            ..CorpusConfig::tiny()
        };
        let corpus = SpeechCorpus::generate(&cfg, 11);
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum() };
        let mut own = 0.0f32;
        let mut other = 0.0f32;
        let mut n = 0;
        for u in &corpus.utterances {
            for (frame, &label) in u.frames.iter().zip(&u.labels) {
                own += dist(frame, &corpus.prototypes[label]);
                other += dist(frame, &corpus.prototypes[(label + 7) % NUM_PHONES]);
                n += 1;
            }
        }
        assert!(n > 0);
        assert!(
            own / n as f32 <= other / n as f32,
            "own {} vs other {}",
            own,
            other
        );
    }

    #[test]
    #[should_panic(expected = "test_every must be at least 2")]
    fn split_validates() {
        SpeechCorpus::generate(&CorpusConfig::tiny(), 0).split(1);
    }

    #[test]
    #[should_panic(expected = "invalid phone duration bounds")]
    fn bad_durations_rejected() {
        let cfg = CorpusConfig {
            min_phone_frames: 5,
            max_phone_frames: 3,
            ..CorpusConfig::tiny()
        };
        SpeechCorpus::generate(&cfg, 0);
    }
}
