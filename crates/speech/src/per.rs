//! Phone error rate — Table I's metric.
//!
//! PER is the Levenshtein (edit) distance between the decoded phone
//! sequence and the reference, divided by the reference length, summed over
//! a test set. Decoding from frame-level predictions uses the standard
//! collapse: consecutive identical predictions merge into one phone.

/// Levenshtein distance between two sequences.
pub fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ai) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Collapses consecutive identical frame predictions into a phone sequence.
pub fn collapse_frames(frame_preds: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    for &p in frame_preds {
        if out.last() != Some(&p) {
            out.push(p);
        }
    }
    out
}

/// Aggregated PER over a test set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerReport {
    /// Total edit-distance errors.
    pub errors: usize,
    /// Total reference phones.
    pub reference_len: usize,
    /// Frames classified correctly.
    pub frames_correct: usize,
    /// Total frames.
    pub frames_total: usize,
}

impl PerReport {
    /// Phone error rate in percent (the paper's unit). 0 for an empty set.
    pub fn per_percent(&self) -> f64 {
        if self.reference_len == 0 {
            0.0
        } else {
            100.0 * self.errors as f64 / self.reference_len as f64
        }
    }

    /// Frame-level accuracy in `[0, 1]`.
    pub fn frame_accuracy(&self) -> f64 {
        if self.frames_total == 0 {
            0.0
        } else {
            self.frames_correct as f64 / self.frames_total as f64
        }
    }

    /// Accumulates one utterance's score.
    pub fn add(
        &mut self,
        frame_preds: &[usize],
        frame_labels: &[usize],
        reference_phones: &[usize],
    ) {
        let decoded = collapse_frames(frame_preds);
        self.errors += edit_distance(&decoded, reference_phones);
        self.reference_len += reference_phones.len();
        self.frames_correct += frame_preds
            .iter()
            .zip(frame_labels)
            .filter(|(p, l)| p == l)
            .count();
        self.frames_total += frame_labels.len();
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &PerReport) {
        self.errors += other.errors;
        self.reference_len += other.reference_len;
        self.frames_correct += other.frames_correct;
        self.frames_total += other.frames_total;
    }
}

/// Convenience wrapper: PER of one prediction/reference pair, in percent.
pub fn phone_error_rate(frame_preds: &[usize], reference_phones: &[usize]) -> f64 {
    let decoded = collapse_frames(frame_preds);
    if reference_phones.is_empty() {
        return 0.0;
    }
    100.0 * edit_distance(&decoded, reference_phones) as f64 / reference_phones.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance(&[], &[]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[]), 3);
        assert_eq!(edit_distance(&[], &[1, 2]), 2);
        // One substitution.
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 9, 3]), 1);
        // One insertion.
        assert_eq!(edit_distance(&[1, 3], &[1, 2, 3]), 1);
        // One deletion.
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1);
        // kitten -> sitting (classic: 3).
        let kitten = [10, 8, 19, 19, 4, 13];
        let sitting = [18, 8, 19, 19, 8, 13, 6];
        assert_eq!(edit_distance(&kitten, &sitting), 3);
    }

    #[test]
    fn edit_distance_symmetry() {
        let a = [1, 2, 3, 4, 5];
        let b = [2, 3, 5, 7];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn collapse_merges_runs() {
        assert_eq!(collapse_frames(&[1, 1, 2, 2, 2, 1]), vec![1, 2, 1]);
        assert_eq!(collapse_frames(&[]), Vec::<usize>::new());
        assert_eq!(collapse_frames(&[5]), vec![5]);
    }

    #[test]
    fn perfect_decoding_zero_per() {
        let preds = [0, 0, 1, 1, 1, 2, 2];
        let refs = [0, 1, 2];
        assert_eq!(phone_error_rate(&preds, &refs), 0.0);
    }

    #[test]
    fn per_counts_substitutions() {
        // Decoded [0,9,2] vs reference [0,1,2]: one substitution of three.
        let preds = [0, 0, 9, 9, 2];
        let refs = [0, 1, 2];
        assert!((phone_error_rate(&preds, &refs) - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn report_accumulates() {
        let mut report = PerReport::default();
        report.add(&[0, 0, 1], &[0, 0, 1], &[0, 1]);
        report.add(&[2, 2, 2], &[2, 2, 3], &[2, 3]);
        assert_eq!(report.errors, 1); // second utterance missed phone 3
        assert_eq!(report.reference_len, 4);
        assert_eq!(report.frames_correct, 5);
        assert_eq!(report.frames_total, 6);
        assert!((report.per_percent() - 25.0).abs() < 1e-9);
        assert!((report.frame_accuracy() - 5.0 / 6.0).abs() < 1e-9);

        let mut merged = PerReport::default();
        merged.merge(&report);
        merged.merge(&report);
        assert_eq!(merged.errors, 2);
        assert_eq!(merged.frames_total, 12);
    }

    #[test]
    fn empty_report_rates() {
        let r = PerReport::default();
        assert_eq!(r.per_percent(), 0.0);
        assert_eq!(r.frame_accuracy(), 0.0);
    }
}
