//! Sequence decoding beyond frame-wise argmax, behind the [`Decoder`] API.
//!
//! Historically this module offered one free function, [`viterbi_decode`],
//! and the PER paths collapsed argmax frames with
//! [`crate::per::collapse_frames`]. Both survive unchanged, but they are now
//! thin wrappers over the unified incremental [`Decoder`] trait, which all
//! decoders — frame-argmax ([`ArgmaxDecoder`]), Viterbi smoothing
//! ([`ViterbiDecoder`]), and the CTC family ([`crate::ctc`]) — implement.
//!
//! The trait is *streaming-first*: frames are pushed one at a time and the
//! decoder emits a partial [`Hypothesis`] whenever it changes, so the same
//! object serves both offline scoring (push everything, then
//! [`Decoder::finish`]) and live serving (emit partials + endpoint events as
//! audio arrives). Decoders are deterministic functions of the logits
//! sequence: pushing frames one by one yields bit-identical hypotheses to
//! decoding the same logits offline, which is what lets the serve path and
//! the batch scorer share golden tests.

use rtm_tensor::activations::softmax_slice;

/// A decoded (partial or final) symbol-sequence hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Decoded symbol sequence (collapsed; blank-free for CTC decoders).
    pub symbols: Vec<usize>,
    /// Decoder-specific log-probability score (`0.0` where the decoder
    /// carries no probability model, e.g. [`ArgmaxDecoder`]).
    pub score: f32,
    /// Frames consumed so far.
    pub frames: usize,
    /// Whether the endpointing heuristic currently considers the utterance
    /// finished (trailing-blank run exceeded the configured threshold).
    pub endpoint: bool,
    /// `true` only for the hypothesis returned by [`Decoder::finish`].
    pub is_final: bool,
}

impl Hypothesis {
    /// An empty, zero-frame hypothesis.
    pub fn empty() -> Self {
        Hypothesis {
            symbols: Vec::new(),
            score: 0.0,
            frames: 0,
            endpoint: false,
            is_final: false,
        }
    }
}

/// Incremental utterance decoder over per-frame class logits.
///
/// Contract: for a fixed logits sequence the emitted hypotheses are a pure
/// function of the frames pushed so far — no wall-clock or iteration-order
/// dependence — so streaming decode is bit-identical to offline decode.
pub trait Decoder {
    /// Feeds one frame of per-class logits.
    ///
    /// Returns the updated partial hypothesis when it changed since the
    /// last emission (new symbols, or the endpoint flag flipped); `None`
    /// when the partial result is unchanged. Empty frames are ignored.
    fn push_frame(&mut self, logits: &[f32]) -> Option<Hypothesis>;

    /// Finalizes the utterance and returns the final hypothesis.
    fn finish(&mut self) -> Hypothesis;

    /// Clears all streaming state, ready for a new utterance.
    fn reset(&mut self);
}

/// Decodes a full utterance offline through any [`Decoder`].
///
/// Resets the decoder, pushes every frame, and finalizes. The result is
/// bit-identical to streaming the same frames through `push_frame`.
pub fn decode_offline<D: Decoder + ?Sized>(decoder: &mut D, logits: &[Vec<f32>]) -> Hypothesis {
    decoder.reset();
    for frame in logits {
        let _ = decoder.push_frame(frame);
    }
    decoder.finish()
}

/// Trailing-blank endpointing heuristic shared by the streaming decoders.
///
/// Fires when `threshold` consecutive frames have the blank (silence) class
/// as their argmax; clears as soon as a non-blank frame arrives.
#[derive(Debug, Clone)]
pub(crate) struct Endpointer {
    blank: usize,
    threshold: usize,
    run: usize,
}

impl Endpointer {
    pub(crate) fn new(blank: usize, threshold: usize) -> Self {
        assert!(threshold > 0, "endpoint threshold must be positive");
        Endpointer {
            blank,
            threshold,
            run: 0,
        }
    }

    /// Observes one frame's argmax class; returns the current endpoint state.
    pub(crate) fn observe(&mut self, argmax: usize) -> bool {
        if argmax == self.blank {
            self.run += 1;
        } else {
            self.run = 0;
        }
        self.run >= self.threshold
    }

    pub(crate) fn reset(&mut self) {
        self.run = 0;
    }
}

/// NaN-safe argmax: first index of the maximum under total ordering; `0`
/// when every comparison fails (all-NaN frames never panic, per the fuzz
/// contract).
pub(crate) fn frame_argmax(frame: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in frame.iter().enumerate().skip(1) {
        if v.total_cmp(&frame[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

/// The legacy frame-argmax path as a [`Decoder`]: collapse consecutive
/// identical argmax frames, exactly like
/// [`crate::per::collapse_frames`] over per-frame argmax predictions.
///
/// Carries no probability model (`score` stays `0.0`). Optional trailing-
/// silence endpointing via [`ArgmaxDecoder::with_endpointing`].
#[derive(Debug, Clone)]
pub struct ArgmaxDecoder {
    symbols: Vec<usize>,
    frames: usize,
    endpointer: Option<Endpointer>,
    emitted: (usize, bool),
}

impl ArgmaxDecoder {
    /// A plain collapse decoder with no endpointing.
    pub fn new() -> Self {
        ArgmaxDecoder {
            symbols: Vec::new(),
            frames: 0,
            endpointer: None,
            emitted: (0, false),
        }
    }

    /// Enables endpointing: fire after `trailing_blanks` consecutive frames
    /// whose argmax is `blank`.
    pub fn with_endpointing(mut self, blank: usize, trailing_blanks: usize) -> Self {
        self.endpointer = Some(Endpointer::new(blank, trailing_blanks));
        self
    }

    fn hypothesis(&self, endpoint: bool, is_final: bool) -> Hypothesis {
        Hypothesis {
            symbols: self.symbols.clone(),
            score: 0.0,
            frames: self.frames,
            endpoint,
            is_final,
        }
    }
}

impl Default for ArgmaxDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder for ArgmaxDecoder {
    fn push_frame(&mut self, logits: &[f32]) -> Option<Hypothesis> {
        if logits.is_empty() {
            return None;
        }
        let c = frame_argmax(logits);
        self.frames += 1;
        if self.symbols.last() != Some(&c) {
            self.symbols.push(c);
        }
        let endpoint = match &mut self.endpointer {
            Some(e) => e.observe(c),
            None => false,
        };
        if (self.symbols.len(), endpoint) != self.emitted {
            self.emitted = (self.symbols.len(), endpoint);
            Some(self.hypothesis(endpoint, false))
        } else {
            None
        }
    }

    fn finish(&mut self) -> Hypothesis {
        self.hypothesis(self.emitted.1, true)
    }

    fn reset(&mut self) {
        self.symbols.clear();
        self.frames = 0;
        self.emitted = (0, false);
        if let Some(e) = &mut self.endpointer {
            e.reset();
        }
    }
}

/// First-order Viterbi smoothing as a [`Decoder`].
///
/// The algorithm needs the whole utterance (the best path can revise
/// earlier frames), so this decoder buffers frames and never emits
/// partials: `push_frame` always returns `None` and the full decode
/// happens in [`Decoder::finish`]. Use the CTC decoders when streaming
/// partials matter.
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    switch_penalty: f32,
    buffer: Vec<Vec<f32>>,
}

impl ViterbiDecoder {
    /// Creates a decoder with the given phone-switch penalty.
    ///
    /// # Panics
    ///
    /// Panics if `switch_penalty` is negative.
    pub fn new(switch_penalty: f32) -> Self {
        assert!(switch_penalty >= 0.0, "penalty must be non-negative");
        ViterbiDecoder {
            switch_penalty,
            buffer: Vec::new(),
        }
    }
}

impl Decoder for ViterbiDecoder {
    fn push_frame(&mut self, logits: &[f32]) -> Option<Hypothesis> {
        if !logits.is_empty() {
            self.buffer.push(logits.to_vec());
        }
        None
    }

    fn finish(&mut self) -> Hypothesis {
        let (symbols, score) = viterbi_path(&self.buffer, self.switch_penalty);
        Hypothesis {
            symbols,
            score,
            frames: self.buffer.len(),
            endpoint: false,
            is_final: true,
        }
    }

    fn reset(&mut self) {
        self.buffer.clear();
    }
}

/// Decodes a phone sequence from per-frame logits with a switch penalty.
///
/// Legacy wrapper over [`ViterbiDecoder`] — prefer the [`Decoder`] API,
/// which also streams. `switch_penalty` is the negative log-probability
/// surcharge for changing phones between consecutive frames (`0.0` reduces
/// to plain argmax collapsing; typical useful values are 1–6).
///
/// Returns the collapsed best-path phone sequence.
///
/// # Panics
///
/// Panics if frames have inconsistent class counts or `switch_penalty` is
/// negative.
pub fn viterbi_decode(logits: &[Vec<f32>], switch_penalty: f32) -> Vec<usize> {
    let mut decoder = ViterbiDecoder::new(switch_penalty);
    for frame in logits {
        let _ = decoder.push_frame(frame);
    }
    decoder.finish().symbols
}

/// The Viterbi DP over `(frame, phone)` — the standard "HMM with
/// self-loops" smoothing every Kaldi-style recognizer applies. Returns the
/// collapsed best path and its log-probability score.
fn viterbi_path(logits: &[Vec<f32>], switch_penalty: f32) -> (Vec<usize>, f32) {
    if logits.is_empty() {
        return (Vec::new(), 0.0);
    }
    let classes = logits[0].len();
    assert!(classes > 0, "need at least one class");

    // Log-probabilities per frame.
    let log_probs: Vec<Vec<f32>> = logits
        .iter()
        .map(|frame| {
            assert_eq!(frame.len(), classes, "inconsistent class count");
            let mut p = frame.clone();
            softmax_slice(&mut p);
            p.into_iter().map(|v| v.max(1e-12).ln()).collect()
        })
        .collect();

    // DP over (frame, phone).
    let mut score = log_probs[0].clone();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(log_probs.len());
    back.push((0..classes).collect());
    for frame in &log_probs[1..] {
        // Best predecessor overall (for switch transitions).
        let mut best_prev = 0usize;
        for (c, &v) in score.iter().enumerate() {
            if v > score[best_prev] {
                best_prev = c;
            }
        }
        let mut new_score = vec![0.0f32; classes];
        let mut pointers = vec![0usize; classes];
        for c in 0..classes {
            // Stay in c, or switch from the best other phone with penalty.
            let stay = score[c];
            let switch = score[best_prev] - switch_penalty;
            if stay >= switch || best_prev == c {
                new_score[c] = stay + frame[c];
                pointers[c] = c;
            } else {
                new_score[c] = switch + frame[c];
                pointers[c] = best_prev;
            }
        }
        score = new_score;
        back.push(pointers);
    }

    // Backtrack.
    let mut best = 0usize;
    for (c, &v) in score.iter().enumerate() {
        if v > score[best] {
            best = c;
        }
    }
    let best_score = score[best];
    let mut path = vec![best; log_probs.len()];
    for t in (1..log_probs.len()).rev() {
        path[t - 1] = back[t][path[t]];
    }
    (crate::per::collapse_frames(&path), best_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Logits strongly favouring one class per frame.
    fn clean_logits(labels: &[usize], classes: usize) -> Vec<Vec<f32>> {
        labels
            .iter()
            .map(|&l| {
                (0..classes)
                    .map(|c| if c == l { 5.0 } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn clean_input_decodes_exactly() {
        let logits = clean_logits(&[0, 0, 1, 1, 2, 2], 3);
        assert_eq!(viterbi_decode(&logits, 2.0), vec![0, 1, 2]);
        // Zero penalty equals argmax collapsing.
        assert_eq!(viterbi_decode(&logits, 0.0), vec![0, 1, 2]);
    }

    #[test]
    fn penalty_suppresses_single_frame_glitch() {
        // Frames: 0 0 0 [glitch->1] 0 0 — argmax inserts phone 1.
        let mut logits = clean_logits(&[0, 0, 0, 0, 0, 0], 3);
        logits[3] = vec![0.0, 1.5, 0.0]; // weak glitch toward 1
        let naive = crate::per::collapse_frames(
            &logits
                .iter()
                .map(|f| rtm_tensor::Vector::argmax(f))
                .collect::<Vec<_>>(),
        );
        assert_eq!(naive, vec![0, 1, 0], "argmax inserts the glitch");
        let smoothed = viterbi_decode(&logits, 3.0);
        assert_eq!(smoothed, vec![0], "Viterbi smooths it away");
    }

    #[test]
    fn strong_evidence_survives_penalty() {
        // A genuine phone change with strong evidence must not be smoothed.
        let logits = clean_logits(&[0, 0, 0, 1, 1, 1], 3);
        assert_eq!(viterbi_decode(&logits, 4.0), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(viterbi_decode(&[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "penalty must be non-negative")]
    fn negative_penalty_rejected() {
        viterbi_decode(&[vec![0.0]], -1.0);
    }

    #[test]
    fn argmax_decoder_matches_collapse_frames() {
        let logits = clean_logits(&[0, 0, 1, 1, 1, 0, 2, 2], 3);
        let frame_preds: Vec<usize> = logits.iter().map(|f| frame_argmax(f)).collect();
        let legacy = crate::per::collapse_frames(&frame_preds);
        let hyp = decode_offline(&mut ArgmaxDecoder::new(), &logits);
        assert_eq!(hyp.symbols, legacy);
        assert_eq!(hyp.frames, logits.len());
        assert!(hyp.is_final);
    }

    #[test]
    fn argmax_decoder_emits_only_on_change() {
        let logits = clean_logits(&[0, 0, 0, 1, 1], 3);
        let mut d = ArgmaxDecoder::new();
        let emits: Vec<bool> = logits.iter().map(|f| d.push_frame(f).is_some()).collect();
        assert_eq!(emits, vec![true, false, false, true, false]);
    }

    #[test]
    fn argmax_endpointing_fires_on_trailing_silence() {
        // blank = 2; two trailing blank frames fire at threshold 2.
        let logits = clean_logits(&[0, 0, 2, 2, 2], 3);
        let mut d = ArgmaxDecoder::new().with_endpointing(2, 2);
        let mut endpoint_at = None;
        for (t, f) in logits.iter().enumerate() {
            if let Some(h) = d.push_frame(f) {
                if h.endpoint {
                    endpoint_at.get_or_insert(t);
                }
            }
        }
        assert_eq!(endpoint_at, Some(3), "fires on the 2nd blank frame");
        assert!(d.finish().endpoint);
    }

    #[test]
    fn viterbi_decoder_is_offline_only() {
        let logits = clean_logits(&[0, 0, 1], 3);
        let mut d = ViterbiDecoder::new(2.0);
        for f in &logits {
            assert!(d.push_frame(f).is_none(), "viterbi emits no partials");
        }
        let hyp = d.finish();
        assert_eq!(hyp.symbols, vec![0, 1]);
        assert!(hyp.is_final);
        // The wrapper and the trait path agree exactly.
        assert_eq!(hyp.symbols, viterbi_decode(&logits, 2.0));
    }

    #[test]
    fn reset_restarts_cleanly() {
        let logits = clean_logits(&[0, 1, 2], 3);
        let mut d = ArgmaxDecoder::new();
        let first = decode_offline(&mut d, &logits);
        let second = decode_offline(&mut d, &logits);
        assert_eq!(first, second, "reset makes decodes independent");
    }

    #[test]
    fn improves_per_on_noisy_synthetic_task() {
        // Train a small model on the synthetic task, add decision noise by
        // keeping training short, and compare naive vs Viterbi PER.
        use crate::corpus::CorpusConfig;
        use crate::per::PerReport;
        use crate::task::SpeechTask;
        let cfg = CorpusConfig {
            speakers: 8,
            sentences_per_speaker: 3,
            noise: 0.55, // noisy enough for glitchy frames
            ..CorpusConfig::tiny()
        };
        let task = SpeechTask::new(&cfg, 17);
        let mut net = task.new_network(24, 17);
        task.train(&mut net, 12, 8e-3);

        let mut naive = PerReport::default();
        let mut smoothed = PerReport::default();
        for u in task.test_utterances() {
            let logits = net.forward(&u.frames);
            let frame_preds: Vec<usize> = logits
                .iter()
                .map(|l| rtm_tensor::Vector::argmax(l))
                .collect();
            naive.add(&frame_preds, &u.labels, &u.phones);

            let decoded = viterbi_decode(&logits, 2.5);
            // Score the decoded sequence directly via edit distance.
            smoothed.errors += crate::per::edit_distance(&decoded, &u.phones);
            smoothed.reference_len += u.phones.len();
        }
        assert!(
            smoothed.per_percent() <= naive.per_percent(),
            "Viterbi must not be worse: {:.2}% vs {:.2}%",
            smoothed.per_percent(),
            naive.per_percent()
        );
    }
}
