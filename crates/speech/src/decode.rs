//! Sequence decoding beyond frame-wise argmax.
//!
//! The naive decoder (collapse consecutive argmax frames) is brittle: one
//! noisy frame inserts a phantom phone and costs an insertion *and* breaks
//! a run. [`viterbi_decode`] runs a first-order Viterbi pass over the frame
//! log-probabilities with a uniform phone-switch penalty — the standard
//! "HMM with self-loops" smoothing every Kaldi-style recognizer applies —
//! which trades a tiny latency cost for materially lower PER on noisy
//! utterances.

use rtm_tensor::activations::softmax_slice;

/// Decodes a phone sequence from per-frame logits with a switch penalty.
///
/// `switch_penalty` is the negative log-probability surcharge for changing
/// phones between consecutive frames (`0.0` reduces to plain argmax
/// collapsing; typical useful values are 1–6).
///
/// Returns the collapsed best-path phone sequence.
///
/// # Panics
///
/// Panics if frames have inconsistent class counts or `switch_penalty` is
/// negative.
pub fn viterbi_decode(logits: &[Vec<f32>], switch_penalty: f32) -> Vec<usize> {
    assert!(switch_penalty >= 0.0, "penalty must be non-negative");
    if logits.is_empty() {
        return Vec::new();
    }
    let classes = logits[0].len();
    assert!(classes > 0, "need at least one class");

    // Log-probabilities per frame.
    let log_probs: Vec<Vec<f32>> = logits
        .iter()
        .map(|frame| {
            assert_eq!(frame.len(), classes, "inconsistent class count");
            let mut p = frame.clone();
            softmax_slice(&mut p);
            p.into_iter().map(|v| v.max(1e-12).ln()).collect()
        })
        .collect();

    // DP over (frame, phone).
    let mut score = log_probs[0].clone();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(log_probs.len());
    back.push((0..classes).collect());
    for frame in &log_probs[1..] {
        // Best predecessor overall (for switch transitions).
        let mut best_prev = 0usize;
        for (c, &v) in score.iter().enumerate() {
            if v > score[best_prev] {
                best_prev = c;
            }
        }
        let mut new_score = vec![0.0f32; classes];
        let mut pointers = vec![0usize; classes];
        for c in 0..classes {
            // Stay in c, or switch from the best other phone with penalty.
            let stay = score[c];
            let switch = score[best_prev] - switch_penalty;
            if stay >= switch || best_prev == c {
                new_score[c] = stay + frame[c];
                pointers[c] = c;
            } else {
                new_score[c] = switch + frame[c];
                pointers[c] = best_prev;
            }
        }
        score = new_score;
        back.push(pointers);
    }

    // Backtrack.
    let mut best = 0usize;
    for (c, &v) in score.iter().enumerate() {
        if v > score[best] {
            best = c;
        }
    }
    let mut path = vec![best; log_probs.len()];
    for t in (1..log_probs.len()).rev() {
        path[t - 1] = back[t][path[t]];
    }
    crate::per::collapse_frames(&path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Logits strongly favouring one class per frame.
    fn clean_logits(labels: &[usize], classes: usize) -> Vec<Vec<f32>> {
        labels
            .iter()
            .map(|&l| {
                (0..classes)
                    .map(|c| if c == l { 5.0 } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn clean_input_decodes_exactly() {
        let logits = clean_logits(&[0, 0, 1, 1, 2, 2], 3);
        assert_eq!(viterbi_decode(&logits, 2.0), vec![0, 1, 2]);
        // Zero penalty equals argmax collapsing.
        assert_eq!(viterbi_decode(&logits, 0.0), vec![0, 1, 2]);
    }

    #[test]
    fn penalty_suppresses_single_frame_glitch() {
        // Frames: 0 0 0 [glitch->1] 0 0 — argmax inserts phone 1.
        let mut logits = clean_logits(&[0, 0, 0, 0, 0, 0], 3);
        logits[3] = vec![0.0, 1.5, 0.0]; // weak glitch toward 1
        let naive = crate::per::collapse_frames(
            &logits
                .iter()
                .map(|f| rtm_tensor::Vector::argmax(f))
                .collect::<Vec<_>>(),
        );
        assert_eq!(naive, vec![0, 1, 0], "argmax inserts the glitch");
        let smoothed = viterbi_decode(&logits, 3.0);
        assert_eq!(smoothed, vec![0], "Viterbi smooths it away");
    }

    #[test]
    fn strong_evidence_survives_penalty() {
        // A genuine phone change with strong evidence must not be smoothed.
        let logits = clean_logits(&[0, 0, 0, 1, 1, 1], 3);
        assert_eq!(viterbi_decode(&logits, 4.0), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(viterbi_decode(&[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "penalty must be non-negative")]
    fn negative_penalty_rejected() {
        viterbi_decode(&[vec![0.0]], -1.0);
    }

    #[test]
    fn improves_per_on_noisy_synthetic_task() {
        // Train a small model on the synthetic task, add decision noise by
        // keeping training short, and compare naive vs Viterbi PER.
        use crate::corpus::CorpusConfig;
        use crate::per::PerReport;
        use crate::task::SpeechTask;
        let cfg = CorpusConfig {
            speakers: 8,
            sentences_per_speaker: 3,
            noise: 0.55, // noisy enough for glitchy frames
            ..CorpusConfig::tiny()
        };
        let task = SpeechTask::new(&cfg, 17);
        let mut net = task.new_network(24, 17);
        task.train(&mut net, 12, 8e-3);

        let mut naive = PerReport::default();
        let mut smoothed = PerReport::default();
        for u in task.test_utterances() {
            let logits = net.forward(&u.frames);
            let frame_preds: Vec<usize> = logits
                .iter()
                .map(|l| rtm_tensor::Vector::argmax(l))
                .collect();
            naive.add(&frame_preds, &u.labels, &u.phones);

            let decoded = viterbi_decode(&logits, 2.5);
            // Score the decoded sequence directly via edit distance.
            smoothed.errors += crate::per::edit_distance(&decoded, &u.phones);
            smoothed.reference_len += u.phones.len();
        }
        assert!(
            smoothed.per_percent() <= naive.per_percent(),
            "Viterbi must not be worse: {:.2}% vs {:.2}%",
            smoothed.per_percent(),
            naive.per_percent()
        );
    }
}
