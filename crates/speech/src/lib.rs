#![warn(missing_docs)]

//! # rtm-speech
//!
//! A synthetic phone-recognition task standing in for TIMIT.
//!
//! TIMIT is proprietary LDC data, so per DESIGN.md §2 the accuracy
//! experiments run on a generated corpus that mirrors its structure:
//!
//! * the folded **39-phone** inventory ([`phones`]);
//! * **630 speakers in 8 dialect regions** (scaled down by default), each
//!   speaker perturbing the per-phone acoustic prototypes ([`corpus`]);
//! * phonotactically plausible sentences from a seeded Markov chain, with
//!   per-phone durations and coarticulation ramps between phones;
//! * **phone error rate (PER)** scoring via edit distance on collapsed
//!   frame predictions ([`per`]), the metric of Table I;
//! * a training/evaluation harness ([`task`]) that trains the
//!   [`rtm_rnn::GruNetwork`] frame classifier and reports PER.
//!
//! What transfers from TIMIT and what does not: *PER degradation versus
//! compression rate per pruning scheme* is driven by how much expressive
//! freedom each mask family leaves the model, which this task exercises the
//! same way; absolute PER values are easier than real speech and are not
//! comparable to the paper's 18.8%.
//!
//! # Example
//!
//! ```
//! use rtm_speech::corpus::{CorpusConfig, SpeechCorpus};
//!
//! let corpus = SpeechCorpus::generate(&CorpusConfig::tiny(), 42);
//! assert!(!corpus.utterances.is_empty());
//! let utt = &corpus.utterances[0];
//! assert_eq!(utt.frames.len(), utt.labels.len());
//! ```

pub mod corpus;
pub mod ctc;
pub mod decode;
pub mod features;
pub mod per;
pub mod phones;
pub mod task;

pub use corpus::{CorpusConfig, SpeechCorpus, Utterance};
pub use ctc::{blank_for, CtcBeamDecoder, CtcGreedyDecoder};
pub use decode::{
    decode_offline, viterbi_decode, ArgmaxDecoder, Decoder, Hypothesis, ViterbiDecoder,
};
pub use features::{add_deltas, add_deltas_2, CmvnStats};
pub use per::{edit_distance, phone_error_rate, PerReport};
pub use task::SpeechTask;
