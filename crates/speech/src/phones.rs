//! The folded TIMIT phone inventory.
//!
//! TIMIT transcription work conventionally folds the original 61 phone
//! labels to 39 classes for scoring (Lee & Hon 1989); every PER the paper
//! cites uses that convention. The synthetic corpus uses the same 39
//! labels so the class count — and therefore the classifier head size and
//! task difficulty — matches.

/// The 39 folded TIMIT phone labels.
pub const PHONES: [&str; 39] = [
    "aa", "ae", "ah", "aw", "ay", "b", "ch", "d", "dh", "dx", "eh", "er", "ey", "f", "g", "hh",
    "ih", "iy", "jh", "k", "l", "m", "n", "ng", "ow", "oy", "p", "r", "s", "sh", "sil", "t", "th",
    "uh", "uw", "v", "w", "y", "z",
];

/// Number of phone classes.
pub const NUM_PHONES: usize = PHONES.len();

/// Index of the silence phone, used to pad utterance boundaries.
pub const SILENCE: usize = 30;

/// Returns the label of phone `id`.
///
/// # Panics
///
/// Panics if `id >= NUM_PHONES`.
pub fn label(id: usize) -> &'static str {
    PHONES[id]
}

/// Looks up a phone id by label.
pub fn id_of(label: &str) -> Option<usize> {
    PHONES.iter().position(|&p| p == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_size_is_39() {
        assert_eq!(NUM_PHONES, 39);
    }

    #[test]
    fn labels_are_unique() {
        for (i, a) in PHONES.iter().enumerate() {
            for b in &PHONES[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn silence_index() {
        assert_eq!(label(SILENCE), "sil");
        assert_eq!(id_of("sil"), Some(SILENCE));
    }

    #[test]
    fn lookup_roundtrip() {
        for i in 0..NUM_PHONES {
            assert_eq!(id_of(label(i)), Some(i));
        }
        assert_eq!(id_of("zz"), None);
    }
}
