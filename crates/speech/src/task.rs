//! Training / evaluation harness binding the corpus to the GRU network.
//!
//! [`SpeechTask`] owns a generated corpus with its speaker-disjoint
//! train/test split and drives `rtm_rnn::GruNetwork` training with Adam —
//! the same shape as the paper's PyTorch-Kaldi recipe: frame-level
//! cross-entropy, per-utterance updates, PER on held-out speakers.

use crate::corpus::{CorpusConfig, SpeechCorpus, Utterance};
use crate::per::PerReport;
use crate::phones::NUM_PHONES;
use rtm_rnn::model::{GruNetwork, NetworkConfig};
use rtm_rnn::optimizer::{Adam, GradClip};

/// A ready-to-train speech recognition task.
#[derive(Debug, Clone)]
pub struct SpeechTask {
    corpus: SpeechCorpus,
    test_every: usize,
}

impl SpeechTask {
    /// Generates the corpus and fixes the split (`speaker % 4 == 0` held
    /// out).
    pub fn new(cfg: &CorpusConfig, seed: u64) -> SpeechTask {
        SpeechTask {
            corpus: SpeechCorpus::generate(cfg, seed),
            test_every: 4,
        }
    }

    /// The corpus.
    pub fn corpus(&self) -> &SpeechCorpus {
        &self.corpus
    }

    /// Network configuration matching this task's dimensions: 2 GRU layers
    /// of `hidden` units (the paper's topology) over the corpus features
    /// and 39 phone classes.
    pub fn network_config(&self, hidden: usize) -> NetworkConfig {
        NetworkConfig {
            input_dim: self.corpus.config.feature_dim,
            hidden_dims: vec![hidden, hidden],
            num_classes: NUM_PHONES,
        }
    }

    /// A freshly initialized network for this task.
    pub fn new_network(&self, hidden: usize, seed: u64) -> GruNetwork {
        GruNetwork::new(&self.network_config(hidden), seed)
    }

    /// Training sequences as `(frames, labels)` pairs (owned clones).
    pub fn training_data(&self) -> Vec<(Vec<Vec<f32>>, Vec<usize>)> {
        let (train, _) = self.corpus.split(self.test_every);
        train
            .into_iter()
            .map(|u| (u.frames.clone(), u.labels.clone()))
            .collect()
    }

    /// Held-out test utterances.
    pub fn test_utterances(&self) -> Vec<&Utterance> {
        self.corpus.split(self.test_every).1
    }

    /// Trains `net` for `epochs` full passes with Adam at `lr`; returns the
    /// mean loss of the final epoch.
    pub fn train(&self, net: &mut GruNetwork, epochs: usize, lr: f32) -> f32 {
        let data = self.training_data();
        let mut opt = Adam::new(lr);
        let clip = Some(GradClip::new(5.0));
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let mut total = 0.0f32;
            for (frames, labels) in &data {
                total += net.train_step(frames, labels, &mut opt, clip).loss;
            }
            last = total / data.len().max(1) as f32;
        }
        last
    }

    /// Trains with mini-batches of `batch_size` sequences per optimizer
    /// update (gradient averaging via
    /// [`GruNetwork::train_batch`](rtm_rnn::GruNetwork::train_batch)) —
    /// lower-variance steps than per-utterance updates.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn train_batched(
        &self,
        net: &mut GruNetwork,
        epochs: usize,
        lr: f32,
        batch_size: usize,
    ) -> f32 {
        assert!(batch_size > 0, "batch size must be positive");
        let data = self.training_data();
        let mut opt = Adam::new(lr);
        let clip = Some(GradClip::new(5.0));
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in data.chunks(batch_size) {
                total += net.train_batch(chunk, &mut opt, clip);
                batches += 1;
            }
            last = total / batches.max(1) as f32;
        }
        last
    }

    /// Trains with input augmentation: per-frame white noise and feature
    /// dropout applied to fresh copies of the training frames each epoch.
    /// Both are data-level regularizers (no change to backpropagation) that
    /// curb the dense model's tendency to memorize the small corpus before
    /// pruning — the same role SpecAugment-style policies play in real
    /// speech recipes.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= feature_dropout < 1.0`.
    pub fn train_augmented(
        &self,
        net: &mut GruNetwork,
        epochs: usize,
        lr: f32,
        noise_std: f32,
        feature_dropout: f32,
        seed: u64,
    ) -> f32 {
        assert!(
            (0.0..1.0).contains(&feature_dropout),
            "dropout must be in [0, 1)"
        );
        let data = self.training_data();
        let mut opt = Adam::new(lr);
        let clip = Some(GradClip::new(5.0));
        let mut rng = rtm_tensor::init::rng_from_seed(seed);
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let mut total = 0.0f32;
            for (frames, labels) in &data {
                let noisy: Vec<Vec<f32>> = frames
                    .iter()
                    .map(|f| {
                        f.iter()
                            .map(|&v| {
                                if feature_dropout > 0.0 && rng.gen_f32() < feature_dropout {
                                    0.0
                                } else {
                                    v + noise_std * rtm_tensor::init::standard_normal(&mut rng)
                                }
                            })
                            .collect()
                    })
                    .collect();
                total += net.train_step(&noisy, labels, &mut opt, clip).loss;
            }
            last = total / data.len().max(1) as f32;
        }
        last
    }

    /// Evaluates PER on the held-out speakers.
    pub fn evaluate(&self, net: &GruNetwork) -> PerReport {
        let mut report = PerReport::default();
        for u in self.test_utterances() {
            let preds = net.predict(&u.frames);
            report.add(&preds, &u.labels, &u.phones);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_task() -> SpeechTask {
        let cfg = CorpusConfig {
            speakers: 8,
            sentences_per_speaker: 3,
            phones_per_sentence: 5,
            noise: 0.35,
            ..CorpusConfig::tiny()
        };
        SpeechTask::new(&cfg, 42)
    }

    #[test]
    fn task_wiring() {
        let task = quick_task();
        let net_cfg = task.network_config(16);
        assert_eq!(net_cfg.input_dim, 13);
        assert_eq!(net_cfg.hidden_dims, vec![16, 16]);
        assert_eq!(net_cfg.num_classes, NUM_PHONES);
        assert!(!task.training_data().is_empty());
        assert!(!task.test_utterances().is_empty());
        // Train and test speakers disjoint (delegated check).
        let test_speakers: Vec<usize> = task.test_utterances().iter().map(|u| u.speaker).collect();
        assert!(test_speakers.iter().all(|s| s % 4 == 0));
    }

    #[test]
    fn untrained_network_is_near_chance() {
        let task = quick_task();
        let net = task.new_network(16, 1);
        let report = task.evaluate(&net);
        // 39 classes: untrained frame accuracy should be far below 50%.
        assert!(report.frame_accuracy() < 0.5);
        assert!(report.per_percent() > 30.0);
    }

    #[test]
    fn batched_training_improves_per() {
        let task = quick_task();
        let mut net = task.new_network(20, 7);
        let before = task.evaluate(&net);
        let loss = task.train_batched(&mut net, 20, 0.01, 4);
        let after = task.evaluate(&net);
        assert!(loss.is_finite());
        assert!(
            after.per_percent() < before.per_percent(),
            "{} -> {}",
            before.per_percent(),
            after.per_percent()
        );
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn batched_rejects_zero() {
        let task = quick_task();
        let mut net = task.new_network(8, 1);
        task.train_batched(&mut net, 1, 0.01, 0);
    }

    #[test]
    fn augmented_training_learns_and_is_deterministic() {
        let task = quick_task();
        let mut a = task.new_network(16, 5);
        let mut b = task.new_network(16, 5);
        let la = task.train_augmented(&mut a, 8, 0.01, 0.1, 0.1, 99);
        let lb = task.train_augmented(&mut b, 8, 0.01, 0.1, 0.1, 99);
        assert!(la.is_finite());
        assert_eq!(la, lb, "same seed => identical augmented training");
        assert_eq!(a, b);
        // Learns at least as well as chance.
        let report = task.evaluate(&a);
        assert!(
            report.frame_accuracy() > 0.3,
            "acc {}",
            report.frame_accuracy()
        );
    }

    #[test]
    #[should_panic(expected = "dropout must be in [0, 1)")]
    fn augmented_rejects_bad_dropout() {
        let task = quick_task();
        let mut net = task.new_network(8, 1);
        task.train_augmented(&mut net, 1, 0.01, 0.0, 1.0, 0);
    }

    #[test]
    fn training_improves_per() {
        let task = quick_task();
        let mut net = task.new_network(24, 3);
        let before = task.evaluate(&net);
        let final_loss = task.train(&mut net, 20, 0.01);
        let after = task.evaluate(&net);
        assert!(final_loss.is_finite());
        assert!(
            after.per_percent() < before.per_percent() * 0.8,
            "PER must improve: {} -> {}",
            before.per_percent(),
            after.per_percent()
        );
        assert!(
            after.frame_accuracy() > 0.5,
            "trained frame accuracy {}",
            after.frame_accuracy()
        );
    }
}
