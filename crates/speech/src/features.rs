//! Feature post-processing: CMVN and delta features.
//!
//! The paper's training stack (PyTorch-Kaldi) feeds the GRU Kaldi-style
//! acoustic features: per-utterance or corpus-level cepstral mean/variance
//! normalization (CMVN) and appended first/second-order time derivatives
//! ("delta" and "delta-delta" features). These utilities reproduce that
//! front end over the synthetic frames; the `speech_recognition` example
//! and the extension experiments use them to triple the input
//! dimensionality exactly the way a Kaldi recipe would.

/// Per-dimension mean/variance statistics for CMVN.
#[derive(Debug, Clone, PartialEq)]
pub struct CmvnStats {
    /// Per-dimension mean.
    pub mean: Vec<f32>,
    /// Per-dimension standard deviation (floored at 1e-6).
    pub std: Vec<f32>,
}

impl CmvnStats {
    /// Estimates statistics over a set of frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or ragged.
    pub fn estimate(frames: &[Vec<f32>]) -> CmvnStats {
        assert!(!frames.is_empty(), "need at least one frame");
        let dim = frames[0].len();
        let mut mean = vec![0.0f32; dim];
        for f in frames {
            assert_eq!(f.len(), dim, "ragged frames");
            for (m, &v) in mean.iter_mut().zip(f) {
                *m += v;
            }
        }
        let n = frames.len() as f32;
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; dim];
        for f in frames {
            for ((v, &x), &m) in var.iter_mut().zip(f).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        CmvnStats { mean, std }
    }

    /// Normalizes frames in place: `x = (x - mean) / std`.
    ///
    /// # Panics
    ///
    /// Panics if frame dimensions differ from the statistics.
    pub fn apply(&self, frames: &mut [Vec<f32>]) {
        for f in frames {
            assert_eq!(f.len(), self.mean.len(), "dimension mismatch");
            for ((x, &m), &s) in f.iter_mut().zip(&self.mean).zip(&self.std) {
                *x = (*x - m) / s;
            }
        }
    }
}

/// Appends first-order deltas: output frames are `[x; Δx]` with
/// `Δx_t = (x_{t+1} - x_{t-1}) / 2` (clamped at the edges).
///
/// Returns an empty vector for empty input.
pub fn add_deltas(frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let t_len = frames.len();
    let mut out = Vec::with_capacity(t_len);
    for t in 0..t_len {
        let prev = &frames[t.saturating_sub(1)];
        let next = &frames[(t + 1).min(t_len - 1)];
        let mut f = frames[t].clone();
        f.extend(prev.iter().zip(next).map(|(&p, &n)| (n - p) * 0.5));
        out.push(f);
    }
    out
}

/// Appends first- and second-order deltas: output frames are
/// `[x; Δx; ΔΔx]`, tripling the dimensionality like a Kaldi
/// `add-deltas` stage.
pub fn add_deltas_2(frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
    if frames.is_empty() {
        return Vec::new();
    }
    let dim = frames[0].len();
    let with_d = add_deltas(frames);
    // Delta of the delta part.
    let deltas: Vec<Vec<f32>> = with_d.iter().map(|f| f[dim..].to_vec()).collect();
    let dd = add_deltas(&deltas);
    with_d
        .into_iter()
        .zip(dd)
        .map(|(mut f, d)| {
            f.extend_from_slice(&d[dim..]);
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]
    }

    #[test]
    fn cmvn_zero_mean_unit_var() {
        let mut f = frames();
        let stats = CmvnStats::estimate(&f);
        stats.apply(&mut f);
        let dim = 2;
        for d in 0..dim {
            let mean: f32 = f.iter().map(|x| x[d]).sum::<f32>() / f.len() as f32;
            let var: f32 = f.iter().map(|x| (x[d] - mean).powi(2)).sum::<f32>() / f.len() as f32;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "var {var}");
        }
    }

    #[test]
    fn cmvn_constant_dimension_safe() {
        let mut f = vec![vec![5.0], vec![5.0]];
        let stats = CmvnStats::estimate(&f);
        stats.apply(&mut f);
        assert!(f.iter().all(|x| x[0].is_finite()));
    }

    #[test]
    #[should_panic(expected = "need at least one frame")]
    fn cmvn_empty_rejected() {
        CmvnStats::estimate(&[]);
    }

    #[test]
    fn deltas_are_central_differences() {
        let f = add_deltas(&frames());
        assert_eq!(f[0].len(), 4);
        // Interior: (x_{t+1} - x_{t-1}) / 2 = 1.0 for the ramp.
        assert!((f[1][2] - 1.0).abs() < 1e-6);
        assert!((f[2][3] - 10.0).abs() < 1e-6);
        // Edges use clamped neighbours: (x_1 - x_0)/2 = 0.5.
        assert!((f[0][2] - 0.5).abs() < 1e-6);
        assert!((f[3][2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn delta_delta_triples_dimension() {
        // A longer ramp so the interior is unaffected by edge clamping.
        let ramp: Vec<Vec<f32>> = (0..6).map(|t| vec![t as f32, 10.0 * t as f32]).collect();
        let f = add_deltas_2(&ramp);
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|x| x.len() == 6));
        // A linear ramp has constant delta away from the edges, so the
        // interior delta-delta vanishes.
        assert!(f[2][4].abs() < 1e-6, "dd {}", f[2][4]);
        assert!(f[3][5].abs() < 1e-6, "dd {}", f[3][5]);
    }

    #[test]
    fn empty_inputs() {
        assert!(add_deltas(&[]).is_empty());
        assert!(add_deltas_2(&[]).is_empty());
    }
}
