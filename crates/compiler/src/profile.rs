//! Kernel profiling: lowering a matrix + plan into exact operation and byte
//! counts.
//!
//! A [`KernelProfile`] is the compiler's hand-off to the cost model in
//! `rtm-sim`: how many FMAs the kernel performs, how many weight/index bytes
//! it streams, how many input-vector elements it gathers (after optional
//! redundant-load elimination), and how unbalanced/divergent the work
//! distribution is (after optional matrix reorder). Everything is an exact
//! count derived from the concrete pruned matrix — no sampling.

use crate::plan::{ExecutionPlan, InputPlacement, StorageFormat, Target};
use crate::reorder::{divergence, imbalance, imbalance_round_robin, ReorderPlan};
use rtm_sparse::footprint::Footprint;
use rtm_sparse::{BbsMatrix, BspcMatrix, CsbMatrix, CsrMatrix};
use rtm_tensor::Matrix;

/// SIMT warp width used for the divergence metric (Adreno-class wave size).
pub const GPU_WARP: usize = 32;

/// Exact cost-model inputs for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Logical matrix rows.
    pub rows: usize,
    /// Logical matrix columns.
    pub cols: usize,
    /// Stored nonzeros the kernel multiplies.
    pub nnz: usize,
    /// Floating-point operations (2 per multiply-accumulate).
    pub flops: usize,
    /// Bytes of weight values streamed from memory.
    pub value_bytes: usize,
    /// Bytes of structural indices streamed from memory.
    pub index_bytes: usize,
    /// Input-vector elements gathered (after RLE when enabled).
    pub input_loads: usize,
    /// Output-vector elements stored.
    pub output_stores: usize,
    /// Warp-divergence factor ≥ 1 (GPU view of the row-length spread).
    pub divergence_factor: f64,
    /// Thread load-imbalance factor ≥ 1 (CPU view).
    pub imbalance_factor: f64,
    /// Index words decoded on the critical path (CSR pays one per nonzero;
    /// BSPC shares one stream per stripe; dense pays none).
    pub index_decodes: usize,
}

impl KernelProfile {
    /// Analyzes matrix `w` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`ExecutionPlan::validate`].
    pub fn analyze(w: &Matrix, plan: &ExecutionPlan) -> KernelProfile {
        plan.validate().expect("invalid execution plan");
        let (rows, cols) = w.shape();

        // Row costs in execution order (reorder applied when enabled).
        let base_nnz: Vec<usize> = (0..rows)
            .map(|r| w.row(r).iter().filter(|&&v| v != 0.0).count())
            .collect();
        let reorder = if plan.use_reorder {
            Some(ReorderPlan::compute(w, plan.threads))
        } else {
            None
        };
        let exec_nnz: Vec<usize> = match &reorder {
            Some(p) => p.perm.iter().map(|&r| base_nnz[r]).collect(),
            None => base_nnz.clone(),
        };

        let nnz: usize = base_nnz.iter().sum();

        let (stored_nnz, value_bytes, index_bytes, index_decodes, input_loads) = match plan.format {
            StorageFormat::Dense => {
                let fp = Footprint::dense(w, plan.precision);
                let loads = match plan.input_placement {
                    // The input vector is staged once and stays cache/shared
                    // resident across row tiles (it is tiny next to the
                    // weight stream).
                    InputPlacement::Shared => cols,
                    InputPlacement::Global => rows.div_ceil(plan.tile_rows.max(1)) * cols,
                };
                (rows * cols, fp.value_bytes, fp.index_bytes, 0, loads)
            }
            StorageFormat::Csr => {
                let csr = CsrMatrix::from_dense(w);
                let fp = Footprint::csr(&csr, plan.precision);
                // The input vector itself is small and cache-resident, so
                // DRAM-level input traffic is one scattered pass over it;
                // CSR's real tax is the per-nonzero index decode on the
                // dependent-load critical path (§IV-B-b: unstructured
                // sparsity defeats load sharing), charged via
                // `index_decodes`.
                (csr.nnz(), fp.value_bytes, fp.index_bytes, csr.nnz(), cols)
            }
            StorageFormat::Bspc => {
                let stripes = plan.bsp_stripes.min(rows.max(1));
                let blocks = plan.bsp_blocks.min(cols.max(1));
                let bspc =
                    BspcMatrix::from_dense(w, stripes, blocks).expect("partition clamped to shape");
                let fp = Footprint::bspc(&bspc, plan.precision);
                let loads = if plan.use_rle {
                    // With reorder + shared patterns, every thread group
                    // stages each needed input element once; the DRAM-level
                    // traffic is the union of kept columns across stripes.
                    // (Per-run sharing statistics for the ablation bench
                    // come from `rle::analyze_loads` directly.)
                    let mut used = vec![false; cols];
                    for s in 0..bspc.num_stripes() {
                        for &c in bspc.stripe_kept_cols(s) {
                            used[c as usize] = true;
                        }
                    }
                    used.iter().filter(|&&u| u).count()
                } else {
                    bspc.stored_len()
                };
                // One shared index stream per stripe: decode cost is the
                // index words, not one per nonzero.
                (
                    bspc.stored_len(),
                    fp.value_bytes,
                    fp.index_bytes,
                    bspc.index_words(),
                    loads,
                )
            }
            StorageFormat::Bbs => {
                let banks = plan.bsp_blocks.min(cols.max(1)).max(1);
                let bbs = BbsMatrix::from_dense(w, banks).expect("banks clamped to shape");
                let fp = Footprint::bbs(&bbs, plan.precision);
                // Uniform slots per row: the padded ELL stream multiplies
                // explicit zeros (like BSPC pattern zeros) and decodes one
                // column index per slot.
                (
                    bbs.stored_len(),
                    fp.value_bytes,
                    fp.index_bytes,
                    bbs.stored_len(),
                    cols,
                )
            }
            StorageFormat::Csb => {
                let bh = rows.div_ceil(plan.bsp_stripes.min(rows.max(1)).max(1));
                let bw = cols.div_ceil(plan.bsp_blocks.min(cols.max(1)).max(1));
                let csb = CsbMatrix::from_dense(w, bh, bw).expect("blocks clamped to shape");
                let fp = Footprint::csb(&csb, plan.precision);
                // Index decode is per stored block plus its kept-column
                // list, not per nonzero — the panel amortizes the rest.
                (
                    csb.stored_len(),
                    fp.value_bytes,
                    fp.index_bytes,
                    csb.stored_blocks() + csb.cols_idx().len(),
                    cols,
                )
            }
        };

        let divergence_factor = match plan.target {
            Target::MobileGpu => divergence(&exec_nnz, GPU_WARP),
            Target::MobileCpu => 1.0,
        };
        // With reorder the runtime deals each pattern group round-robin to
        // the worker threads (balanced by construction); without it each
        // thread takes a contiguous chunk of the original row order.
        let imbalance_factor = if plan.use_reorder {
            imbalance_round_robin(&exec_nnz, plan.threads)
        } else {
            imbalance(&exec_nnz, plan.threads)
        };

        // `nnz` (the true nonzero count) is folded into the divergence and
        // imbalance factors; the stored count drives flops and bytes because
        // dense and BSPC kernels multiply explicit zeros inside the pattern.
        let _ = nnz;
        KernelProfile {
            rows,
            cols,
            nnz: stored_nnz,
            flops: 2 * stored_nnz,
            value_bytes,
            index_bytes,
            input_loads,
            output_stores: rows,
            divergence_factor,
            imbalance_factor,
            index_decodes,
        }
    }

    /// Total bytes moved from memory: weights + indices + input gathers +
    /// output stores, at the plan's precision for values and 4 bytes per
    /// index word.
    pub fn total_bytes(&self, precision_bytes: usize) -> usize {
        self.value_bytes
            + self.index_bytes
            + self.input_loads * precision_bytes
            + self.output_stores * precision_bytes
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self, precision_bytes: usize) -> f64 {
        let bytes = self.total_bytes(precision_bytes);
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;

    /// BSP-structured matrix: 4 stripes of 16 rows; stripe s keeps the 8
    /// columns congruent to s mod 8.
    fn bsp_matrix() -> Matrix {
        Matrix::from_fn(64, 64, |r, c| {
            let stripe = r / 16;
            if c % 8 == stripe {
                0.5
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dense_profile_counts() {
        let w = Matrix::filled(64, 64, 1.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations();
        let p = KernelProfile::analyze(&w, &plan);
        assert_eq!(p.nnz, 64 * 64);
        assert_eq!(p.flops, 2 * 64 * 64);
        assert_eq!(p.index_bytes, 0);
        assert_eq!(p.index_decodes, 0);
        assert_eq!(p.output_stores, 64);
        // Shared placement: one x staging per 64-row tile = 1 tile here.
        assert_eq!(p.input_loads, 64);
        assert!((p.divergence_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csr_pays_per_nonzero() {
        let w = bsp_matrix();
        let plan = ExecutionPlan::gpu_default(StorageFormat::Csr);
        let p = KernelProfile::analyze(&w, &plan);
        let nnz = 64 * 8;
        assert_eq!(p.nnz, nnz);
        // CSR's tax is one index decode per nonzero on the dependent-load
        // path; the input vector itself is cache-resident (one scattered
        // pass over its `cols` elements).
        assert_eq!(p.index_decodes, nnz);
        assert_eq!(p.input_loads, 64);
        assert!(p.index_bytes > nnz * 3); // ~4B per nonzero + row ptr
    }

    #[test]
    fn bspc_shares_indices_and_loads() {
        let w = bsp_matrix();
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(4, 8);
        let p = KernelProfile::analyze(&w, &plan);
        let csr = KernelProfile::analyze(&w, &ExecutionPlan::gpu_default(StorageFormat::Csr));
        assert_eq!(p.nnz, csr.nnz, "same stored values");
        assert!(p.index_bytes < csr.index_bytes / 2, "shared index streams");
        assert!(p.index_decodes < csr.index_decodes);
        assert!(
            p.input_loads < csr.input_loads,
            "RLE shares loads: {} vs {}",
            p.input_loads,
            csr.input_loads
        );
    }

    #[test]
    fn rle_toggle_changes_loads() {
        let w = bsp_matrix();
        let with = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(4, 8);
        let mut without = with;
        without.use_rle = false;
        let a = KernelProfile::analyze(&w, &with);
        let b = KernelProfile::analyze(&w, &without);
        assert!(a.input_loads < b.input_loads);
        assert_eq!(a.nnz, b.nnz);
    }

    #[test]
    fn reorder_toggle_changes_divergence() {
        // Alternating heavy/light rows: divergence without reorder, none with.
        let w = Matrix::from_fn(64, 64, |r, c| {
            let heavy = r % 2 == 0;
            if (heavy && c < 32) || (!heavy && c < 2) {
                1.0
            } else {
                0.0
            }
        });
        let with = ExecutionPlan::gpu_default(StorageFormat::Csr);
        let mut without = with;
        without.use_reorder = false;
        let a = KernelProfile::analyze(&w, &with);
        let b = KernelProfile::analyze(&w, &without);
        assert!(
            a.divergence_factor < b.divergence_factor,
            "{} vs {}",
            a.divergence_factor,
            b.divergence_factor
        );
    }

    #[test]
    fn bytes_and_intensity() {
        let w = bsp_matrix();
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(4, 8);
        let p = KernelProfile::analyze(&w, &plan);
        let bytes = p.total_bytes(2);
        assert!(bytes >= p.value_bytes + p.index_bytes);
        let ai = p.arithmetic_intensity(2);
        assert!(ai > 0.0 && ai.is_finite());
        // Pruned SpMV is memory-bound: well under 2 flops/byte.
        assert!(ai < 2.0, "arithmetic intensity {ai}");
    }

    #[test]
    fn cpu_target_uses_imbalance_not_divergence() {
        let w = bsp_matrix();
        let plan = ExecutionPlan::cpu_default(StorageFormat::Bspc).with_bsp_partition(4, 8);
        let p = KernelProfile::analyze(&w, &plan);
        assert!((p.divergence_factor - 1.0).abs() < 1e-12);
        assert!(p.imbalance_factor >= 1.0);
    }
}
