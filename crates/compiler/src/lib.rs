#![warn(missing_docs)]

//! # rtm-compiler
//!
//! The compiler-assisted half of RTMobile (paper §IV-B): given a pruned RNN
//! weight matrix, produce an optimized execution recipe for the mobile
//! runtime.
//!
//! The three optimizations of Fig. 3, each a module here:
//!
//! * [`reorder`] — **matrix reorder**: group rows with the same (or similar)
//!   nonzero pattern so parallel threads receive balanced work, fixing the
//!   thread-divergence / load-imbalance problem of pruned SpMV;
//! * [`rle`] — **redundant load elimination**: within a group, consecutive
//!   rows handled by one thread share their input loads; BSP's per-stripe
//!   shared column patterns make the sharing exact;
//! * the **BSPC format** itself lives in `rtm_sparse::bspc` and is selected
//!   through [`plan::StorageFormat::Bspc`].
//!
//! [`plan`] defines the execution-plan IR (tiling, unrolling, thread
//! mapping, memory placement, format, precision); [`profile`] lowers a
//! matrix + plan into a [`profile::KernelProfile`] — the exact operation and
//! byte counts the `rtm-sim` cost model prices; [`tuner`] is the offline
//! auto-tuning component that searches plan space against any caller-provided
//! cost function (§IV-B: "an auto-tuning component to perform an offline
//! search of the best execution configurations").
//!
//! # Example
//!
//! ```
//! use rtm_compiler::plan::{ExecutionPlan, StorageFormat, Target};
//! use rtm_compiler::profile::KernelProfile;
//! use rtm_tensor::Matrix;
//!
//! let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
//! let plan = ExecutionPlan::gpu_default(StorageFormat::Csr);
//! let profile = KernelProfile::analyze(&w, &plan);
//! assert_eq!(profile.flops, 2 * 2); // 2 nonzeros, one FMA each
//! ```

pub mod codegen;
pub mod fusion;
pub mod plan;
pub mod profile;
pub mod reorder;
pub mod rle;
pub mod tuner;

pub use codegen::GeneratedKernel;
pub use fusion::FusedMatrix;
pub use plan::{ExecutionPlan, StorageFormat, Target};
pub use profile::KernelProfile;
pub use reorder::ReorderPlan;
pub use tuner::{TuningResult, TuningSpace};
