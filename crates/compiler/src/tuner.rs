//! Offline auto-tuning (paper §IV-B, final paragraph).
//!
//! "Our compiler framework also includes an auto-tuning component to perform
//! an offline search of the best execution configurations like the matrix
//! tiling size, unrolling size, memory placement, etc. In particular, we
//! employ it to find the best block size that results in an optimal
//! combination of accuracy and performance."
//!
//! [`TuningSpace`] enumerates candidate plans; [`tune`] evaluates them
//! against any caller-supplied cost function (wall-clock from `rtm-sim`, a
//! weighted accuracy/latency objective, …) and returns the best plan plus
//! the full trace. The search is exhaustive over the discrete grid — the
//! spaces involved are small (hundreds of points), matching an offline
//! tuning budget — with an optional greedy neighbourhood refinement for
//! continuous-ish knobs.

use crate::plan::{ExecutionPlan, InputPlacement, StorageFormat, Target};
use std::sync::Mutex;

/// The discrete plan grid the tuner explores.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningSpace {
    /// Hardware target (fixed per search).
    pub target: Target,
    /// Storage formats to consider.
    pub formats: Vec<StorageFormat>,
    /// Candidate tile row counts.
    pub tile_rows: Vec<usize>,
    /// Candidate tile column counts.
    pub tile_cols: Vec<usize>,
    /// Candidate unroll factors.
    pub unrolls: Vec<usize>,
    /// Candidate thread counts.
    pub threads: Vec<usize>,
    /// Candidate input placements.
    pub placements: Vec<InputPlacement>,
    /// Candidate BSP partition pairs `(stripes, blocks)` — the "block size"
    /// search of the paper.
    pub bsp_partitions: Vec<(usize, usize)>,
}

impl TuningSpace {
    /// The default GPU search space (what the Table II experiments use).
    pub fn gpu_default() -> TuningSpace {
        TuningSpace {
            target: Target::MobileGpu,
            formats: vec![
                StorageFormat::Csr,
                StorageFormat::Bbs,
                StorageFormat::Csb,
                StorageFormat::Bspc,
            ],
            tile_rows: vec![32, 64, 128],
            tile_cols: vec![128, 256, 512],
            unrolls: vec![2, 4, 8],
            threads: vec![32, 64, 128],
            placements: vec![InputPlacement::Shared, InputPlacement::Global],
            bsp_partitions: vec![(4, 4), (8, 8), (16, 8)],
        }
    }

    /// The default CPU search space.
    pub fn cpu_default() -> TuningSpace {
        TuningSpace {
            target: Target::MobileCpu,
            formats: vec![
                StorageFormat::Csr,
                StorageFormat::Bbs,
                StorageFormat::Csb,
                StorageFormat::Bspc,
            ],
            tile_rows: vec![16, 32, 64],
            tile_cols: vec![256, 512],
            unrolls: vec![1, 4, 8],
            threads: vec![4, 8],
            placements: vec![InputPlacement::Shared],
            bsp_partitions: vec![(4, 4), (8, 8)],
        }
    }

    /// Enumerates every valid plan in the grid.
    pub fn candidates(&self) -> Vec<ExecutionPlan> {
        let mut out = Vec::new();
        for &format in &self.formats {
            for &tile_rows in &self.tile_rows {
                for &tile_cols in &self.tile_cols {
                    for &unroll in &self.unrolls {
                        for &threads in &self.threads {
                            for &placement in &self.placements {
                                for &(stripes, blocks) in &self.bsp_partitions {
                                    let plan = ExecutionPlan {
                                        target: self.target,
                                        format,
                                        precision: match self.target {
                                            Target::MobileGpu => {
                                                rtm_sparse::footprint::Precision::F16
                                            }
                                            Target::MobileCpu => {
                                                rtm_sparse::footprint::Precision::F32
                                            }
                                        },
                                        tile_rows,
                                        tile_cols,
                                        unroll,
                                        threads,
                                        rows_per_thread: match self.target {
                                            Target::MobileGpu => 4,
                                            Target::MobileCpu => 16,
                                        },
                                        use_reorder: true,
                                        use_rle: format == StorageFormat::Bspc,
                                        input_placement: placement,
                                        bsp_stripes: stripes,
                                        bsp_blocks: blocks,
                                    };
                                    if plan.validate().is_ok() {
                                        out.push(plan);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Plan with the lowest cost.
    pub best: ExecutionPlan,
    /// Its cost.
    pub best_cost: f64,
    /// Every `(plan, cost)` evaluated, in evaluation order.
    pub trace: Vec<(ExecutionPlan, f64)>,
}

/// Exhaustively evaluates the space against `cost` (lower is better) and
/// returns the best plan.
///
/// The cost function may be called from multiple threads when `parallel`
/// is true (uses `crossbeam`-free scoped threads via `std`); costs must be
/// deterministic for reproducible results.
///
/// # Panics
///
/// Panics if the space contains no valid candidates, or if `cost` returns
/// NaN for every candidate.
pub fn tune(space: &TuningSpace, cost: impl Fn(&ExecutionPlan) -> f64 + Sync) -> TuningResult {
    let candidates = space.candidates();
    assert!(
        !candidates.is_empty(),
        "tuning space has no valid candidates"
    );

    let trace: Mutex<Vec<(ExecutionPlan, f64)>> = Mutex::new(Vec::with_capacity(candidates.len()));
    // The spaces are small; evaluate serially for determinism of the trace
    // order, which tests rely on. (Costs are pure functions of the plan.)
    for plan in &candidates {
        let c = cost(plan);
        trace.lock().expect("no poisoned lock").push((*plan, c));
    }
    let trace = trace.into_inner().expect("no poisoned lock");

    let (best, best_cost) = trace
        .iter()
        .filter(|(_, c)| !c.is_nan())
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("non-NaN costs"))
        .map(|(p, c)| (*p, *c))
        .expect("at least one non-NaN cost");

    TuningResult {
        best,
        best_cost,
        trace,
    }
}

/// Maps a plan's `unroll` field to the concrete kernel realization the
/// runtime will execute (paper §IV-B: "unrolling size" is one of the
/// auto-tuned execution configurations).
///
/// Under the default `Auto` dispatch policy, an unroll factor at least as
/// wide as the host's SIMD lane width selects the vector kernel; narrower
/// factors select the matching scalar-unrolled variant. An explicit
/// [`SimdPolicy::Fixed`](rtm_tensor::simd::SimdPolicy) (e.g. `RTM_SIMD=off`)
/// overrides the plan — the tuner must never pick a realization the
/// dispatcher would refuse to run.
pub fn variant_for_unroll(unroll: usize) -> rtm_tensor::simd::Variant {
    use rtm_tensor::simd::{self, SimdPolicy, Variant};
    match simd::policy() {
        SimdPolicy::Fixed(v) => v,
        SimdPolicy::Auto => {
            if simd::vector_available() && unroll >= simd::lane_width() {
                Variant::Vector
            } else if unroll >= 8 {
                Variant::ScalarU8
            } else if unroll >= 4 {
                Variant::ScalarU4
            } else {
                Variant::ScalarU1
            }
        }
    }
}

/// The kernel realization a whole plan resolves to (its `unroll` axis).
pub fn plan_variant(plan: &ExecutionPlan) -> rtm_tensor::simd::Variant {
    variant_for_unroll(plan.unroll)
}

/// One measured point of the unroll axis: the variant an unroll factor
/// resolved to and its wall-clock cost on a representative dense workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnrollCost {
    /// The plan-level unroll factor that was measured.
    pub unroll: usize,
    /// The kernel variant [`variant_for_unroll`] resolved it to.
    pub variant: rtm_tensor::simd::Variant,
    /// Mean seconds per `rows × cols` gemv sweep (lower is better).
    pub seconds: f64,
}

/// The measured-cost feedback hook: times the *real* kernel each candidate
/// unroll factor resolves to on a seeded `rows × cols` dense gemv workload
/// and returns one [`UnrollCost`] per candidate (mean of `iters` timed
/// sweeps after one warm-up).
///
/// Feed the result to [`tune`] through [`unroll_cost_fn`] to make the
/// search prefer the realization that is actually fastest on this host,
/// instead of assuming "wider is better".
pub fn measure_unroll_costs(
    rows: usize,
    cols: usize,
    unrolls: &[usize],
    iters: usize,
) -> Vec<UnrollCost> {
    // The tuner records into the same registry it reads: each candidate's
    // measured cost lands as a `tuner.unroll_cost_us.u<N>` gauge under a
    // `tuner.measure_unroll_costs` span, so a traced pipeline run shows
    // both what the tuner measured and how long measuring took.
    let _span = rtm_trace::span("tuner.measure_unroll_costs");
    let mut rng = rtm_tensor::init::rng_from_seed(0x5eed_cafe);
    let a = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng);
    let x: Vec<f32> = (0..cols).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let mut y = vec![0.0f32; rows];
    let iters = iters.max(1);
    unrolls
        .iter()
        .map(|&unroll| {
            let variant = variant_for_unroll(unroll);
            let sweep = |y: &mut [f32]| {
                for (r, yr) in y.iter_mut().enumerate() {
                    *yr = rtm_tensor::simd::dot_variant(variant, a.row(r), &x);
                }
            };
            sweep(&mut y); // warm-up
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                sweep(&mut y);
                std::hint::black_box(&y);
            }
            let cost = UnrollCost {
                unroll,
                variant,
                seconds: t0.elapsed().as_secs_f64() / iters as f64,
            };
            if rtm_trace::enabled() {
                let reg = rtm_trace::global();
                reg.gauge_set(
                    &format!("tuner.unroll_cost_us.u{unroll}"),
                    cost.seconds * 1e6,
                );
                reg.counter_add(rtm_trace::key::TUNER_MEASUREMENTS, 1);
            }
            cost
        })
        .collect()
}

/// Lifts measured per-unroll kernel timings into a [`tune`]-compatible
/// cost: each plan costs its unroll's measured seconds (infinite when the
/// unroll was never measured, so unmeasured realizations lose the search).
pub fn unroll_cost_fn(measured: &[UnrollCost]) -> impl Fn(&ExecutionPlan) -> f64 + Sync + '_ {
    move |p: &ExecutionPlan| {
        measured
            .iter()
            .find(|m| m.unroll == p.unroll)
            .map_or(f64::INFINITY, |m| m.seconds)
    }
}

/// One measured point of the precision axis: the wall-clock cost of a
/// representative BSPC SpMV executed at that storage precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionCost {
    /// The storage precision that was measured.
    pub precision: rtm_sparse::Precision,
    /// Mean seconds per SpMV sweep (lower is better).
    pub seconds: f64,
}

/// Times the real f32 / f16 / int8 BSPC SpMV kernels on a seeded,
/// BSP-structured `rows × cols` workload partitioned into
/// `stripes × blocks`, and returns one [`PrecisionCost`] per precision
/// (mean of `iters` timed sweeps after one warm-up).
///
/// This is the measurement half of per-layer precision selection: the
/// pipeline measures each distinct layer shape once, then picks the
/// fastest precision per layer with [`select_precision`] — subject to its
/// accuracy gate, which the tuner deliberately knows nothing about.
pub fn measure_precision_costs(
    rows: usize,
    cols: usize,
    stripes: usize,
    blocks: usize,
    iters: usize,
) -> Vec<PrecisionCost> {
    use rtm_sparse::{BspcMatrix, Precision};
    // Mirrors measure_unroll_costs: every candidate's measured cost lands
    // as a `tuner.precision_cost_us.<tag>` gauge under one span, so traced
    // pipeline runs show what the precision search saw.
    let _span = rtm_trace::span("tuner.measure_precision_costs");
    let mut rng = rtm_tensor::init::rng_from_seed(0x5eed_cafe);
    let stripes = stripes.max(1);
    let blocks = blocks.max(1);
    let stripe_h = rows.div_ceil(stripes).max(1);
    let block_w = cols.div_ceil(blocks).max(1);
    // A BSP-structured pattern with roughly one kept block in four: the
    // kept-block diagonal wraps, so every stripe and every block column
    // carries weight and the kernel sees realistic gather strides.
    let dense = rtm_tensor::Matrix::from_fn(rows, cols, |r, c| {
        if (r / stripe_h + c / block_w).is_multiple_of(4) {
            ((r * 31 + c * 17) % 1009) as f32 / 1009.0 - 0.5
        } else {
            0.0
        }
    });
    let m = match BspcMatrix::from_dense(&dense, stripes, blocks) {
        Ok(m) => m,
        // Degenerate partitions (more stripes than rows, …) fall back to a
        // 1×1 partition rather than failing the whole tuning run.
        Err(_) => BspcMatrix::from_dense(&dense, 1, 1).expect("1x1 partition is always valid"),
    };
    let x: Vec<f32> = (0..cols).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let mut y = vec![0.0f32; rows];
    let iters = iters.max(1);
    [Precision::F32, Precision::F16, Precision::Int8]
        .into_iter()
        .map(|precision| {
            m.spmv_prec_into(precision, &x, &mut y)
                .expect("measurement shapes agree"); // warm-up
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                m.spmv_prec_into(precision, &x, &mut y)
                    .expect("measurement shapes agree");
                std::hint::black_box(&y);
            }
            let cost = PrecisionCost {
                precision,
                seconds: t0.elapsed().as_secs_f64() / iters as f64,
            };
            if rtm_trace::enabled() {
                let reg = rtm_trace::global();
                reg.gauge_set(
                    &format!("tuner.precision_cost_us.{}", precision.tag()),
                    cost.seconds * 1e6,
                );
                reg.counter_add(rtm_trace::key::TUNER_PRECISION_MEASUREMENTS, 1);
            }
            cost
        })
        .collect()
}

/// Picks the fastest measured precision (lowest finite seconds). Falls
/// back to f32 when `measured` is empty or nothing measured finite —
/// the full-precision kernel is always safe.
pub fn select_precision(measured: &[PrecisionCost]) -> rtm_sparse::Precision {
    measured
        .iter()
        .filter(|m| m.seconds.is_finite())
        .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite costs"))
        .map_or(rtm_sparse::Precision::F32, |m| m.precision)
}

/// One measured point of the format axis: the wall-clock cost of a real
/// SpMV (and, when `batch > 1`, batched SpMM) sweep of one layer's actual
/// weight matrix encoded in that storage format at that precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatCost {
    /// The storage format that was measured.
    pub format: StorageFormat,
    /// The storage precision the sweep ran at.
    pub precision: rtm_sparse::Precision,
    /// Mean seconds per sweep (lower is better).
    pub seconds: f64,
}

/// Boxed timing sweep borrowing the shared activation buffer.
type SweepFn<'a> = Box<dyn Fn(&mut [f32]) + 'a>;

/// Times the real serial kernels of every candidate `format` on the
/// *actual* layer matrix `w` — not a synthetic proxy — at precision
/// `precision`, and returns one [`FormatCost`] per format (mean of
/// `iters` timed sweeps after one warm-up). `batch > 1` measures the
/// lane-interleaved SpMM path instead of SpMV, matching how the runtime
/// will actually call the layer.
///
/// BSPC partitions into `stripes × blocks`; BBS uses `blocks` banks; CSB
/// uses `rows/stripes × cols/blocks` block panels — the same mapping the
/// deploy path applies, so the measured encodings are the ones that ship.
///
/// Formats whose encoder rejects the matrix (degenerate partitions) cost
/// `f64::INFINITY` and therefore lose the search rather than failing it.
pub fn measure_format_costs(
    w: &rtm_tensor::Matrix,
    formats: &[StorageFormat],
    precision: rtm_sparse::Precision,
    stripes: usize,
    blocks: usize,
    batch: usize,
    iters: usize,
) -> Vec<FormatCost> {
    use rtm_sparse::{BbsMatrix, BspcMatrix, CsbMatrix, CsrMatrix};
    // Mirrors measure_precision_costs: each candidate's measured cost lands
    // as a `tuner.format_cost_us.<fmt>.<prec>` gauge under one span.
    let _span = rtm_trace::span("tuner.measure_format_costs");
    let (rows, cols) = w.shape();
    let stripes = stripes.max(1);
    let blocks = blocks.max(1);
    let batch = batch.max(1);
    let iters = iters.max(1);
    let mut rng = rtm_tensor::init::rng_from_seed(0x5eed_cafe);
    let xs: Vec<f32> = (0..cols * batch)
        .map(|_| rng.gen_f32() * 2.0 - 1.0)
        .collect();
    let mut ys = vec![0.0f32; rows * batch];
    formats
        .iter()
        .map(|&format| {
            // One boxed sweep closure per format so the timing loop below
            // is shared — every branch runs the same serial entry the
            // runtime dispatches to.
            let xs = &xs;
            let sweep: Option<SweepFn<'_>> =
                match format {
                    StorageFormat::Dense => {
                        let a = w.clone();
                        Some(Box::new(move |ys: &mut [f32]| {
                            if batch == 1 {
                                rtm_tensor::gemm::gemv_into(&a, xs, ys).expect("shapes agree");
                            } else {
                                rtm_tensor::gemm::gemv_batch_into(&a, xs, batch, ys)
                                    .expect("shapes agree");
                            }
                        }))
                    }
                    StorageFormat::Csr => {
                        let m = CsrMatrix::from_dense(w);
                        Some(Box::new(move |ys: &mut [f32]| {
                            if batch == 1 {
                                m.spmv_prec_into(precision, xs, ys).expect("shapes agree");
                            } else {
                                m.spmm_prec_into(precision, xs, batch, ys)
                                    .expect("shapes agree");
                            }
                        }))
                    }
                    StorageFormat::Bspc => {
                        BspcMatrix::from_dense(w, stripes, blocks)
                            .ok()
                            .map(|m| -> SweepFn<'_> {
                                Box::new(move |ys: &mut [f32]| {
                                    if batch == 1 {
                                        m.spmv_prec_into(precision, xs, ys).expect("shapes agree");
                                    } else {
                                        m.spmm_prec_into(precision, xs, batch, ys)
                                            .expect("shapes agree");
                                    }
                                })
                            })
                    }
                    StorageFormat::Bbs => BbsMatrix::from_dense(w, blocks.min(cols.max(1)))
                        .ok()
                        .map(|m| -> SweepFn<'_> {
                            Box::new(move |ys: &mut [f32]| {
                                if batch == 1 {
                                    m.spmv_prec_into(precision, xs, ys).expect("shapes agree");
                                } else {
                                    m.spmm_prec_into(precision, xs, batch, ys)
                                        .expect("shapes agree");
                                }
                            })
                        }),
                    StorageFormat::Csb => CsbMatrix::from_dense(
                        w,
                        rows.div_ceil(stripes).max(1),
                        cols.div_ceil(blocks).max(1),
                    )
                    .ok()
                    .map(|m| -> SweepFn<'_> {
                        Box::new(move |ys: &mut [f32]| {
                            if batch == 1 {
                                m.spmv_prec_into(precision, xs, ys).expect("shapes agree");
                            } else {
                                m.spmm_prec_into(precision, xs, batch, ys)
                                    .expect("shapes agree");
                            }
                        })
                    }),
                };
            let seconds = match sweep {
                None => f64::INFINITY,
                Some(sweep) => {
                    sweep(&mut ys); // warm-up
                    let t0 = std::time::Instant::now();
                    for _ in 0..iters {
                        sweep(&mut ys);
                        std::hint::black_box(&ys);
                    }
                    t0.elapsed().as_secs_f64() / iters as f64
                }
            };
            let cost = FormatCost {
                format,
                precision,
                seconds,
            };
            if rtm_trace::enabled() {
                let reg = rtm_trace::global();
                reg.gauge_set(
                    &format!("tuner.format_cost_us.{format}.{}", precision.tag()),
                    cost.seconds * 1e6,
                );
                reg.counter_add(rtm_trace::key::TUNER_FORMAT_MEASUREMENTS, 1);
            }
            cost
        })
        .collect()
}

/// Picks the fastest measured format (lowest finite seconds). Falls back
/// to BSPC when `measured` is empty or nothing measured finite — the
/// paper's format is always a safe default.
pub fn select_format(measured: &[FormatCost]) -> StorageFormat {
    measured
        .iter()
        .filter(|m| m.seconds.is_finite())
        .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite costs"))
        .map_or(StorageFormat::Bspc, |m| m.format)
}

/// Searches only the BSP partition axis — the paper's "best block size"
/// search — against a cost that sees the `(stripes, blocks)` pair, e.g. a
/// weighted combination of pruned-model accuracy and simulated latency.
///
/// # Panics
///
/// Panics if `partitions` is empty.
pub fn tune_block_size(
    partitions: &[(usize, usize)],
    cost: impl Fn(usize, usize) -> f64,
) -> ((usize, usize), f64) {
    assert!(!partitions.is_empty(), "no partitions to search");
    let mut best = partitions[0];
    let mut best_cost = f64::INFINITY;
    for &(s, b) in partitions {
        let c = cost(s, b);
        if c < best_cost {
            best_cost = c;
            best = (s, b);
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_valid_and_plentiful() {
        let space = TuningSpace::gpu_default();
        let cands = space.candidates();
        assert!(cands.len() > 100, "got {}", cands.len());
        assert!(cands.iter().all(|p| p.validate().is_ok()));
        // Both formats present.
        assert!(cands.iter().any(|p| p.format == StorageFormat::Csr));
        assert!(cands.iter().any(|p| p.format == StorageFormat::Bspc));
    }

    #[test]
    fn tune_finds_global_minimum() {
        let space = TuningSpace::cpu_default();
        // Cost: prefer BSPC + largest tile_rows + most threads.
        let cost = |p: &ExecutionPlan| -> f64 {
            let mut c = 100.0;
            if p.format == StorageFormat::Bspc {
                c -= 50.0;
            }
            c -= p.tile_rows as f64 / 10.0;
            c -= p.threads as f64;
            c
        };
        let result = tune(&space, cost);
        assert_eq!(result.best.format, StorageFormat::Bspc);
        assert_eq!(result.best.tile_rows, 64);
        assert_eq!(result.best.threads, 8);
        assert_eq!(result.trace.len(), space.candidates().len());
        // Best cost really is the minimum of the trace.
        let min = result
            .trace
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.best_cost, min);
    }

    #[test]
    fn tune_skips_nan_costs() {
        let space = TuningSpace::cpu_default();
        // Every format but BSPC measures NaN — the search must skip them
        // all instead of letting NaN poison the comparison.
        let cost = |p: &ExecutionPlan| -> f64 {
            if p.format == StorageFormat::Bspc {
                1.0
            } else {
                f64::NAN
            }
        };
        let result = tune(&space, cost);
        assert_eq!(result.best.format, StorageFormat::Bspc);
    }

    #[test]
    fn unroll_maps_to_real_variants() {
        use rtm_tensor::simd::{self, SimdPolicy, Variant};
        match simd::policy() {
            // An explicit policy (e.g. the RTM_SIMD=off CI pass) overrides
            // the plan axis entirely.
            SimdPolicy::Fixed(v) => {
                for u in [1usize, 2, 4, 8, 16] {
                    assert_eq!(variant_for_unroll(u), v);
                }
            }
            SimdPolicy::Auto => {
                if simd::vector_available() {
                    // Lane width is 8 (AVX2) or 4 (NEON), so unroll 8
                    // always reaches the vector kernel when one exists.
                    assert_eq!(variant_for_unroll(8), Variant::Vector);
                    if simd::lane_width() > 4 {
                        assert_eq!(variant_for_unroll(4), Variant::ScalarU4);
                    }
                } else {
                    assert_eq!(variant_for_unroll(8), Variant::ScalarU8);
                    assert_eq!(variant_for_unroll(4), Variant::ScalarU4);
                }
                assert_eq!(variant_for_unroll(1), Variant::ScalarU1);
                assert_eq!(variant_for_unroll(2), Variant::ScalarU1);
            }
        }
        let plan = ExecutionPlan::cpu_default(StorageFormat::Bspc);
        assert_eq!(plan_variant(&plan), variant_for_unroll(plan.unroll));
    }

    #[test]
    fn measured_costs_feed_the_tuner() {
        let space = TuningSpace::cpu_default();
        let measured = measure_unroll_costs(48, 96, &space.unrolls, 3);
        assert_eq!(measured.len(), space.unrolls.len());
        for m in &measured {
            assert!(m.seconds.is_finite() && m.seconds > 0.0, "{m:?}");
            assert_eq!(m.variant, variant_for_unroll(m.unroll));
        }
        let result = tune(&space, unroll_cost_fn(&measured));
        // The search settles on whichever unroll measured fastest.
        let fastest = measured
            .iter()
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
            .expect("nonempty");
        assert_eq!(result.best.unroll, fastest.unroll);
        assert_eq!(result.best_cost, fastest.seconds);
    }

    #[test]
    fn precision_measurement_covers_all_precisions() {
        use rtm_sparse::Precision;
        let measured = measure_precision_costs(48, 96, 4, 4, 2);
        let precs: Vec<Precision> = measured.iter().map(|m| m.precision).collect();
        assert_eq!(precs, [Precision::F32, Precision::F16, Precision::Int8]);
        for m in &measured {
            assert!(m.seconds.is_finite() && m.seconds > 0.0, "{m:?}");
        }
        // Degenerate partition falls back instead of panicking.
        let tiny = measure_precision_costs(2, 2, 64, 64, 1);
        assert_eq!(tiny.len(), 3);
    }

    #[test]
    fn precision_selection_picks_fastest_and_defaults_to_f32() {
        use rtm_sparse::Precision;
        let costs = [
            PrecisionCost {
                precision: Precision::F32,
                seconds: 3.0,
            },
            PrecisionCost {
                precision: Precision::F16,
                seconds: 2.0,
            },
            PrecisionCost {
                precision: Precision::Int8,
                seconds: 1.0,
            },
        ];
        assert_eq!(select_precision(&costs), Precision::Int8);
        let nan = [PrecisionCost {
            precision: Precision::Int8,
            seconds: f64::NAN,
        }];
        assert_eq!(select_precision(&nan), Precision::F32);
        assert_eq!(select_precision(&[]), Precision::F32);
    }

    #[test]
    fn format_measurement_covers_every_candidate() {
        use rtm_sparse::Precision;
        let w = rtm_tensor::Matrix::from_fn(48, 64, |r, c| {
            if (r / 6 + c / 8) % 3 == 0 {
                0.1 + (r * 7 + c) as f32 / 100.0
            } else {
                0.0
            }
        });
        let formats = [
            StorageFormat::Dense,
            StorageFormat::Csr,
            StorageFormat::Bspc,
            StorageFormat::Bbs,
            StorageFormat::Csb,
        ];
        for batch in [1usize, 4] {
            let measured = measure_format_costs(&w, &formats, Precision::F32, 8, 8, batch, 2);
            assert_eq!(measured.len(), formats.len());
            for m in &measured {
                assert!(m.seconds.is_finite() && m.seconds > 0.0, "{m:?}");
                assert_eq!(m.precision, Precision::F32);
            }
            let winner = select_format(&measured);
            let fastest = measured
                .iter()
                .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
                .expect("nonempty");
            assert_eq!(winner, fastest.format);
        }
    }

    #[test]
    fn format_selection_defaults_to_bspc() {
        use rtm_sparse::Precision;
        assert_eq!(select_format(&[]), StorageFormat::Bspc);
        let inf = [FormatCost {
            format: StorageFormat::Csb,
            precision: Precision::F32,
            seconds: f64::INFINITY,
        }];
        assert_eq!(select_format(&inf), StorageFormat::Bspc);
        let costs = [
            FormatCost {
                format: StorageFormat::Bspc,
                precision: Precision::F32,
                seconds: 2.0,
            },
            FormatCost {
                format: StorageFormat::Bbs,
                precision: Precision::F32,
                seconds: 1.0,
            },
        ];
        assert_eq!(select_format(&costs), StorageFormat::Bbs);
    }

    #[test]
    fn tuning_space_includes_new_formats() {
        for space in [TuningSpace::gpu_default(), TuningSpace::cpu_default()] {
            let cands = space.candidates();
            assert!(cands.iter().any(|p| p.format == StorageFormat::Bbs));
            assert!(cands.iter().any(|p| p.format == StorageFormat::Csb));
        }
    }

    #[test]
    fn block_size_search() {
        let partitions = [(2usize, 2usize), (4, 4), (8, 8)];
        // Prefer the middle partition.
        let ((s, b), c) = tune_block_size(&partitions, |s, b| {
            (s as f64 - 4.0).abs() + (b as f64 - 4.0).abs()
        });
        assert_eq!((s, b), (4, 4));
        assert_eq!(c, 0.0);
    }

    #[test]
    #[should_panic(expected = "no partitions")]
    fn empty_partition_list_panics() {
        tune_block_size(&[], |_, _| 0.0);
    }
}
