//! The execution-plan IR.
//!
//! An [`ExecutionPlan`] is everything the mobile runtime needs to execute
//! one pruned-matrix kernel: the hardware target, the storage format, the
//! tiling/unrolling configuration, the thread mapping, whether the two
//! compiler optimizations (reorder, RLE) are enabled, the precision, and
//! where the input vector is staged. The auto-tuner searches this space;
//! `rtm-sim` prices concrete plans.

use rtm_sparse::footprint::Precision;
use std::fmt;

/// Which processor of the SoC executes the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The big-core CPU cluster (Kryo-485-class, SIMD f32).
    MobileCpu,
    /// The embedded GPU (Adreno-640-class, SIMT f16).
    MobileGpu,
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::MobileCpu => write!(f, "mobile-cpu"),
            Target::MobileGpu => write!(f, "mobile-gpu"),
        }
    }
}

/// How the pruned weight matrix is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFormat {
    /// Dense row-major (the unpruned baseline).
    Dense,
    /// Compressed sparse row with one index per nonzero.
    Csr,
    /// Block-based Structured Pruning Compact (paper §IV-B-c).
    Bspc,
    /// Bank-balanced sparse (uniform per-row-per-bank nonzero budget,
    /// padded ELL storage — load balance by construction).
    Bbs,
    /// Compressed structured blocks (CSR over dense-ish block panels —
    /// pattern-pruned weights keep whole small blocks).
    Csb,
}

impl fmt::Display for StorageFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageFormat::Dense => write!(f, "dense"),
            StorageFormat::Csr => write!(f, "csr"),
            StorageFormat::Bspc => write!(f, "bspc"),
            StorageFormat::Bbs => write!(f, "bbs"),
            StorageFormat::Csb => write!(f, "csb"),
        }
    }
}

/// Where the kernel stages the input feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputPlacement {
    /// Every access goes to device/global memory.
    Global,
    /// The tile's input slice is staged in on-chip shared/local memory
    /// first (GPU) or relied on to stay in L1 (CPU).
    Shared,
}

/// A complete execution configuration for one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionPlan {
    /// Hardware target.
    pub target: Target,
    /// Weight storage format.
    pub format: StorageFormat,
    /// Weight/activation precision.
    pub precision: Precision,
    /// Rows per tile (rows assigned to one thread group / core chunk).
    pub tile_rows: usize,
    /// Columns per tile (input-vector slice staged at once).
    pub tile_cols: usize,
    /// Inner-loop unroll factor.
    pub unroll: usize,
    /// Number of hardware threads (CPU) or threads per workgroup (GPU).
    pub threads: usize,
    /// Consecutive rows assigned to one thread — the run length redundant
    /// load elimination shares loads across ("each thread processes
    /// multiple continuous rows", §IV-B-b).
    pub rows_per_thread: usize,
    /// Apply the matrix-reorder optimization.
    pub use_reorder: bool,
    /// Apply redundant load elimination.
    pub use_rle: bool,
    /// Input vector staging.
    pub input_placement: InputPlacement,
    /// BSP stripe count the matrix was pruned with (used to recover the
    /// shared-pattern structure when `format == Bspc`).
    pub bsp_stripes: usize,
    /// BSP block count per stripe.
    pub bsp_blocks: usize,
}

impl ExecutionPlan {
    /// A reasonable default GPU plan: fp16, 32-thread warps, 64-row tiles,
    /// both compiler optimizations on.
    pub fn gpu_default(format: StorageFormat) -> ExecutionPlan {
        ExecutionPlan {
            target: Target::MobileGpu,
            format,
            precision: Precision::F16,
            tile_rows: 64,
            tile_cols: 256,
            unroll: 4,
            threads: 64,
            rows_per_thread: 4,
            use_reorder: true,
            use_rle: true,
            input_placement: InputPlacement::Shared,
            bsp_stripes: 8,
            bsp_blocks: 8,
        }
    }

    /// A reasonable default CPU plan: fp32, 8 threads (the octa-core Kryo),
    /// both compiler optimizations on.
    pub fn cpu_default(format: StorageFormat) -> ExecutionPlan {
        ExecutionPlan {
            target: Target::MobileCpu,
            format,
            precision: Precision::F32,
            tile_rows: 32,
            tile_cols: 512,
            unroll: 8,
            threads: 8,
            rows_per_thread: 16,
            use_reorder: true,
            use_rle: true,
            input_placement: InputPlacement::Shared,
            bsp_stripes: 8,
            bsp_blocks: 8,
        }
    }

    /// Copy with both compiler optimizations disabled (ablation baseline).
    pub fn without_optimizations(mut self) -> ExecutionPlan {
        self.use_reorder = false;
        self.use_rle = false;
        self
    }

    /// Copy with a different storage format.
    pub fn with_format(mut self, format: StorageFormat) -> ExecutionPlan {
        self.format = format;
        self
    }

    /// Copy with the BSP partition the weights were pruned with.
    pub fn with_bsp_partition(mut self, stripes: usize, blocks: usize) -> ExecutionPlan {
        self.bsp_stripes = stripes;
        self.bsp_blocks = blocks;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tile_rows == 0 || self.tile_cols == 0 {
            return Err("tile dimensions must be positive".into());
        }
        if self.unroll == 0 {
            return Err("unroll factor must be positive".into());
        }
        if self.threads == 0 {
            return Err("thread count must be positive".into());
        }
        if self.rows_per_thread == 0 {
            return Err("rows_per_thread must be positive".into());
        }
        if self.bsp_stripes == 0 || self.bsp_blocks == 0 {
            return Err("BSP partition must be positive".into());
        }
        if self.format == StorageFormat::Dense && self.use_rle {
            // RLE is defined on shared sparse patterns; dense kernels load
            // the whole input anyway.
            return Err("RLE is meaningless for dense storage".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ExecutionPlan::gpu_default(StorageFormat::Bspc)
            .validate()
            .is_ok());
        assert!(ExecutionPlan::cpu_default(StorageFormat::Csr)
            .validate()
            .is_ok());
        // Dense default plans must not claim RLE.
        let dense = ExecutionPlan::gpu_default(StorageFormat::Dense);
        assert!(dense.validate().is_err());
        assert!(dense.without_optimizations().validate().is_ok());
    }

    #[test]
    fn builders_modify_copies() {
        let p = ExecutionPlan::gpu_default(StorageFormat::Bspc);
        let q = p.with_format(StorageFormat::Csr).with_bsp_partition(4, 2);
        assert_eq!(p.format, StorageFormat::Bspc);
        assert_eq!(q.format, StorageFormat::Csr);
        assert_eq!(q.bsp_stripes, 4);
        assert_eq!(q.bsp_blocks, 2);
        let r = p.without_optimizations();
        assert!(!r.use_reorder && !r.use_rle);
        assert!(p.use_reorder && p.use_rle);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut p = ExecutionPlan::cpu_default(StorageFormat::Csr);
        p.tile_rows = 0;
        assert!(p.validate().is_err());
        let mut p = ExecutionPlan::cpu_default(StorageFormat::Csr);
        p.unroll = 0;
        assert!(p.validate().is_err());
        let mut p = ExecutionPlan::cpu_default(StorageFormat::Csr);
        p.threads = 0;
        assert!(p.validate().is_err());
        let mut p = ExecutionPlan::cpu_default(StorageFormat::Csr);
        p.bsp_blocks = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Target::MobileCpu.to_string(), "mobile-cpu");
        assert_eq!(Target::MobileGpu.to_string(), "mobile-gpu");
        assert_eq!(StorageFormat::Bspc.to_string(), "bspc");
        assert_eq!(StorageFormat::Dense.to_string(), "dense");
        assert_eq!(StorageFormat::Csr.to_string(), "csr");
    }
}
