//! Redundant load elimination (paper §IV-B-b).
//!
//! "Within a group, each thread processes multiple continuous rows, offering
//! us an opportunity of eliminating the redundant memory load operations.
//! This optimization is specifically enabled by our block-based structured
//! pruning, because after such pruning, the preserved weights in two
//! neighbor rows may share the same pattern and require the same data in the
//! input feature maps."
//!
//! The analysis here counts input-vector loads under three regimes:
//!
//! * **naive** — one load per nonzero (what unstructured CSR does);
//! * **RLE** — each thread loads the *union* of the column patterns of its
//!   assigned consecutive rows once; identical patterns (BSP stripes)
//!   collapse to a single load set;
//! * the elimination ratio `naive / rle` feeds the simulator's memory model.

use rtm_tensor::Matrix;
use std::collections::BTreeSet;

/// Input-load counts with and without redundant load elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Loads with one gather per nonzero.
    pub naive_loads: usize,
    /// Loads after per-thread union sharing.
    pub rle_loads: usize,
}

impl LoadStats {
    /// `naive / rle`; 1.0 when nothing is shared (or the matrix is empty).
    pub fn elimination_ratio(&self) -> f64 {
        if self.rle_loads == 0 {
            1.0
        } else {
            self.naive_loads as f64 / self.rle_loads as f64
        }
    }

    /// Absolute loads avoided.
    pub fn eliminated(&self) -> usize {
        self.naive_loads.saturating_sub(self.rle_loads)
    }
}

/// Counts input loads when rows (in the given execution order) are dealt to
/// threads in runs of `rows_per_thread` consecutive rows.
///
/// `order` maps execution slot → original row index; pass the identity (or
/// `None`) for an un-reordered kernel and a
/// [`ReorderPlan`](crate::reorder::ReorderPlan) permutation for a reordered
/// one — reordering first makes the runs pattern-uniform, which is what
/// unlocks the elimination.
///
/// # Panics
///
/// Panics if `rows_per_thread == 0` or `order` (when given) is not a
/// permutation of the row indices.
pub fn analyze_loads(w: &Matrix, order: Option<&[usize]>, rows_per_thread: usize) -> LoadStats {
    assert!(rows_per_thread > 0, "rows_per_thread must be positive");
    let rows = w.rows();
    let identity: Vec<usize>;
    let order: &[usize] = match order {
        Some(o) => {
            assert_eq!(o.len(), rows, "order length must equal row count");
            o
        }
        None => {
            identity = (0..rows).collect();
            &identity
        }
    };

    let pattern = |r: usize| -> Vec<usize> {
        w.row(r)
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(c, _)| c)
            .collect()
    };

    let mut naive = 0usize;
    let mut rle = 0usize;
    for run in order.chunks(rows_per_thread) {
        let mut union: BTreeSet<usize> = BTreeSet::new();
        for &r in run {
            assert!(r < rows, "order contains out-of-range row {r}");
            let p = pattern(r);
            naive += p.len();
            union.extend(p);
        }
        rle += union.len();
    }
    LoadStats {
        naive_loads: naive,
        rle_loads: rle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 rows in 2 stripes of 4; stripe 0 reads columns {0,1}, stripe 1
    /// reads columns {2,3}: the exact structure BSP produces.
    fn bsp_matrix() -> Matrix {
        Matrix::from_fn(8, 4, |r, c| {
            let stripe = r / 4;
            if c / 2 == stripe {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn shared_patterns_collapse() {
        let stats = analyze_loads(&bsp_matrix(), None, 4);
        // Naive: 8 rows x 2 loads = 16. RLE: 2 runs x 2 unique columns = 4.
        assert_eq!(stats.naive_loads, 16);
        assert_eq!(stats.rle_loads, 4);
        assert!((stats.elimination_ratio() - 4.0).abs() < 1e-12);
        assert_eq!(stats.eliminated(), 12);
    }

    #[test]
    fn run_length_one_eliminates_nothing() {
        let stats = analyze_loads(&bsp_matrix(), None, 1);
        assert_eq!(stats.naive_loads, stats.rle_loads);
        assert_eq!(stats.elimination_ratio(), 1.0);
    }

    #[test]
    fn disjoint_patterns_share_nothing() {
        // Each row reads its own column: unions add up, no elimination.
        let m = Matrix::identity(6);
        let stats = analyze_loads(&m, None, 3);
        assert_eq!(stats.naive_loads, 6);
        assert_eq!(stats.rle_loads, 6);
    }

    #[test]
    fn reordering_unlocks_elimination() {
        // Interleave the stripes so consecutive rows do NOT share patterns.
        let m = Matrix::from_fn(8, 4, |r, c| {
            let stripe = r % 2; // alternating patterns
            if c / 2 == stripe {
                1.0
            } else {
                0.0
            }
        });
        let naive_order = analyze_loads(&m, None, 4);
        // Un-reordered runs mix both patterns: union = all 4 columns.
        assert_eq!(naive_order.rle_loads, 8);
        // Reorder groups identical patterns together.
        let plan = crate::reorder::ReorderPlan::compute(&m, 2);
        let reordered = analyze_loads(&m, Some(&plan.perm), 4);
        assert_eq!(reordered.rle_loads, 4);
        assert!(reordered.elimination_ratio() > naive_order.elimination_ratio());
    }

    #[test]
    fn empty_matrix() {
        let stats = analyze_loads(&Matrix::zeros(0, 0), None, 4);
        assert_eq!(stats.naive_loads, 0);
        assert_eq!(stats.rle_loads, 0);
        assert_eq!(stats.elimination_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "rows_per_thread must be positive")]
    fn zero_run_panics() {
        analyze_loads(&Matrix::zeros(1, 1), None, 0);
    }

    #[test]
    #[should_panic(expected = "order length")]
    fn bad_order_rejected() {
        analyze_loads(&Matrix::zeros(2, 2), Some(&[0]), 1);
    }
}
