//! Gate fusion: stacking a GRU layer's three gate matrices into one kernel.
//!
//! Mobile RNN runtimes never launch six SpMV kernels per GRU step; they
//! stack the update/reset/candidate matrices vertically so each step is two
//! launches — one `3H × I` input-side kernel and one `3H × H`
//! recurrent-side kernel. This pass performs that stacking and records how
//! to split the fused output back into gates. It is the transformation that
//! makes the simulator's 2-kernels-per-layer frame model (and its
//! launch-overhead floor, i.e. the Figure 4 saturation) a faithful
//! description of the deployed code.

use rtm_tensor::{Matrix, ShapeError};

/// A vertically fused matrix plus the row extents of its parts.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedMatrix {
    /// The stacked matrix.
    pub matrix: Matrix,
    /// Row count of each stacked part, in order.
    pub part_rows: Vec<usize>,
}

impl FusedMatrix {
    /// Stacks `parts` vertically.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the parts disagree on column count or the
    /// list is empty.
    pub fn stack(parts: &[&Matrix]) -> Result<FusedMatrix, ShapeError> {
        let first = parts.first().ok_or(ShapeError {
            op: "fuse_stack",
            lhs: (0, 0),
            rhs: (0, 0),
        })?;
        let mut matrix = (*first).clone();
        let mut part_rows = vec![first.rows()];
        for part in &parts[1..] {
            matrix = matrix.vstack(part)?;
            part_rows.push(part.rows());
        }
        Ok(FusedMatrix { matrix, part_rows })
    }

    /// Splits a fused output vector back into per-part vectors.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` does not equal the fused row count.
    pub fn split_output(&self, y: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(
            y.len(),
            self.matrix.rows(),
            "output length must match fused rows"
        );
        let mut out = Vec::with_capacity(self.part_rows.len());
        let mut offset = 0;
        for &rows in &self.part_rows {
            out.push(y[offset..offset + rows].to_vec());
            offset += rows;
        }
        out
    }

    /// Number of fused parts.
    pub fn num_parts(&self) -> usize {
        self.part_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::gemm;

    fn mats() -> (Matrix, Matrix, Matrix) {
        (
            Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32),
            Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5),
            Matrix::from_fn(3, 4, |r, c| -((r * 4 + c) as f32)),
        )
    }

    #[test]
    fn fused_gemv_equals_separate_gemvs() {
        let (a, b, c) = mats();
        let fused = FusedMatrix::stack(&[&a, &b, &c]).expect("same cols");
        assert_eq!(fused.matrix.shape(), (9, 4));
        assert_eq!(fused.num_parts(), 3);

        let x = vec![1.0, -0.5, 2.0, 0.25];
        let y = gemm::gemv(&fused.matrix, &x).expect("dims");
        let parts = fused.split_output(&y);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], gemm::gemv(&a, &x).expect("dims"));
        assert_eq!(parts[1], gemm::gemv(&b, &x).expect("dims"));
        assert_eq!(parts[2], gemm::gemv(&c, &x).expect("dims"));
    }

    #[test]
    fn mismatched_columns_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(FusedMatrix::stack(&[&a, &b]).is_err());
        assert!(FusedMatrix::stack(&[]).is_err());
    }

    #[test]
    fn uneven_part_heights() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(4, 2, 2.0);
        let fused = FusedMatrix::stack(&[&a, &b]).expect("same cols");
        let parts = fused.split_output(&[9.0; 5]);
        assert_eq!(parts[0].len(), 1);
        assert_eq!(parts[1].len(), 4);
    }

    #[test]
    #[should_panic(expected = "output length must match")]
    fn split_validates_length() {
        let a = Matrix::zeros(2, 2);
        let fused = FusedMatrix::stack(&[&a]).expect("one part");
        fused.split_output(&[1.0]);
    }

    /// Fusing BSP-pruned gates preserves the stripe structure when the
    /// gates share it — the case the performance model assumes.
    #[test]
    fn fused_bsp_gates_keep_shared_patterns() {
        let gate = |seed: usize| {
            Matrix::from_fn(8, 8, |r, c| {
                let stripe = r / 4;
                if c % 4 == stripe {
                    (seed + r * 8 + c) as f32 * 0.1
                } else {
                    0.0
                }
            })
        };
        let (a, b, c) = (gate(1), gate(2), gate(3));
        let fused = FusedMatrix::stack(&[&a, &b, &c]).expect("same cols");
        // 24 rows; with 6 stripes of 4 the fused matrix is exactly
        // BSP-structured again.
        let bspc = rtm_sparse::BspcMatrix::from_dense(&fused.matrix, 6, 2).expect("fits");
        assert_eq!(bspc.to_dense(), fused.matrix);
        for s in 0..6 {
            assert_eq!(
                bspc.stripe_kept_cols(s).len(),
                2,
                "stripe {s} keeps 2 of 8 cols"
            );
        }
    }
}
