//! Matrix reorder (paper §IV-B-a).
//!
//! "Without a further reorder, these threads may execute rows with
//! significantly divergent computations, causing severe load imbalance."
//! The optimization groups rows with the same (or similar) nonzero pattern
//! so each thread group receives rows of equal cost.
//!
//! Implementation: rows are first bucketed by their *exact* column pattern
//! (BSP guarantees whole stripes share patterns, so the buckets are large),
//! then buckets are ordered by descending row cost (nonzero count). The
//! resulting permutation, its groups, and before/after imbalance metrics are
//! returned in a [`ReorderPlan`]; the permutation itself travels with the
//! BSPC format (`rtm_sparse::BspcMatrix::with_reorder`).

use rtm_tensor::Matrix;
use std::collections::HashMap;

/// A contiguous run of reordered rows sharing one nonzero pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowGroup {
    /// First slot in the reordered matrix.
    pub start: usize,
    /// Number of rows in the group.
    pub len: usize,
    /// Nonzeros per row in the group.
    pub row_nnz: usize,
}

/// The output of the matrix-reorder analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderPlan {
    /// `perm[i]` = original index of the row executed at slot `i`.
    pub perm: Vec<usize>,
    /// Pattern groups, in execution order.
    pub groups: Vec<RowGroup>,
    /// Load-imbalance factor before reordering (1.0 = perfectly balanced).
    pub imbalance_before: f64,
    /// Load-imbalance factor after reordering.
    pub imbalance_after: f64,
}

impl ReorderPlan {
    /// Computes the reorder for `w` assuming work is distributed over
    /// `threads` parallel workers in contiguous chunks.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn compute(w: &Matrix, threads: usize) -> ReorderPlan {
        assert!(threads > 0, "thread count must be positive");
        let rows = w.rows();
        let row_nnz: Vec<usize> = (0..rows)
            .map(|r| w.row(r).iter().filter(|&&v| v != 0.0).count())
            .collect();

        // Bucket rows by exact column pattern.
        let mut buckets: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for r in 0..rows {
            let pattern: Vec<u32> = w
                .row(r)
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(c, _)| c as u32)
                .collect();
            buckets.entry(pattern).or_default().push(r);
        }

        // Order buckets by descending cost, breaking ties by the smallest
        // original row index so the permutation is deterministic.
        let mut ordered: Vec<(Vec<u32>, Vec<usize>)> = buckets.into_iter().collect();
        ordered.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.1[0].cmp(&b.1[0])));

        let mut perm = Vec::with_capacity(rows);
        let mut groups = Vec::with_capacity(ordered.len());
        for (pattern, mut members) in ordered {
            members.sort_unstable();
            groups.push(RowGroup {
                start: perm.len(),
                len: members.len(),
                row_nnz: pattern.len(),
            });
            perm.extend(members);
        }

        let imbalance_before = imbalance(&row_nnz, threads);
        // After reordering, each pattern group is dealt round-robin across
        // the threads, so the post-reorder imbalance uses that schedule.
        let reordered_nnz: Vec<usize> = perm.iter().map(|&r| row_nnz[r]).collect();
        let imbalance_after = imbalance_round_robin(&reordered_nnz, threads);

        ReorderPlan {
            perm,
            groups,
            imbalance_before,
            imbalance_after,
        }
    }

    /// Number of distinct patterns found.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The inverse permutation: `inv[original] = execution slot`.
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.perm.len()];
        for (slot, &orig) in self.perm.iter().enumerate() {
            inv[orig] = slot;
        }
        inv
    }
}

/// Load-imbalance factor of a *round-robin* assignment (row `i` to thread
/// `i % threads`), the schedule the matrix reorder enables: "the rows in
/// each group are assigned to multiple threads to achieve balanced
/// processing" (§IV-B-a). Returns 1.0 for empty or zero-cost input.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn imbalance_round_robin(costs: &[usize], threads: usize) -> f64 {
    assert!(threads > 0, "thread count must be positive");
    if costs.is_empty() {
        return 1.0;
    }
    let nbins = threads.min(costs.len());
    let mut bins = vec![0usize; nbins];
    for (i, &c) in costs.iter().enumerate() {
        bins[i % nbins] += c;
    }
    let total: usize = bins.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *bins.iter().max().expect("nonempty") as f64;
    let mean = total as f64 / bins.len() as f64;
    max / mean
}

/// Load-imbalance factor of distributing `costs` over `threads` contiguous
/// chunks: `max_chunk_cost / mean_chunk_cost`. Returns 1.0 for empty or
/// zero-cost input.
pub fn imbalance(costs: &[usize], threads: usize) -> f64 {
    assert!(threads > 0, "thread count must be positive");
    if costs.is_empty() {
        return 1.0;
    }
    let chunk = costs.len().div_ceil(threads);
    let sums: Vec<usize> = costs.chunks(chunk).map(|c| c.iter().sum()).collect();
    let total: usize = sums.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *sums.iter().max().expect("nonempty") as f64;
    // Mean over the number of chunks actually used keeps a perfectly
    // balanced assignment at exactly 1.0.
    let mean = total as f64 / sums.len() as f64;
    max / mean
}

/// Warp-divergence factor for SIMT execution: rows are issued in warps of
/// `warp` consecutive slots; each warp costs its *maximum* row length, so
/// the factor is `Σ warp_max / Σ warp_mean ≥ 1`. Returns 1.0 for empty input.
pub fn divergence(costs: &[usize], warp: usize) -> f64 {
    assert!(warp > 0, "warp size must be positive");
    if costs.is_empty() {
        return 1.0;
    }
    let mut paid = 0usize;
    let mut useful = 0usize;
    for chunk in costs.chunks(warp) {
        let max = *chunk.iter().max().expect("nonempty");
        paid += max * chunk.len();
        useful += chunk.iter().sum::<usize>();
    }
    if useful == 0 {
        return 1.0;
    }
    paid as f64 / useful as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A BSP-like matrix: stripes of 4 rows share patterns, with stripe
    /// costs 8, 4, 2, 1 interleaved to create imbalance.
    fn striped_matrix() -> Matrix {
        let pattern_nnz = [8usize, 1, 4, 2];
        Matrix::from_fn(16, 16, |r, c| {
            let stripe = r / 4;
            if c < pattern_nnz[stripe] {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn groups_rows_by_pattern() {
        let plan = ReorderPlan::compute(&striped_matrix(), 4);
        assert_eq!(plan.num_groups(), 4);
        // Groups are in descending cost order.
        let nnz: Vec<usize> = plan.groups.iter().map(|g| g.row_nnz).collect();
        assert_eq!(nnz, vec![8, 4, 2, 1]);
        // Each group holds one whole stripe.
        assert!(plan.groups.iter().all(|g| g.len == 4));
    }

    #[test]
    fn permutation_is_bijection() {
        let plan = ReorderPlan::compute(&striped_matrix(), 4);
        let mut seen = [false; 16];
        for &p in &plan.perm {
            assert!(!seen[p], "duplicate row {p}");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inverse really inverts.
        let inv = plan.inverse();
        for (slot, &orig) in plan.perm.iter().enumerate() {
            assert_eq!(inv[orig], slot);
        }
    }

    #[test]
    fn reorder_helps_on_interleaved_costs() {
        // Interleave heavy and light rows so contiguous chunks are balanced
        // *before* reorder, then check the *divergence* metric: grouped rows
        // have uniform warp cost.
        let m = Matrix::from_fn(16, 16, |r, c| {
            let heavy = r % 2 == 0;
            if (heavy && c < 8) || (!heavy && c < 1) {
                1.0
            } else {
                0.0
            }
        });
        let plan = ReorderPlan::compute(&m, 4);
        let before: Vec<usize> = (0..16)
            .map(|r| m.row(r).iter().filter(|&&v| v != 0.0).count())
            .collect();
        let after: Vec<usize> = plan.perm.iter().map(|&r| before[r]).collect();
        let div_before = divergence(&before, 4);
        let div_after = divergence(&after, 4);
        assert!(
            div_after < div_before,
            "reorder must cut divergence: {div_before} -> {div_after}"
        );
        assert!(
            (div_after - 1.0).abs() < 1e-9,
            "uniform warps after reorder"
        );
    }

    #[test]
    fn imbalance_metric_basics() {
        // Perfectly uniform: 1.0.
        assert!((imbalance(&[3, 3, 3, 3], 2) - 1.0).abs() < 1e-12);
        // One thread does everything: factor = threads.
        let skewed = imbalance(&[10, 0], 2);
        assert!((skewed - 2.0).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(imbalance(&[], 4), 1.0);
        assert_eq!(imbalance(&[0, 0], 2), 1.0);
    }

    #[test]
    fn divergence_metric_basics() {
        // Uniform warp: no divergence.
        assert!((divergence(&[5, 5, 5, 5], 4) - 1.0).abs() < 1e-12);
        // Max 8, others 0 in a warp of 4: paid 32, useful 8 -> 4.0.
        assert!((divergence(&[8, 0, 0, 0], 4) - 4.0).abs() < 1e-12);
        assert_eq!(divergence(&[], 32), 1.0);
        assert_eq!(divergence(&[0, 0], 2), 1.0);
    }

    #[test]
    fn imbalance_after_never_worse_for_striped() {
        let plan = ReorderPlan::compute(&striped_matrix(), 8);
        assert!(plan.imbalance_after <= plan.imbalance_before + 1e-9);
    }

    #[test]
    fn dense_matrix_single_group() {
        let m = Matrix::filled(8, 8, 1.0);
        let plan = ReorderPlan::compute(&m, 4);
        assert_eq!(plan.num_groups(), 1);
        assert_eq!(plan.perm, (0..8).collect::<Vec<_>>());
        assert!((plan.imbalance_before - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let plan = ReorderPlan::compute(&Matrix::zeros(0, 0), 2);
        assert!(plan.perm.is_empty());
        assert_eq!(plan.imbalance_before, 1.0);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_panics() {
        ReorderPlan::compute(&Matrix::zeros(1, 1), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;

    /// For arbitrary sparse matrices: the permutation is a bijection,
    /// reordering never increases warp divergence, and the round-robin
    /// post-reorder imbalance never exceeds the contiguous pre-reorder
    /// imbalance by more than numerical slack.
    #[test]
    fn prop_reorder_invariants() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..24);
            let cols = rng.gen_range(1usize..24);
            let w = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.5 {
                    0.0
                } else {
                    v
                }
            });
            let plan = ReorderPlan::compute(&w, 4);

            // Bijection.
            let mut seen = vec![false; rows];
            for &p in &plan.perm {
                assert!(p < rows && !seen[p], "seed {seed}");
                seen[p] = true;
            }

            // Groups tile the permutation exactly.
            let covered: usize = plan.groups.iter().map(|g| g.len).sum();
            assert_eq!(covered, rows, "seed {seed}");
            for g in &plan.groups {
                assert!(g.start + g.len <= rows, "seed {seed}");
            }

            // Divergence never increases after grouping — provable when
            // every warp is full (for complete chunks, a non-increasing
            // cost order minimizes the sum of per-warp maxima; a *partial*
            // trailing warp can beat it by isolating one heavy row, so the
            // guarantee holds only for exact multiples).
            let nnz: Vec<usize> = (0..rows)
                .map(|r| w.row(r).iter().filter(|&&v| v != 0.0).count())
                .collect();
            let reordered: Vec<usize> = plan.perm.iter().map(|&r| nnz[r]).collect();
            for warp in [2usize, 4, 8] {
                if rows.is_multiple_of(warp) {
                    assert!(
                        divergence(&reordered, warp) <= divergence(&nnz, warp) + 1e-9,
                        "seed {seed}: warp {warp} divergence grew"
                    );
                }
            }

            // Metrics are well-formed.
            assert!(plan.imbalance_before >= 1.0 - 1e-9, "seed {seed}");
            assert!(plan.imbalance_after >= 1.0 - 1e-9, "seed {seed}");
        }
    }

    /// RLE never loads more than naive, and run length 1 changes nothing.
    #[test]
    fn prop_rle_bounds() {
        for seed in 0u64..200 {
            let mut rng = rtm_tensor::init::rng_from_seed(seed);
            let rows = rng.gen_range(1usize..16);
            let cols = rng.gen_range(1usize..16);
            let run = rng.gen_range(1usize..6);
            let w = rtm_tensor::init::uniform(rows, cols, -1.0, 1.0, &mut rng).map(|v| {
                if v.abs() < 0.4 {
                    0.0
                } else {
                    v
                }
            });
            let stats = crate::rle::analyze_loads(&w, None, run);
            assert!(stats.rle_loads <= stats.naive_loads, "seed {seed}");
            assert!(stats.elimination_ratio() >= 1.0 - 1e-12, "seed {seed}");
            let unit = crate::rle::analyze_loads(&w, None, 1);
            assert_eq!(unit.rle_loads, unit.naive_loads, "seed {seed}");
        }
    }
}
