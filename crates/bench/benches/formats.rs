//! Criterion benchmarks of format construction and the compiler analyses
//! (harness C1).
//!
//! ```text
//! cargo bench -p rtm-bench --bench formats
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_compiler::profile::KernelProfile;
use rtm_compiler::reorder::ReorderPlan;
use rtm_compiler::rle::analyze_loads;
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::Matrix;
use std::hint::black_box;

fn bsp_matrix() -> Matrix {
    Matrix::from_fn(512, 512, |r, c| {
        let stripe = r / 64;
        if c % 16 == stripe % 16 {
            0.5
        } else {
            0.0
        }
    })
}

fn bench_construction(c: &mut Criterion) {
    let dense = bsp_matrix();
    let mut group = c.benchmark_group("format_construction_512x512");
    group.bench_function("csr_from_dense", |b| {
        b.iter(|| CsrMatrix::from_dense(black_box(&dense)))
    });
    group.bench_function("bspc_from_dense", |b| {
        b.iter(|| BspcMatrix::from_dense(black_box(&dense), 8, 8).expect("fits"))
    });
    group.finish();
}

fn bench_compiler_analyses(c: &mut Criterion) {
    let dense = bsp_matrix();
    let mut group = c.benchmark_group("compiler_analyses_512x512");
    group.bench_function("reorder_plan", |b| {
        b.iter(|| ReorderPlan::compute(black_box(&dense), 8))
    });
    group.bench_function("rle_analysis", |b| {
        b.iter(|| analyze_loads(black_box(&dense), None, 8))
    });
    let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
    group.bench_function("kernel_profile_bspc", |b| {
        b.iter(|| KernelProfile::analyze(black_box(&dense), &plan))
    });
    let csr_plan = ExecutionPlan::gpu_default(StorageFormat::Csr);
    group.bench_function("kernel_profile_csr", |b| {
        b.iter(|| KernelProfile::analyze(black_box(&dense), &csr_plan))
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_compiler_analyses);
criterion_main!(benches);
