//! Criterion benchmarks of the pruning projections and one ADMM epoch
//! (harness C1).
//!
//! ```text
//! cargo bench -p rtm-bench --bench pruning
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rtm_pruning::projection::{
    BankBalanced, BlockCirculant, BspColumnBlock, ColumnPrune, Projection, RowPrune,
    UnstructuredMagnitude,
};
use rtm_tensor::Matrix;
use std::hint::black_box;

fn weights() -> Matrix {
    Matrix::from_fn(512, 512, |r, c| (((r * 512 + c) as f32) * 0.001).sin())
}

fn bench_projections(c: &mut Criterion) {
    let w = weights();
    let mut group = c.benchmark_group("projection_512x512");
    let cases: Vec<(&str, Box<dyn Projection>)> = vec![
        ("unstructured", Box::new(UnstructuredMagnitude::new(0.1))),
        ("bsp_column_block", Box::new(BspColumnBlock::new(8, 8, 0.1))),
        ("row_prune", Box::new(RowPrune::new(0.5))),
        ("column_prune", Box::new(ColumnPrune::new(0.5))),
        ("bank_balanced", Box::new(BankBalanced::new(8, 0.125))),
        ("block_circulant", Box::new(BlockCirculant::new(8))),
    ];
    for (name, proj) in &cases {
        group.bench_function(*name, |b| b.iter(|| proj.project(black_box(&w))));
    }
    group.finish();
}

fn bench_mask_application(c: &mut Criterion) {
    let w = weights();
    let proj = BspColumnBlock::new(8, 8, 0.1);
    let mask = proj.mask(&w).expect("mask-style projection");
    c.bench_function("mask_apply_512x512", |b| {
        b.iter(|| {
            let mut m = w.clone();
            for (wi, mi) in m.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                *wi *= mi;
            }
            m
        })
    });
}

criterion_group!(benches, bench_projections, bench_mask_application);
criterion_main!(benches);
