//! Criterion microbenchmarks of the SpMV/GEMV kernels (harness C1).
//!
//! These measure *real host time* for the kernels the analytical simulator
//! prices, cross-checking its ordering claims: on a BSP-pruned matrix the
//! sparse formats beat dense, and BSPC's shared index stream beats CSR's
//! per-nonzero indices.
//!
//! ```text
//! cargo bench -p rtm-bench --bench kernels
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtm_sparse::{BspcMatrix, CscMatrix, CsrMatrix};
use rtm_tensor::gemm;
use rtm_tensor::Matrix;
use std::hint::black_box;

/// A 512x512 matrix with exact BSP structure at the given column rate
/// (8 stripes x 8 blocks).
fn bsp_matrix(col_rate: usize) -> Matrix {
    Matrix::from_fn(512, 512, |r, c| {
        let stripe = r / 64;
        let block = c / 64;
        let local = c % 64;
        if local % col_rate == (stripe + block) % col_rate {
            0.5 + (r % 7) as f32 * 0.01
        } else {
            0.0
        }
    })
}

fn bench_spmv_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_512x512");
    for rate in [4usize, 16] {
        let dense = bsp_matrix(rate);
        let csr = CsrMatrix::from_dense(&dense);
        let csc = CscMatrix::from_dense(&dense);
        let bspc = BspcMatrix::from_dense(&dense, 8, 8).expect("partition fits");
        let x: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).sin()).collect();

        group.bench_with_input(BenchmarkId::new("dense_gemv", rate), &rate, |b, _| {
            b.iter(|| gemm::gemv(black_box(&dense), black_box(&x)).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("csr", rate), &rate, |b, _| {
            b.iter(|| csr.spmv(black_box(&x)).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("csc", rate), &rate, |b, _| {
            b.iter(|| csc.spmv(black_box(&x)).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("bspc", rate), &rate, |b, _| {
            b.iter(|| bspc.spmv(black_box(&x)).expect("dims"))
        });
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_128");
    let a = Matrix::from_fn(128, 128, |r, c| ((r * 128 + c) as f32 * 0.01).sin());
    let b = Matrix::from_fn(128, 128, |r, c| ((r + c) as f32 * 0.02).cos());
    group.bench_function("naive", |bench| {
        bench.iter(|| gemm::matmul(black_box(&a), black_box(&b)).expect("dims"))
    });
    group.bench_function("blocked64", |bench| {
        bench.iter(|| gemm::matmul_blocked(black_box(&a), black_box(&b), 64).expect("dims"))
    });
    group.finish();
}

fn bench_f16_conversion(c: &mut Criterion) {
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.001).sin()).collect();
    c.bench_function("f16_quantize_4096", |b| {
        b.iter(|| {
            let mut v = xs.clone();
            rtm_tensor::f16::quantize_f16_slice(black_box(&mut v));
            v
        })
    });
}

criterion_group!(
    benches,
    bench_spmv_formats,
    bench_gemm,
    bench_f16_conversion
);
criterion_main!(benches);
