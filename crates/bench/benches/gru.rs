//! Criterion benchmarks of GRU inference: dense reference vs the compiled
//! BSPC runtime, f32 vs f16 (harness C1).
//!
//! ```text
//! cargo bench -p rtm-bench --bench gru
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_rnn::model::{GruNetwork, NetworkConfig};
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use std::hint::black_box;

fn setup() -> (GruNetwork, GruNetwork, Vec<Vec<f32>>) {
    let cfg = NetworkConfig {
        input_dim: 16,
        hidden_dims: vec![128, 128],
        num_classes: 39,
    };
    let dense = GruNetwork::new(&cfg, 5);
    let mut pruned = dense.clone();
    BspPruner::new(BspConfig {
        num_stripes: 8,
        num_blocks: 8,
        target: CompressionTarget::new(8.0, 2.0),
        admm: AdmmConfig {
            admm_iterations: 1,
            epochs_per_iteration: 0,
            finetune_epochs: 0,
            ..AdmmConfig::default()
        },
    })
    .prune(&mut pruned, &[]);
    let frames: Vec<Vec<f32>> = (0..32)
        .map(|t| {
            (0..16)
                .map(|i| ((t * 16 + i) as f32 * 0.05).sin())
                .collect()
        })
        .collect();
    (dense, pruned, frames)
}

fn bench_inference(c: &mut Criterion) {
    let (dense, pruned, frames) = setup();
    let compiled_f32 =
        CompiledNetwork::compile(&pruned, 8, 8, RuntimePrecision::F32).expect("fits");
    let compiled_f16 =
        CompiledNetwork::compile(&pruned, 8, 8, RuntimePrecision::F16).expect("fits");

    let mut group = c.benchmark_group("gru_inference_32frames");
    group.bench_function("dense_reference", |b| {
        b.iter(|| dense.forward(black_box(&frames)))
    });
    group.bench_function("dense_pruned_weights", |b| {
        b.iter(|| pruned.forward(black_box(&frames)))
    });
    group.bench_function("compiled_bspc_f32", |b| {
        b.iter(|| compiled_f32.forward(black_box(&frames)))
    });
    group.bench_function("compiled_bspc_f16", |b| {
        b.iter(|| compiled_f16.forward(black_box(&frames)))
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let (mut dense, _, frames) = setup();
    let targets: Vec<usize> = (0..frames.len()).map(|t| t % 39).collect();
    let mut opt = rtm_rnn::Adam::new(1e-3);
    c.bench_function("gru_train_step_32frames", |b| {
        b.iter(|| dense.train_step(black_box(&frames), black_box(&targets), &mut opt, None))
    });
}

criterion_group!(benches, bench_inference, bench_training_step);
criterion_main!(benches);
