//! Criterion benchmarks of the speech substrate (harness C1): corpus
//! generation, training steps at task scale, PER scoring and the Viterbi
//! decoder.
//!
//! ```text
//! cargo bench -p rtm-bench --bench speech
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rtm_speech::corpus::{CorpusConfig, SpeechCorpus};
use rtm_speech::decode::viterbi_decode;
use rtm_speech::per::{edit_distance, PerReport};
use rtm_speech::task::SpeechTask;
use std::hint::black_box;

fn bench_corpus_generation(c: &mut Criterion) {
    let cfg = CorpusConfig {
        speakers: 8,
        sentences_per_speaker: 2,
        ..CorpusConfig::default_scaled()
    };
    c.bench_function("corpus_generate_16utt", |b| {
        b.iter(|| SpeechCorpus::generate(black_box(&cfg), 7))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let task = SpeechTask::new(&CorpusConfig::tiny(), 3);
    let mut net = task.new_network(48, 3);
    let data = task.training_data();
    let (frames, labels) = &data[0];
    let mut opt = rtm_rnn::Adam::new(1e-3);
    c.bench_function("speech_train_step_h48", |b| {
        b.iter(|| net.train_step(black_box(frames), black_box(labels), &mut opt, None))
    });
}

fn bench_scoring(c: &mut Criterion) {
    let task = SpeechTask::new(&CorpusConfig::tiny(), 5);
    let mut net = task.new_network(24, 5);
    task.train(&mut net, 5, 0.01);
    let utterances: Vec<_> = task
        .test_utterances()
        .into_iter()
        .map(|u| (u.frames.clone(), u.labels.clone(), u.phones.clone()))
        .collect();

    c.bench_function("per_evaluation", |b| {
        b.iter(|| {
            let mut report = PerReport::default();
            for (frames, labels, phones) in &utterances {
                let preds = net.predict(black_box(frames));
                report.add(&preds, labels, phones);
            }
            report
        })
    });

    let logits: Vec<Vec<Vec<f32>>> = utterances
        .iter()
        .map(|(frames, _, _)| net.forward(frames))
        .collect();
    c.bench_function("viterbi_decode", |b| {
        b.iter(|| {
            logits
                .iter()
                .map(|l| viterbi_decode(black_box(l), 2.5))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_edit_distance(c: &mut Criterion) {
    let a: Vec<usize> = (0..100).map(|i| i % 39).collect();
    let b: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 39).collect();
    c.bench_function("edit_distance_100x100", |bench| {
        bench.iter(|| edit_distance(black_box(&a), black_box(&b)))
    });
}

criterion_group!(
    benches,
    bench_corpus_generation,
    bench_train_step,
    bench_scoring,
    bench_edit_distance
);
criterion_main!(benches);
