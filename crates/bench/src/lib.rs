//! # rtm-bench
//!
//! The experiment harness: shared setup for regenerating every table and
//! figure of the paper's evaluation (§V). The binaries are the entry
//! points:
//!
//! * `table1` — PER vs compression for BSP and every baseline scheme;
//! * `table2` — GPU/CPU time, GOP/s and ESE-normalized energy efficiency
//!   across the compression sweep;
//! * `fig4` — speedup over the dense baseline vs compression rate;
//! * `ablation` — reorder / RLE / format / block-size ablations (DESIGN.md
//!   A1–A4).
//!
//! The criterion benches in `benches/` microbenchmark the kernels that the
//! analytical simulator prices, so the cost model's *ordering* claims
//! (BSPC ≥ CSR ≥ dense-on-sparse, reorder helps, …) are cross-checked
//! against real measured time on the host.

use rtm_pruning::admm::AdmmConfig;
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::task::SpeechTask;
use std::fmt::Write as _;

/// The shared experiment seed; every binary uses it so runs are
/// reproducible and mutually consistent.
pub const SEED: u64 = 2020;

/// Hidden width of the trained (accuracy-side) GRU. Scaled down from the
/// paper's 1024 (see EXPERIMENTS.md; training 9.6M parameters to
/// convergence per compression point is outside a laptop budget — the
/// performance side still uses the full width).
pub const ACC_HIDDEN: usize = 96;

/// Hidden width of the simulated (performance-side) GRU: the paper's 1024.
pub const SIM_HIDDEN: usize = 1024;

/// The corpus used by every accuracy experiment.
pub fn corpus_config() -> CorpusConfig {
    CorpusConfig {
        speakers: 32,
        noise: 0.4,
        ..CorpusConfig::default_scaled()
    }
}

/// The speech task at the shared seed.
pub fn speech_task() -> SpeechTask {
    SpeechTask::new(&corpus_config(), SEED)
}

/// ADMM hyper-parameters shared by every pruning run in the tables.
pub fn admm_config() -> AdmmConfig {
    AdmmConfig {
        rho: 2.0,
        admm_iterations: 3,
        epochs_per_iteration: 6,
        finetune_epochs: 30,
        lr: 3e-3,
        clip: Some(rtm_rnn::GradClip::new(5.0)),
    }
}

/// Dense pre-training epochs for the accuracy experiments.
pub const DENSE_EPOCHS: usize = 30;

/// Dense pre-training learning rate.
pub const DENSE_LR: f32 = 8e-3;

/// Renders a separator line of width `w`.
pub fn rule(w: usize) -> String {
    "-".repeat(w)
}

/// Best-effort microbenchmark timer: warm-up call, then best-of-5 batches.
/// The minimum per-iteration time is the standard scheduler-jitter-
/// resistant estimator (crucial on a shared single-core CI host). Returns
/// microseconds per iteration.
pub fn time_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let reps = 5usize;
    let per = iters.div_ceil(reps).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        for _ in 0..per {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / per as f64);
    }
    best
}

/// BSP-patterned dense matrix shared by the kernel benchmarks: every row
/// kept, `1/rate` of each stripe's columns kept per block (random choice),
/// nonzero uniform values.
pub fn bsp_matrix(
    rows: usize,
    cols: usize,
    stripes: usize,
    blocks: usize,
    rate: f64,
    seed: u64,
) -> rtm_tensor::Matrix {
    let mut rng = rtm_tensor::rng::StdRng::seed_from_u64(seed);
    let stripe_h = rows.div_ceil(stripes);
    let block_w = cols.div_ceil(blocks);
    let mut col_kept = vec![false; stripes * cols];
    for s in 0..stripes {
        for b in 0..blocks {
            let c0 = b * block_w;
            let c1 = ((b + 1) * block_w).min(cols);
            let width = c1 - c0;
            let keep = ((width as f64 / rate).round() as usize).clamp(1, width);
            let mut chosen: Vec<usize> = (c0..c1).collect();
            for i in 0..keep {
                let j = rng.gen_range(i..chosen.len());
                chosen.swap(i, j);
            }
            for &c in &chosen[..keep] {
                col_kept[s * cols + c] = true;
            }
        }
    }
    rtm_tensor::Matrix::from_fn(rows, cols, |r, c| {
        let s = (r / stripe_h).min(stripes - 1);
        if col_kept[s * cols + c] {
            0.05 + (((r * 31 + c * 17) % 97) as f32) / 100.0
        } else {
            0.0
        }
    })
}

// The hand-rolled JSON helpers moved to `rtm_trace::json` so the metrics
// exporters and the benchmark artifacts share one escaping/formatting
// routine; re-exported here so the benchmark binaries keep their imports.
pub use rtm_trace::json::{json_array, json_row, JsonValue};

/// Writes one `BENCH_<bench>.json` artifact through the shared layout every
/// benchmark binary uses: a `"bench"` tag, the caller's metadata fields,
/// the `"quick"` marker, then one JSON array per `(name, rows)` section
/// (typically just `"results"`). Prints the JSON to stdout, logs the path
/// to stderr and returns it.
pub fn emit_bench_report(
    bench: &str,
    quick: bool,
    meta: &[(&str, JsonValue)],
    sections: &[(&str, Vec<String>)],
) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"{bench}\",");
    for (k, v) in meta {
        let _ = writeln!(json, "  \"{k}\": {},", v.render());
    }
    let _ = writeln!(json, "  \"quick\": {quick},");
    for (i, (name, rows)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        let _ = writeln!(json, "  \"{name}\": {}{comma}", json_array("    ", rows));
    }
    json.push_str("}\n");

    let path = bench_report_path(&format!("BENCH_{bench}.json"), quick);
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!("wrote {path}");
    path
}

/// True when `--quick` was passed on the command line: the perf benchmark
/// binaries then run a smoke-test configuration (tiny shapes, one
/// iteration) suitable for CI.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Where a benchmark JSON report lands: the repository root normally, or
/// `target/quick/` (created on demand, untracked) under `--quick`, so
/// smoke runs never clobber the committed full-run artifacts.
pub fn bench_report_path(file_name: &str, quick: bool) -> String {
    if quick {
        std::fs::create_dir_all("target/quick").expect("create target/quick");
        format!("target/quick/{file_name}")
    } else {
        file_name.to_string()
    }
}

/// Writes a CSV artifact under `results/` (created on demand) and returns
/// the path. Every table/figure binary mirrors its console output here so
/// downstream plotting never has to scrape stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<String> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.csv");
    let mut contents = String::with_capacity(64 * (rows.len() + 1));
    contents.push_str(header);
    contents.push('\n');
    for row in rows {
        contents.push_str(row);
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_setup_is_consistent() {
        let task = speech_task();
        assert_eq!(task.corpus().config, corpus_config());
        assert!(admm_config().finetune_epochs > 0);
        assert_eq!(rule(3), "---");
    }

    #[test]
    fn json_helpers_are_the_trace_ones() {
        // The renderers themselves are unit-tested in rtm-trace; this
        // pins the re-export so the benchmark binaries keep compiling
        // against the shared path.
        let row = json_row(&[("threads", JsonValue::Int(4))]);
        assert_eq!(row, "{\"threads\": 4}");
        assert_eq!(json_array("    ", &[]), "[]");
    }

    #[test]
    fn bsp_matrix_honors_pattern_and_rate() {
        let m = bsp_matrix(32, 32, 4, 4, 4.0, 9);
        // Kept columns are shared within a stripe.
        for s in 0..4 {
            let r0 = s * 8;
            for r in r0..r0 + 8 {
                for c in 0..32 {
                    assert_eq!(m[(r, c)] != 0.0, m[(r0, c)] != 0.0);
                }
            }
        }
        // Roughly 1/4 of entries survive.
        let nnz = (0..32)
            .flat_map(|r| (0..32).map(move |c| (r, c)))
            .filter(|&(r, c)| m[(r, c)] != 0.0)
            .count();
        assert!((32 * 32 / 8..=32 * 32 / 2).contains(&nnz), "nnz {nnz}");
    }

    #[test]
    fn bench_report_path_diverts_quick_runs() {
        assert_eq!(bench_report_path("BENCH_x.json", false), "BENCH_x.json");
        assert_eq!(
            bench_report_path("BENCH_x.json", true),
            "target/quick/BENCH_x.json"
        );
    }

    #[test]
    fn time_us_returns_positive() {
        let mut acc = 0u64;
        let us = time_us(3, || acc = acc.wrapping_add(1));
        assert!(us >= 0.0);
        assert!(acc > 0);
    }
}
