//! # rtm-bench
//!
//! The experiment harness: shared setup for regenerating every table and
//! figure of the paper's evaluation (§V). The binaries are the entry
//! points:
//!
//! * `table1` — PER vs compression for BSP and every baseline scheme;
//! * `table2` — GPU/CPU time, GOP/s and ESE-normalized energy efficiency
//!   across the compression sweep;
//! * `fig4` — speedup over the dense baseline vs compression rate;
//! * `ablation` — reorder / RLE / format / block-size ablations (DESIGN.md
//!   A1–A4).
//!
//! The criterion benches in `benches/` microbenchmark the kernels that the
//! analytical simulator prices, so the cost model's *ordering* claims
//! (BSPC ≥ CSR ≥ dense-on-sparse, reorder helps, …) are cross-checked
//! against real measured time on the host.

use rtm_pruning::admm::AdmmConfig;
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::task::SpeechTask;

/// The shared experiment seed; every binary uses it so runs are
/// reproducible and mutually consistent.
pub const SEED: u64 = 2020;

/// Hidden width of the trained (accuracy-side) GRU. Scaled down from the
/// paper's 1024 (see EXPERIMENTS.md; training 9.6M parameters to
/// convergence per compression point is outside a laptop budget — the
/// performance side still uses the full width).
pub const ACC_HIDDEN: usize = 96;

/// Hidden width of the simulated (performance-side) GRU: the paper's 1024.
pub const SIM_HIDDEN: usize = 1024;

/// The corpus used by every accuracy experiment.
pub fn corpus_config() -> CorpusConfig {
    CorpusConfig {
        speakers: 32,
        noise: 0.4,
        ..CorpusConfig::default_scaled()
    }
}

/// The speech task at the shared seed.
pub fn speech_task() -> SpeechTask {
    SpeechTask::new(&corpus_config(), SEED)
}

/// ADMM hyper-parameters shared by every pruning run in the tables.
pub fn admm_config() -> AdmmConfig {
    AdmmConfig {
        rho: 2.0,
        admm_iterations: 3,
        epochs_per_iteration: 6,
        finetune_epochs: 30,
        lr: 3e-3,
        clip: Some(rtm_rnn::GradClip::new(5.0)),
    }
}

/// Dense pre-training epochs for the accuracy experiments.
pub const DENSE_EPOCHS: usize = 30;

/// Dense pre-training learning rate.
pub const DENSE_LR: f32 = 8e-3;

/// Renders a separator line of width `w`.
pub fn rule(w: usize) -> String {
    "-".repeat(w)
}

/// Writes a CSV artifact under `results/` (created on demand) and returns
/// the path. Every table/figure binary mirrors its console output here so
/// downstream plotting never has to scrape stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<String> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.csv");
    let mut contents = String::with_capacity(64 * (rows.len() + 1));
    contents.push_str(header);
    contents.push('\n');
    for row in rows {
        contents.push_str(row);
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_setup_is_consistent() {
        let task = speech_task();
        assert_eq!(task.corpus().config, corpus_config());
        assert!(admm_config().finetune_epochs > 0);
        assert_eq!(rule(3), "---");
    }
}
