//! Quantized kernel benchmark: f32 vs f16 vs int8 sparse kernels.
//!
//! Writes `BENCH_quant_kernels.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). Times the precision-dispatched serial entry points
//! ([`BspcMatrix::spmv_prec_into`], [`BspcMatrix::spmm_prec_into`] and the
//! CSR equivalents) — exactly what the compiled runtime calls — on the
//! 1024×1024 BSP-patterned matrix at 2.5× and 10× compression, under the
//! `Auto` SIMD policy. SpMV is memory-bandwidth-bound at these shapes, so
//! the int8 (4×) and f16 (2×) byte reductions of the value stream are the
//! mechanism behind every speedup the report shows; the `bytes` field
//! records each format's total footprint (index structure + values + scale
//! metadata, via [`rtm_sparse::Footprint`]) so the bandwidth story is
//! checkable from the artifact alone.
//!
//! The headline `speedups` section divides the f32 time by the f16/int8
//! time per kernel × compression.
//!
//! Dependency-free: std + workspace crates only.

use rtm_bench::{bsp_matrix, emit_bench_report, json_row, quick_requested, time_us, JsonValue};
use rtm_sparse::{BspcMatrix, CsrMatrix, Footprint, Precision};
use rtm_tensor::rng::StdRng;

const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const LANES: usize = 8;

struct Row {
    kernel: &'static str,
    compression: f64,
    precision: &'static str,
    bytes: usize,
    us: f64,
}

fn main() {
    let quick = quick_requested();
    let (rows_dim, cols_dim) = if quick { (64, 64) } else { (1024, 1024) };
    let compressions: &[f64] = if quick { &[2.5] } else { &[2.5, 10.0] };
    let scale = |iters: usize| if quick { 1 } else { iters };

    let mut rows: Vec<Row> = Vec::new();

    for &rate in compressions {
        let dense = bsp_matrix(rows_dim, cols_dim, STRIPES, BLOCKS, rate, 42);
        let bspc = BspcMatrix::from_dense(&dense, STRIPES, BLOCKS).expect("valid partition");
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f32> = (0..cols_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let xs: Vec<f32> = (0..cols_dim * LANES)
            .map(|_| rng.gen_f32() * 2.0 - 1.0)
            .collect();
        let mut y = vec![0.0f32; rows_dim];
        let mut ys = vec![0.0f32; rows_dim * LANES];

        for prec in [Precision::F32, Precision::F16, Precision::Int8] {
            let tag = prec.tag();
            let bspc_bytes = Footprint::bspc(&bspc, prec).total();
            let csr_bytes = Footprint::csr(&csr, prec).total();

            let us = time_us(scale(200), || {
                bspc.spmv_prec_into(prec, &x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "bspc_spmv",
                compression: rate,
                precision: tag,
                bytes: bspc_bytes,
                us,
            });

            let us = time_us(scale(40), || {
                bspc.spmm_prec_into(prec, &xs, LANES, &mut ys)
                    .expect("shapes match");
            });
            rows.push(Row {
                kernel: "bspc_spmm",
                compression: rate,
                precision: tag,
                bytes: bspc_bytes,
                us,
            });

            let us = time_us(scale(200), || {
                csr.spmv_prec_into(prec, &x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "csr_spmv",
                compression: rate,
                precision: tag,
                bytes: csr_bytes,
                us,
            });
        }
        eprintln!("[{rate:>4}x] precision kernels done");
    }

    let us_of = |kernel: &str, rate: f64, precision: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.kernel == kernel && r.compression == rate && r.precision == precision)
            .map(|r| r.us)
    };

    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            json_row(&[
                ("kernel", JsonValue::Str(r.kernel.into())),
                ("compression", JsonValue::Raw(r.compression.to_string())),
                ("precision", JsonValue::Str(r.precision.into())),
                ("bytes", JsonValue::Int(r.bytes as i64)),
                ("us", JsonValue::F64(r.us, 3)),
            ])
        })
        .collect();

    let mut speedups: Vec<String> = Vec::new();
    for kernel in ["bspc_spmv", "bspc_spmm", "csr_spmv"] {
        for &rate in compressions {
            let (Some(f32_us), Some(f16_us), Some(i8_us)) = (
                us_of(kernel, rate, "f32"),
                us_of(kernel, rate, "f16"),
                us_of(kernel, rate, "int8"),
            ) else {
                continue;
            };
            speedups.push(json_row(&[
                ("kernel", JsonValue::Str(kernel.into())),
                ("compression", JsonValue::Raw(rate.to_string())),
                ("f16_over_f32", JsonValue::F64(f32_us / f16_us, 3)),
                ("int8_over_f32", JsonValue::F64(f32_us / i8_us, 3)),
            ]));
        }
    }

    emit_bench_report(
        "quant_kernels",
        quick,
        &[
            (
                "matrix",
                JsonValue::Raw(format!(
                    "{{\"rows\": {rows_dim}, \"cols\": {cols_dim}, \
                     \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}, \"lanes\": {LANES}}}"
                )),
            ),
            (
                "vector_isa",
                JsonValue::Str(rtm_tensor::simd::vector_isa().into()),
            ),
            (
                "notes",
                JsonValue::Str(
                    "Single-thread, Auto SIMD policy, precision-dispatched serial entry \
                     points (what the compiled runtime calls). int8 quantizes the \
                     activation vector per call and accumulates in i32; f16 streams the \
                     2-byte stored weights and accumulates in f32. bytes = full format \
                     footprint including index structure and scale metadata. speedup = \
                     f32 time / precision time."
                        .into(),
                ),
            ),
        ],
        &[("results", rendered), ("speedups", speedups)],
    );
}
