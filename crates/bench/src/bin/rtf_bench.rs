//! Real-time-factor benchmark of the streaming decode stack.
//!
//! Writes `BENCH_rtf.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). The artifact answers EXPERIMENTS.md Q5: what does streaming
//! CTC decoding cost on top of the compiled runtime, expressed as RTF —
//! wall-clock time over audio time at the 10 ms frame hop — across the
//! compression × precision × decoder grid, and what latency does a
//! listener actually observe (first decoded symbol, endpoint detection)
//! including under load shedding?
//!
//! Method: a GRU is trained and BSP-pruned through the real pipeline
//! (`RtMobile::run_keeping_model`) so the decoders see meaningful
//! phone posteriors — silence really dominates the utterance edges,
//! which is what the trailing-blank endpointer keys on. The pruned
//! network is then recompiled at each precision and, per decoder:
//!
//! - **per-stream RTF**: each held-out utterance is forwarded and its
//!   logits pushed frame-by-frame through a fresh [`Decoder`]
//!   (`rtm_speech::Decoder`), timed end to end; RTF = wall / audio.
//!   The frame index of the first non-empty partial gives
//!   latency-to-first-symbol (audio position, ms).
//! - **per-batch RTF**: the same utterances through a
//!   [`BatchedSession::run_decoded`] pass sharing lanes; RTF = wall over
//!   summed audio. Its reciprocal is the sustained real-time streams one
//!   core can decode while keeping up with every speaker.
//!
//! The endpoint section replays utterances padded with trailing silence
//! over the real `rtm serve` loopback path with hypotheses enabled
//! (protocol v2), uncontended and then oversubscribed with a shallow
//! drop-oldest queue, and reports the wall-clock gap between the speaker
//! going quiet and the endpoint flag arriving at the client. The
//! endpointer's own hysteresis (20 blank frames = 200 ms of audio) is
//! the floor; shedding pressure shows up as tail latency on top.
//!
//! Dependency-free: std + workspace crates only.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rtm_bench::{emit_bench_report, json_row, quick_requested, JsonValue};
use rtm_exec::Executor;
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::phones::SILENCE;
use rtm_speech::{SpeechTask, Utterance};
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimePrecision};
use rtmobile::{
    AdmissionConfig, DecoderChoice, RtMobile, RuntimeConfig, ServeOptions, Server, ShedPolicy,
    StreamClient,
};

/// Real-time speech frame hop: 10 ms, i.e. 100 frames per second.
const PACE_US: u64 = 10_000;
/// BSP partition used throughout (matches the pipeline default).
const STRIPES: usize = 4;
const BLOCKS: usize = 4;

/// Exact quantile of a sorted sample set (rank `⌈q·n⌉`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One cell of the compression × precision × decoder grid.
struct GridCell {
    compression: usize,
    precision: &'static str,
    decoder: String,
    streams: usize,
    frames: usize,
    rtf_stream_mean: f64,
    rtf_stream_max: f64,
    rtf_batch: f64,
    sustained_streams: f64,
    first_symbol_ms: Vec<f64>,
    symbols: usize,
    endpoints: usize,
}

/// Serial streaming pass: forward + frame-by-frame decode per utterance.
#[allow(clippy::cast_precision_loss)]
fn measure_cell(
    compiled: &CompiledNetwork,
    exec: &Executor,
    choice: DecoderChoice,
    utterances: &[&Utterance],
    compression: usize,
    precision: &'static str,
) -> GridCell {
    let mut rtfs = Vec::with_capacity(utterances.len());
    let mut first_symbol_ms = Vec::new();
    let mut symbols = 0usize;
    let mut endpoints = 0usize;
    let mut frames = 0usize;
    for u in utterances {
        let t0 = Instant::now();
        let logits = compiled.forward_with(exec, &u.frames);
        let classes = logits.first().map_or(1, Vec::len);
        let mut decoder = choice.build(classes);
        let mut first: Option<usize> = None;
        let mut in_endpoint = false;
        for (i, row) in logits.iter().enumerate() {
            if let Some(h) = decoder.push_frame(row) {
                if first.is_none() && !h.symbols.is_empty() {
                    first = Some(i);
                }
                if h.endpoint && !in_endpoint {
                    endpoints += 1;
                }
                in_endpoint = h.endpoint;
            }
        }
        let hyp = decoder.finish();
        let wall_us = t0.elapsed().as_secs_f64() * 1e6;
        let audio_us = u.frames.len() as f64 * PACE_US as f64;
        if audio_us > 0.0 {
            rtfs.push(wall_us / audio_us);
        }
        if let Some(i) = first {
            first_symbol_ms.push((i + 1) as f64 * PACE_US as f64 / 1e3);
        }
        symbols += hyp.symbols.len();
        frames += u.frames.len();
    }

    // Batched pass: same streams sharing lanes, decoder state per lane.
    let streams: Vec<&[Vec<f32>]> = utterances.iter().map(|u| u.frames.as_slice()).collect();
    let capacity = utterances.len().clamp(1, 8);
    let mut session = BatchedSession::new(compiled, exec, capacity).with_decoder(choice);
    let t0 = Instant::now();
    let (_logits, hyps) = session.run_decoded(&streams);
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    let audio_us = frames as f64 * PACE_US as f64;
    let rtf_batch = if audio_us > 0.0 {
        wall_us / audio_us
    } else {
        0.0
    };
    assert_eq!(
        hyps.iter().filter(|h| h.is_some()).count(),
        utterances.len(),
        "every stream decodes"
    );

    GridCell {
        compression,
        precision,
        decoder: choice.label(),
        streams: utterances.len(),
        frames,
        rtf_stream_mean: mean(&rtfs),
        rtf_stream_max: rtfs.iter().copied().fold(0.0, f64::max),
        rtf_batch,
        sustained_streams: if rtf_batch > 0.0 {
            1.0 / rtf_batch
        } else {
            0.0
        },
        first_symbol_ms,
        symbols,
        endpoints,
    }
}

/// An utterance padded with enough recycled trailing-silence frames for
/// the endpointer's hysteresis (20 blank frames) to fire well before the
/// stream ends, plus where the speech actually stops.
struct PaddedUtterance {
    frames: Vec<Vec<f32>>,
    /// Index of the first frame after the last non-silence label.
    speech_end: usize,
}

fn pad_with_silence(u: &Utterance, pad: usize) -> PaddedUtterance {
    let speech_end = u
        .labels
        .iter()
        .rposition(|&l| l != SILENCE)
        .map_or(0, |i| i + 1);
    // Recycle the utterance's own silence frames (every corpus sentence
    // starts and ends silence-biased, so there is always at least one).
    let silence: Vec<&Vec<f32>> = u
        .frames
        .iter()
        .zip(&u.labels)
        .filter(|(_, &l)| l == SILENCE)
        .map(|(f, _)| f)
        .collect();
    let mut frames = u.frames.clone();
    if !silence.is_empty() {
        for k in 0..pad {
            frames.push(silence[k % silence.len()].clone());
        }
    }
    PaddedUtterance { frames, speech_end }
}

/// What one endpoint-measurement stream observed at the client.
struct EndpointOutcome {
    /// Wall-clock gap between sending the first post-speech frame and the
    /// first hypothesis with the endpoint flag set (µs); `None` when the
    /// endpointer never fired before the stream ended.
    endpoint_us: Option<f64>,
    /// Wall-clock gap between stream start and the first non-empty
    /// partial hypothesis (µs).
    first_symbol_us: Option<f64>,
}

/// Replays one padded utterance with hypotheses enabled, paced at the
/// real-time rate; returns `None` when the server shed the stream.
fn replay_decoded(addr: SocketAddr, idx: usize, utt: &PaddedUtterance) -> Option<EndpointOutcome> {
    let pace = Duration::from_micros(PACE_US);
    let mut client = StreamClient::connect(addr).ok()?;
    client.start(idx as u32).ok()?;
    client.want_hypotheses().ok()?;
    let base = Instant::now();
    let mut speech_end_at: Option<Instant> = None;
    let mut endpoint_us = None;
    let mut first_symbol_us = None;
    for (t, frame) in utt.frames.iter().enumerate() {
        let due = base + pace * (t as u32);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        if t == utt.speech_end {
            speech_end_at = Some(Instant::now());
        }
        let (_row, hyp) = client.infer_decoded(frame).ok()?;
        if first_symbol_us.is_none() && !hyp.symbols.is_empty() {
            first_symbol_us = Some(base.elapsed().as_secs_f64() * 1e6);
        }
        if endpoint_us.is_none() && hyp.endpoint {
            if let Some(end) = speech_end_at {
                endpoint_us = Some(end.elapsed().as_secs_f64() * 1e6);
            }
        }
    }
    let _ = client.finish_decoded().ok()?;
    Some(EndpointOutcome {
        endpoint_us,
        first_symbol_us,
    })
}

/// One serve configuration of the endpoint section, fully measured.
struct EndpointRun {
    completed: usize,
    shed_streams: usize,
    endpointed: usize,
    endpoint_us: Vec<f64>,
    first_symbol_us: Vec<f64>,
    server_shed: usize,
}

/// Serves `streams` copies of the padded utterances through a fresh
/// server, `workers` concurrent paced clients, lane capacity and queue
/// bounds per `config`.
fn run_endpoint_config(
    net: &CompiledNetwork,
    choice: DecoderChoice,
    utts: &[PaddedUtterance],
    capacity: usize,
    workers: usize,
    queue_depth: usize,
    shed: bool,
) -> EndpointRun {
    let mut admission = AdmissionConfig::unbounded().with_queue_depth(queue_depth);
    if shed {
        admission = admission.with_shed(ShedPolicy::DropOldest);
    }
    let config = RuntimeConfig::default()
        .with_batch(capacity)
        .with_decoder(choice)
        .with_admission(admission)
        .with_serve(
            ServeOptions::default()
                .with_max_conns(workers + 8)
                .with_max_streams(utts.len()),
        );

    let (stats, outcomes) = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let config_ref = &config;
        let server = scope.spawn(move || {
            let exec = Executor::new(config_ref.threads);
            let mut server = Server::bind(net, &exec, config_ref).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run().expect("serve")
        });
        let addr = rx.recv().expect("server bound");

        let clients: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_micros(
                        PACE_US * w as u64 / workers.max(1) as u64,
                    ));
                    (w..utts.len())
                        .step_by(workers)
                        .map(|k| replay_decoded(addr, k, &utts[k]))
                        .collect::<Vec<Option<EndpointOutcome>>>()
                })
            })
            .collect();
        let mut outcomes: Vec<Option<EndpointOutcome>> = Vec::with_capacity(utts.len());
        for handle in clients {
            outcomes.extend(handle.join().expect("client worker"));
        }
        (server.join().expect("server thread"), outcomes)
    });

    let completed = outcomes.iter().filter(|o| o.is_some()).count();
    let mut endpoint_us: Vec<f64> = outcomes
        .iter()
        .flatten()
        .filter_map(|o| o.endpoint_us)
        .collect();
    endpoint_us.sort_by(f64::total_cmp);
    let mut first_symbol_us: Vec<f64> = outcomes
        .iter()
        .flatten()
        .filter_map(|o| o.first_symbol_us)
        .collect();
    first_symbol_us.sort_by(f64::total_cmp);
    EndpointRun {
        completed,
        shed_streams: outcomes.len() - completed,
        endpointed: endpoint_us.len(),
        endpoint_us,
        first_symbol_us,
        server_shed: stats.shed,
    }
}

fn main() {
    let quick = quick_requested();
    let (hidden, corpus_cfg, compressions, pad, workers_over) = if quick {
        (
            24usize,
            CorpusConfig {
                speakers: 8,
                sentences_per_speaker: 2,
                phones_per_sentence: 5,
                ..CorpusConfig::default_scaled()
            },
            vec![10usize],
            30usize,
            4usize,
        )
    } else {
        (48, CorpusConfig::default_scaled(), vec![10, 2], 40, 12)
    };
    let precisions = [
        ("f32", RuntimePrecision::F32),
        ("f16", RuntimePrecision::F16),
        ("int8", RuntimePrecision::Int8),
    ];
    let decoders = [
        DecoderChoice::Argmax,
        DecoderChoice::CtcGreedy,
        DecoderChoice::CtcBeam(4),
    ];

    let exec = Executor::new(1);
    let mut grid_rows = Vec::new();
    let mut first_symbol_all = Vec::new();
    let mut endpoint_net: Option<CompiledNetwork> = None;
    for &rate in &compressions {
        eprintln!("training + BSP pruning at {rate}x compression ...");
        let (report, net, _) = RtMobile::builder()
            .corpus(corpus_cfg.clone())
            .hidden(hidden)
            .compression(rate as f64, 1.0)
            .partition(STRIPES, BLOCKS)
            .seed(2020)
            .run_keeping_model();
        eprintln!(
            "  dense PER {:.2}% -> compiled PER {:.2}%",
            report.accuracy.baseline_per, report.accuracy.compiled_per
        );
        let task = SpeechTask::new(&corpus_cfg, 2020);
        let utterances = task.test_utterances();

        for (pname, prec) in precisions {
            let compiled =
                CompiledNetwork::compile(&net, STRIPES, BLOCKS, prec).expect("valid BSP");
            if rate == compressions[0] && prec == RuntimePrecision::F16 {
                endpoint_net = Some(compiled.clone());
            }
            for choice in decoders {
                let cell = measure_cell(&compiled, &exec, choice, &utterances, rate, pname);
                let mut fs = cell.first_symbol_ms.clone();
                fs.sort_by(f64::total_cmp);
                eprintln!(
                    "  {rate}x {pname} {}: stream RTF {:.4} (max {:.4}), batch RTF {:.4} \
                     ({:.1} streams/core), first symbol {:.0} ms, {} symbols, {} endpoints",
                    cell.decoder,
                    cell.rtf_stream_mean,
                    cell.rtf_stream_max,
                    cell.rtf_batch,
                    cell.sustained_streams,
                    mean(&fs),
                    cell.symbols,
                    cell.endpoints
                );
                grid_rows.push(json_row(&[
                    ("compression", JsonValue::Int(cell.compression as i64)),
                    ("precision", JsonValue::Str(cell.precision.into())),
                    ("decoder", JsonValue::Str(cell.decoder.clone())),
                    ("streams", JsonValue::Int(cell.streams as i64)),
                    ("frames", JsonValue::Int(cell.frames as i64)),
                    ("rtf_stream_mean", JsonValue::F64(cell.rtf_stream_mean, 5)),
                    ("rtf_stream_max", JsonValue::F64(cell.rtf_stream_max, 5)),
                    ("rtf_batch", JsonValue::F64(cell.rtf_batch, 5)),
                    (
                        "sustained_realtime_streams",
                        JsonValue::F64(cell.sustained_streams, 1),
                    ),
                    ("first_symbol_ms_mean", JsonValue::F64(mean(&fs), 1)),
                    (
                        "first_symbol_ms_p99",
                        JsonValue::F64(percentile(&fs, 0.99), 1),
                    ),
                    ("symbols", JsonValue::Int(cell.symbols as i64)),
                    ("endpoints", JsonValue::Int(cell.endpoints as i64)),
                ]));
                first_symbol_all.extend(fs);
            }
        }
    }

    // Endpoint latency through the real serving path: the f16 compile at
    // the paper's compression point, CTC greedy (the production streaming
    // decoder), utterances padded so trailing silence outlasts the
    // endpointer's 20-frame hysteresis.
    let endpoint_net = endpoint_net.expect("f16 compile kept");
    let task = SpeechTask::new(&corpus_cfg, 2020);
    let padded: Vec<PaddedUtterance> = task
        .test_utterances()
        .iter()
        .map(|u| pad_with_silence(u, pad))
        .collect();
    let capacity = 4usize;
    let endpoint_configs = [
        ("uncontended", capacity, capacity, usize::MAX, false),
        ("shedding", capacity, capacity * workers_over / 4, 2, true),
    ];
    let mut endpoint_rows = Vec::new();
    for (name, cap, workers, queue_depth, shed) in endpoint_configs {
        eprintln!(
            "endpoint run {name}: capacity {cap}, {workers} paced clients, queue depth {} ...",
            if queue_depth == usize::MAX {
                "unbounded".to_string()
            } else {
                queue_depth.to_string()
            }
        );
        let run = run_endpoint_config(
            &endpoint_net,
            DecoderChoice::CtcGreedy,
            &padded,
            cap,
            workers,
            queue_depth,
            shed,
        );
        eprintln!(
            "  {} completed / {} shed; endpoint latency p50 {:.0} ms p99 {:.0} ms \
             ({} endpointed), first symbol p50 {:.0} ms",
            run.completed,
            run.shed_streams,
            percentile(&run.endpoint_us, 0.50) / 1e3,
            percentile(&run.endpoint_us, 0.99) / 1e3,
            run.endpointed,
            percentile(&run.first_symbol_us, 0.50) / 1e3,
        );
        endpoint_rows.push(json_row(&[
            ("config", JsonValue::Str(name.into())),
            ("capacity", JsonValue::Int(cap as i64)),
            ("client_workers", JsonValue::Int(workers as i64)),
            (
                "queue_depth",
                if queue_depth == usize::MAX {
                    JsonValue::Str("unbounded".into())
                } else {
                    JsonValue::Int(queue_depth as i64)
                },
            ),
            ("streams", JsonValue::Int(padded.len() as i64)),
            ("completed", JsonValue::Int(run.completed as i64)),
            ("shed_streams", JsonValue::Int(run.shed_streams as i64)),
            ("server_shed", JsonValue::Int(run.server_shed as i64)),
            ("endpointed", JsonValue::Int(run.endpointed as i64)),
            (
                "endpoint_latency_p50_ms",
                JsonValue::F64(percentile(&run.endpoint_us, 0.50) / 1e3, 1),
            ),
            (
                "endpoint_latency_p99_ms",
                JsonValue::F64(percentile(&run.endpoint_us, 0.99) / 1e3, 1),
            ),
            (
                "first_symbol_p50_ms",
                JsonValue::F64(percentile(&run.first_symbol_us, 0.50) / 1e3, 1),
            ),
            (
                "first_symbol_p99_ms",
                JsonValue::F64(percentile(&run.first_symbol_us, 0.99) / 1e3, 1),
            ),
        ]));
    }

    first_symbol_all.sort_by(f64::total_cmp);
    emit_bench_report(
        "rtf",
        quick,
        &[
            (
                "model",
                JsonValue::Raw(format!(
                    "{{\"hidden\": [{hidden}, {hidden}], \"stripes\": {STRIPES}, \
                     \"blocks\": {BLOCKS}, \"compressions\": {compressions:?}, \
                     \"trained\": true}}"
                )),
            ),
            (
                "host_cpus",
                JsonValue::Int(std::thread::available_parallelism().map_or(0, |n| n.get() as i64)),
            ),
            (
                "vector_isa",
                JsonValue::Str(rtm_tensor::simd::vector_isa().into()),
            ),
            ("frame_hop_us", JsonValue::Int(PACE_US as i64)),
            (
                "endpoint_hysteresis_ms",
                JsonValue::Int(
                    (rtm_speech::ctc::DEFAULT_TRAILING_BLANKS as u64 * PACE_US) as i64 / 1000,
                ),
            ),
            (
                "notes",
                JsonValue::Str(
                    "RTF = wall time / audio time at the 10 ms hop; the grid forwards each \
                     held-out utterance and streams its logits through a fresh decoder \
                     (per-stream rows), then replays all utterances through one batched \
                     session with per-lane decoders (rtf_batch; its reciprocal is the \
                     sustained real-time streams one core can decode). first_symbol_ms is \
                     the audio position of the first non-empty partial. The endpoint \
                     section replays silence-padded utterances over loopback TCP with \
                     protocol-v2 hypotheses at the real-time pace and measures speaker-quiet \
                     to endpoint-flag wall latency, uncontended vs oversubscribed with a \
                     depth-2 drop-oldest queue; the 200 ms hysteresis of the trailing-blank \
                     endpointer is the floor."
                        .into(),
                ),
            ),
        ],
        &[
            ("grid", grid_rows),
            ("endpoint", endpoint_rows),
            (
                "headline",
                vec![json_row(&[
                    (
                        "first_symbol_ms_p50_overall",
                        JsonValue::F64(percentile(&first_symbol_all, 0.50), 1),
                    ),
                    (
                        "first_symbol_ms_p99_overall",
                        JsonValue::F64(percentile(&first_symbol_all, 0.99), 1),
                    ),
                ])],
            ),
        ],
    );
}
