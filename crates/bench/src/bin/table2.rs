//! Regenerates **Table II**: inference time per frame, GOP/s and
//! ESE-normalized energy efficiency on the simulated mobile GPU and CPU,
//! across the paper's compression sweep.
//!
//! ```text
//! cargo run -p rtm-bench --bin table2 --release
//! ```
//!
//! The workload is the paper-scale 2-layer GRU (hidden 1024, ≈9.6M params,
//! 0.58 GOP dense) with exact BSP structure at each point. The structural
//! column rate is chosen as `paper_overall / row_rate` so the generated
//! matrices *achieve* the overall rate Table II reports (the paper's
//! overall rates already include its per-block rounding). Paper values are
//! printed alongside each simulated value.

use rtm_bench::{rule, write_csv, SEED, SIM_HIDDEN};
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_sim::{GruWorkload, InferenceSim};

/// `(paper overall rate, row rate, paper GOP, paper GPU us, paper GPU GOP/s,
/// paper GPU eff, paper CPU us, paper CPU GOP/s, paper CPU eff)`
#[allow(clippy::type_complexity)]
const PAPER_ROWS: [(f64, f64, f64, f64, f64, f64, f64, f64, f64); 10] = [
    (1.0, 1.0, 0.58, 3590.12, 161.55, 0.88, 7130.00, 81.35, 0.25),
    (10.0, 1.0, 0.058, 495.26, 117.11, 6.35, 1210.20, 47.93, 1.48),
    (
        19.0, 1.25, 0.033, 304.11, 108.51, 10.35, 709.33, 46.52, 2.52,
    ),
    (29.0, 2.0, 0.0207, 233.89, 88.29, 13.45, 464.73, 44.43, 3.85),
    (43.0, 5.0, 0.0143, 186.05, 76.86, 16.91, 344.77, 41.48, 5.19),
    (80.0, 8.0, 0.008, 130.00, 61.54, 24.2, 218.01, 36.70, 8.20),
    (
        103.0, 16.0, 0.006, 109.76, 54.66, 28.67, 202.72, 29.59, 8.82,
    ),
    (
        153.0, 10.0, 0.0039, 97.11, 40.16, 32.4, 170.74, 22.84, 10.47,
    ),
    (
        245.0, 16.0, 0.0028, 81.64, 34.30, 38.54, 151.28, 18.51, 11.82,
    ),
    (
        301.0, 20.0, 0.002, 79.13, 25.27, 39.76, 145.93, 13.71, 12.25,
    ),
];

fn main() {
    let sim = InferenceSim::new();
    let w = 132;
    println!("Simulated Snapdragon-855-class SoC; paper values in parentheses. GPU path fp16, CPU path fp32.");
    println!("{}", rule(w));
    println!(
        "{:>6} {:>8} | {:>18} {:>16} {:>14} | {:>18} {:>16} {:>14}",
        "Rate",
        "GOP",
        "GPU us (paper)",
        "GPU GOP/s (p)",
        "GPU eff (p)",
        "CPU us (paper)",
        "CPU GOP/s (p)",
        "CPU eff (p)"
    );
    println!("{}", rule(w));

    let mut csv_rows: Vec<String> = Vec::new();
    for &(overall, row_rate, p_gop, p_gt, p_ggops, p_geff, p_ct, p_cgops, p_ceff) in &PAPER_ROWS {
        let col_rate = (overall / row_rate).max(1.0);
        let workload =
            GruWorkload::with_bsp_pattern(40, SIM_HIDDEN, 2, col_rate, row_rate, 8, 8, SEED);
        let (gpu_plan, cpu_plan) = if overall <= 1.0 {
            (
                ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations(),
                ExecutionPlan::cpu_default(StorageFormat::Dense).without_optimizations(),
            )
        } else {
            (
                ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
                ExecutionPlan::cpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
            )
        };
        let g = sim.run_frame(&workload, &gpu_plan);
        let c = sim.run_frame(&workload, &cpu_plan);
        println!(
            "{:>5.0}x {:>8.4} | {:>8.1} ({:>7.1}) {:>8.1} ({:>5.1}) {:>7.2} ({:>4.1}) | {:>8.1} ({:>7.1}) {:>8.1} ({:>5.1}) {:>7.2} ({:>4.1})",
            workload.compression_rate(),
            g.gop,
            g.time_us,
            p_gt,
            g.gop_per_s,
            p_ggops,
            g.efficiency_vs_ese,
            p_geff,
            c.time_us,
            p_ct,
            c.gop_per_s,
            p_cgops,
            c.efficiency_vs_ese,
            p_ceff,
        );
        csv_rows.push(format!(
            "{:.1},{:.4},{:.4},{:.1},{:.1},{:.1},{:.1},{:.2},{:.2},{:.1},{:.1},{:.1},{:.1},{:.2},{:.2}",
            workload.compression_rate(), g.gop, p_gop,
            g.time_us, p_gt, g.gop_per_s, p_ggops, g.efficiency_vs_ese, p_geff,
            c.time_us, p_ct, c.gop_per_s, p_cgops, c.efficiency_vs_ese, p_ceff,
        ));
    }
    println!("{}", rule(w));
    match write_csv(
        "table2",
        "rate,gop,paper_gop,gpu_us,paper_gpu_us,gpu_gops,paper_gpu_gops,gpu_eff,paper_gpu_eff,cpu_us,paper_cpu_us,cpu_gops,paper_cpu_gops,cpu_eff,paper_cpu_eff",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!();
    println!("ESE reference: 82.7 us/frame at 41 W (paper constants).");
    println!("Shape expectations (EXPERIMENTS.md E2): time and GOP/s fall monotonically with");
    println!("compression while efficiency rises; GPU beats CPU throughout; the GPU crosses");
    println!("ESE's latency near the 245x row at ~40x ESE's energy efficiency.");
}
