//! Serving-throughput benchmark: continuous batching vs serve-one-at-a-time.
//!
//! Writes `BENCH_serve_load.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). The question the artifact answers is the tentpole claim of
//! DESIGN.md §14: on one core, the `rtm serve` continuous-batching loop
//! must sustain **at least 4× the concurrent real-time speech streams**
//! of a serve-one-connection-at-a-time front end while both stay inside
//! the same p99 frame-latency budget — and every stream's logits must be
//! bit-identical to a serial [`CompiledNetwork::forward`] of its frames.
//!
//! Method: synthetic-speech utterances (the seeded TIMIT-like corpus) are
//! replayed over loopback TCP by closed-loop clients that pace frames at
//! the real-time rate (one frame per 10 ms hop, 100 fps). A real-time
//! stream occupies a serve-one-at-a-time server for its entire wall-clock
//! duration while using only a sliver of the core — the server idles
//! between frames. Continuous batching admits other connections' frames
//! into the idle gaps, so sustained concurrency is bounded by compute,
//! not by stream duration. `sustained_realtime_streams` is therefore
//! frames-served-per-second ÷ 100 — how many 100 fps streams that
//! throughput represents — and the latency SLO is one frame period
//! (p99 ≤ 10 ms): a stream whose responses arrive inside the hop that
//! produced them never falls behind the speaker.
//!
//! Per-frame round-trip latency is measured client-side (send → logits)
//! and recorded into the `rtm-trace` histogram `serve.client_rtt_us`;
//! the artifact reports exact percentiles from the raw samples alongside
//! the trace histogram's bucketed view (power-of-two upper bounds). The
//! first frame of each stream carries the admission wait (connect →
//! lane), so it is reported separately as `admit_wait` and excluded from
//! steady-state frame latency.
//!
//! Dependency-free: std + workspace crates only.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rtm_bench::{emit_bench_report, json_row, quick_requested, JsonValue};
use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_speech::corpus::{CorpusConfig, SpeechCorpus};
use rtm_speech::phones::NUM_PHONES;
use rtm_tensor::Matrix;
use rtm_trace::key;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use rtmobile::{RuntimeConfig, ServeOptions, ServeStats, Server, StreamClient, TraceConfig};

const STRIPES: usize = 8;
const BLOCKS: usize = 8;
/// The paper's ~10× compression point (keep one weight in 10).
const RATE_10X: usize = 10;
/// A lightly-pruned 2× comparison point for the streams-vs-compression row.
const RATE_2X: usize = 2;
/// Real-time speech frame hop: 10 ms, i.e. 100 frames per second.
const PACE_US: u64 = 10_000;
/// Latency SLO: p99 frame round-trip within one frame period.
const SLO_US: f64 = PACE_US as f64;

/// Zeroes a weight matrix down to a BSP pattern: every row kept, one in
/// `rate` columns kept per stripe (the kept set shared stripe-wide, offset
/// per stripe so the layers don't all prune the same columns).
fn sparsify(m: &Matrix, rate: usize) -> Matrix {
    let stripe_h = m.rows().div_ceil(STRIPES);
    Matrix::from_fn(m.rows(), m.cols(), |r, c| {
        let s = r / stripe_h;
        if (c + s).is_multiple_of(rate) {
            m[(r, c)]
        } else {
            0.0
        }
    })
}

/// What one replayed stream observed, measured at the client.
struct StreamOutcome {
    /// Index into the utterance list (for the bit-identity check).
    idx: usize,
    /// Every logits row the server returned, in order.
    logits: Vec<Vec<f32>>,
    /// Connect-to-first-logits latency (includes the admission wait).
    admit_us: f64,
    /// Steady-state per-frame round trips (frames after the first).
    rtts: Vec<f64>,
}

/// One serving configuration, fully measured.
struct ConfigRun {
    stats: ServeStats,
    wall_s: f64,
    outcomes: Vec<StreamOutcome>,
    /// Trace-histogram view of the steady-state round trips.
    trace_rtt: Option<rtm_trace::HistogramSnapshot>,
    bytes_in: u64,
    bytes_out: u64,
    disconnects: u64,
    protocol_errors: u64,
}

/// Exact quantile of a sorted sample set (rank `⌈q·n⌉`, matching the
/// trace histogram's convention but without its bucket rounding).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Replays one utterance through a blocking client, closed-loop, pacing
/// frames at the real-time rate relative to its own admission.
fn replay_stream(addr: SocketAddr, idx: usize, frames: &[Vec<f32>]) -> StreamOutcome {
    let pace = Duration::from_micros(PACE_US);
    let mut client = StreamClient::connect(addr).expect("connect");
    client.start(idx as u32).expect("start");

    let connect = Instant::now();
    let first = client.infer(&frames[0]).expect("first frame");
    let admit_us = connect.elapsed().as_secs_f64() * 1e6;

    let mut logits = Vec::with_capacity(frames.len());
    logits.push(first);
    let mut rtts = Vec::with_capacity(frames.len().saturating_sub(1));
    let base = Instant::now();
    for (t, frame) in frames.iter().enumerate().skip(1) {
        // Frame t of a 100 fps utterance exists t hops after admission;
        // sending it earlier would let a backlogged client outrun the
        // speaker and overstate sustainable concurrency.
        let due = base + pace * (t as u32);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sent = Instant::now();
        logits.push(client.infer(frame).expect("infer"));
        let us = sent.elapsed().as_secs_f64() * 1e6;
        rtm_trace::record(key::SERVE_CLIENT_RTT_US, us);
        rtts.push(us);
    }
    let served = client.finish().expect("finish");
    assert_eq!(served as usize, frames.len(), "server frame count");
    StreamOutcome {
        idx,
        logits,
        admit_us,
        rtts,
    }
}

/// Serves every utterance through a fresh server at lane `capacity`,
/// `workers` concurrent client threads each replaying its share of the
/// streams back to back. Returns once the server drains.
fn run_config(
    net: &CompiledNetwork,
    capacity: usize,
    workers: usize,
    utterances: &[&[Vec<f32>]],
) -> ConfigRun {
    rtm_trace::global().reset();
    let config = RuntimeConfig::default().with_batch(capacity).with_serve(
        ServeOptions::default()
            .with_max_conns(workers + 8)
            .with_max_streams(utterances.len()),
    );

    let (stats, wall_s, outcomes) = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let server = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let mut server = Server::bind(net, &exec, &config).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run().expect("serve")
        });
        let addr = rx.recv().expect("server bound");

        let start = Instant::now();
        let clients: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    // Stagger the first connects across one frame period so
                    // the paced ticks don't all land on the same instant.
                    std::thread::sleep(Duration::from_micros(
                        PACE_US * w as u64 / workers.max(1) as u64,
                    ));
                    (w..utterances.len())
                        .step_by(workers)
                        .map(|k| replay_stream(addr, k, utterances[k]))
                        .collect::<Vec<StreamOutcome>>()
                })
            })
            .collect();
        let mut outcomes: Vec<StreamOutcome> = Vec::with_capacity(utterances.len());
        for handle in clients {
            outcomes.extend(handle.join().expect("client worker"));
        }
        let wall_s = start.elapsed().as_secs_f64();
        (server.join().expect("server thread"), wall_s, outcomes)
    });

    let reg = rtm_trace::global();
    ConfigRun {
        stats,
        wall_s,
        outcomes,
        trace_rtt: reg.hist(key::SERVE_CLIENT_RTT_US),
        bytes_in: reg.counter(key::SERVE_BYTES_IN),
        bytes_out: reg.counter(key::SERVE_BYTES_OUT),
        disconnects: reg.counter(key::SERVE_DISCONNECTS),
        protocol_errors: reg.counter(key::SERVE_PROTOCOL_ERRORS),
    }
}

fn main() {
    let quick = quick_requested();
    // Serial baseline replays fewer streams: at capacity 1 its wall clock
    // is the sum of every stream's real-time duration.
    let (hidden, speakers, sentences, serial_streams, capacity, workers) = if quick {
        (32, 3, 2, 2, 4, 6)
    } else {
        // 64 lanes is past the one-core compute ceiling of the 2×-pruned
        // model but inside the 10× one — the SLO, not the lane count,
        // becomes the binding constraint on the compression axis.
        (256, 60, 4, 6, 64, 80)
    };

    let corpus = SpeechCorpus::generate(
        &CorpusConfig {
            speakers,
            sentences_per_speaker: sentences,
            ..CorpusConfig::default_scaled()
        },
        4242,
    );
    let input_dim = corpus.config.feature_dim;
    let base = GruNetwork::new(
        &NetworkConfig {
            input_dim,
            hidden_dims: vec![hidden, hidden],
            num_classes: NUM_PHONES,
        },
        2026,
    );
    let compile_at = |rate: usize| -> CompiledNetwork {
        let mut net = base.clone();
        for layer in &mut net.layers {
            layer.w_z = sparsify(&layer.w_z, rate);
            layer.u_z = sparsify(&layer.u_z, rate);
            layer.w_r = sparsify(&layer.w_r, rate);
            layer.u_r = sparsify(&layer.u_r, rate);
            layer.w_n = sparsify(&layer.w_n, rate);
            layer.u_n = sparsify(&layer.u_n, rate);
        }
        CompiledNetwork::compile(&net, STRIPES, BLOCKS, RuntimePrecision::F16).expect("valid BSP")
    };
    let compiled = compile_at(RATE_10X);
    let compiled_2x = compile_at(RATE_2X);

    let streams: Vec<&[Vec<f32>]> = corpus
        .utterances
        .iter()
        .map(|u| u.frames.as_slice())
        .collect();
    let total_frames: usize = streams.iter().map(|s| s.len()).sum();
    eprintln!(
        "corpus: {} utterances, {} frames total ({:.1} avg), feature dim {}",
        streams.len(),
        total_frames,
        total_frames as f64 / streams.len() as f64,
        input_dim
    );

    // Client RTTs are recorded through the trace registry; warm the
    // compiled runtimes so first-touch paging lands outside the clock.
    rtm_trace::set_config(TraceConfig::on());
    std::hint::black_box(compiled.forward(streams[0]));
    std::hint::black_box(compiled_2x.forward(streams[0]));

    // The 2× run shows compression buying concurrency: same lanes, same
    // offered load, ~5× the per-frame compute — EXPERIMENTS.md Q3.
    let configs = [
        (
            "serve_one_at_a_time",
            &compiled,
            RATE_10X,
            1usize,
            2usize,
            &streams[..serial_streams],
        ),
        (
            "continuous_batching",
            &compiled,
            RATE_10X,
            capacity,
            workers,
            &streams[..],
        ),
        (
            "continuous_batching",
            &compiled_2x,
            RATE_2X,
            capacity,
            workers,
            &streams[..],
        ),
    ];
    let mut rows = Vec::new();
    let mut trace_rows = Vec::new();
    let mut sustained = Vec::new();
    let mut p99s = Vec::new();
    for (name, net, rate, cap, wrk, utts) in configs {
        eprintln!(
            "{name} ({rate}x): capacity {cap}, {wrk} client workers, {} streams ...",
            utts.len()
        );
        let run = run_config(net, cap, wrk, utts);

        // Bit-identity: every stream must match a serial forward exactly,
        // whatever lanes it shared and whenever it was admitted.
        for out in &run.outcomes {
            let serial = net.forward(utts[out.idx]);
            assert_eq!(serial.len(), out.logits.len(), "stream {} frames", out.idx);
            for (t, (a, b)) in serial.iter().zip(&out.logits).enumerate() {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "stream {} frame {t} logit {i}: served {y} vs serial {x}",
                        out.idx
                    );
                }
            }
        }

        let frames: usize = run.outcomes.iter().map(|o| o.logits.len()).sum();
        let mut rtts: Vec<f64> = run
            .outcomes
            .iter()
            .flat_map(|o| o.rtts.iter().copied())
            .collect();
        rtts.sort_by(f64::total_cmp);
        let mut admits: Vec<f64> = run.outcomes.iter().map(|o| o.admit_us).collect();
        admits.sort_by(f64::total_cmp);
        let realtime = frames as f64 / run.wall_s / (1e6 / PACE_US as f64);
        let p99 = percentile(&rtts, 0.99);
        eprintln!(
            "  {:.2} s wall, {} frames -> {:.2} sustained real-time streams; \
             frame rtt p50 {:.0} us p99 {:.0} us; shed {} quarantined {}",
            run.wall_s,
            frames,
            realtime,
            percentile(&rtts, 0.50),
            p99,
            run.stats.shed,
            run.stats.quarantined
        );

        rows.push(json_row(&[
            ("config", JsonValue::Str(name.into())),
            ("compression", JsonValue::Int(rate as i64)),
            ("capacity", JsonValue::Int(cap as i64)),
            ("client_workers", JsonValue::Int(wrk as i64)),
            ("streams", JsonValue::Int(utts.len() as i64)),
            ("frames", JsonValue::Int(frames as i64)),
            ("wall_s", JsonValue::F64(run.wall_s, 3)),
            (
                "streams_per_sec",
                JsonValue::F64(utts.len() as f64 / run.wall_s, 2),
            ),
            ("sustained_realtime_streams", JsonValue::F64(realtime, 2)),
            (
                "frame_rtt_p50_us",
                JsonValue::F64(percentile(&rtts, 0.50), 0),
            ),
            (
                "frame_rtt_p95_us",
                JsonValue::F64(percentile(&rtts, 0.95), 0),
            ),
            ("frame_rtt_p99_us", JsonValue::F64(p99, 0)),
            (
                "admit_wait_p50_us",
                JsonValue::F64(percentile(&admits, 0.50), 0),
            ),
            (
                "admit_wait_p99_us",
                JsonValue::F64(percentile(&admits, 0.99), 0),
            ),
            ("admitted", JsonValue::Int(run.stats.admitted as i64)),
            ("completed", JsonValue::Int(run.stats.completed as i64)),
            ("shed", JsonValue::Int(run.stats.shed as i64)),
            ("quarantined", JsonValue::Int(run.stats.quarantined as i64)),
            (
                "deadline_missed",
                JsonValue::Int(run.stats.deadline_missed as i64),
            ),
            ("disconnects", JsonValue::Int(run.disconnects as i64)),
            (
                "protocol_errors",
                JsonValue::Int(run.protocol_errors as i64),
            ),
            ("bytes_in", JsonValue::Int(run.bytes_in as i64)),
            ("bytes_out", JsonValue::Int(run.bytes_out as i64)),
            (
                "bit_identical_streams",
                JsonValue::Str(format!("{}/{}", run.outcomes.len(), utts.len())),
            ),
        ]));
        let h = run.trace_rtt.expect("client rtt histogram recorded");
        trace_rows.push(json_row(&[
            ("config", JsonValue::Str(name.into())),
            ("compression", JsonValue::Int(rate as i64)),
            ("hist", JsonValue::Str(key::SERVE_CLIENT_RTT_US.into())),
            ("count", JsonValue::Int(h.count as i64)),
            ("p50_us", JsonValue::F64(h.p50, 0)),
            ("p95_us", JsonValue::F64(h.p95, 0)),
            ("p99_us", JsonValue::F64(h.p99, 0)),
            ("max_us", JsonValue::F64(h.max, 0)),
        ]));
        sustained.push(realtime);
        p99s.push(p99);
    }

    // The headline compares the two 10× configurations; the 2× run is the
    // compression axis and may legitimately saturate the core.
    let speedup = sustained[1] / sustained[0];
    let within_slo = p99s[..2].iter().all(|&p| p <= SLO_US);
    eprintln!(
        "headline: {:.2}x the sustained real-time streams of serve-one-at-a-time \
         (p99 {:.0} us vs {:.0} us, SLO {} us: {}); at 2x compression {:.2} streams",
        speedup,
        p99s[1],
        p99s[0],
        SLO_US as u64,
        if within_slo {
            "both within"
        } else {
            "EXCEEDED"
        },
        sustained[2]
    );

    emit_bench_report(
        "serve_load",
        quick,
        &[
            (
                "model",
                JsonValue::Raw(format!(
                    "{{\"input_dim\": {input_dim}, \"hidden\": [{hidden}, {hidden}], \
                     \"classes\": {NUM_PHONES}, \"compressions\": [{RATE_10X}, {RATE_2X}], \
                     \"precision\": \"f16\", \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}}}"
                )),
            ),
            (
                "host_cpus",
                JsonValue::Int(std::thread::available_parallelism().map_or(0, |n| n.get() as i64)),
            ),
            (
                "vector_isa",
                JsonValue::Str(rtm_tensor::simd::vector_isa().into()),
            ),
            ("pace_us", JsonValue::Int(PACE_US as i64)),
            ("slo_us", JsonValue::Int(SLO_US as i64)),
            (
                "notes",
                JsonValue::Str(
                    "Synthetic-speech utterances replayed over loopback TCP by closed-loop \
                     clients pacing frames at 100 fps relative to their own admission; one \
                     server thread, one executor thread. sustained_realtime_streams = frames \
                     served per second / 100. Frame RTT percentiles are exact (client-side \
                     samples); the trace section is the same data through the rtm-trace \
                     power-of-two histogram. The first frame of each stream is the admission \
                     wait and is excluded from steady-state RTT. Every stream is verified \
                     bit-identical to a serial forward of the same frames. The 2x row \
                     reruns continuous batching on the same network pruned to only 2x \
                     compression: the streams-per-core ceiling is compute-bound, so it \
                     tracks the compression rate (EXPERIMENTS.md Q3)."
                        .into(),
                ),
            ),
        ],
        &[
            ("results", rows),
            ("trace", trace_rows),
            (
                "headline",
                vec![json_row(&[
                    ("sustained_serial", JsonValue::F64(sustained[0], 2)),
                    ("sustained_batched", JsonValue::F64(sustained[1], 2)),
                    ("speedup", JsonValue::F64(speedup, 2)),
                    ("p99_serial_us", JsonValue::F64(p99s[0], 0)),
                    ("p99_batched_us", JsonValue::F64(p99s[1], 0)),
                    ("both_within_slo", JsonValue::Raw(within_slo.to_string())),
                    ("sustained_batched_2x", JsonValue::F64(sustained[2], 2)),
                    ("p99_batched_2x_us", JsonValue::F64(p99s[2], 0)),
                ])],
            ),
        ],
    );
}
