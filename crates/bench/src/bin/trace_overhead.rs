//! Observability overhead benchmark: the cost of `rtm-trace` on the
//! steady-state inference path.
//!
//! Writes `BENCH_trace_overhead.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). The question the artifact answers is the one DESIGN.md §11
//! commits to: tracing *enabled* must cost at most a few percent of
//! steady-state inference, and tracing *disabled* (the default) must be
//! free within measurement noise — its whole cost is one relaxed atomic
//! load per would-be recording.
//!
//! Method: a 2-layer GRU with BSP-patterned (~10×) sparse weights is
//! compiled to the f16 runtime, and `predict_with` over a fixed utterance
//! is timed in *interleaved* off/on rounds (off, on, off, on, …), each
//! round using the best-of-5 min-estimator. Interleaving matters on a
//! shared CI host: slow drift (another container waking up mid-run) hits
//! both configurations equally instead of biasing whichever phase ran
//! second. The headline `overhead_on_pct` compares min-across-rounds on
//! vs min-across-rounds off; `off_noise_pct` is the spread of the off
//! rounds, i.e. the host's demonstrated noise floor for this workload.
//!
//! Dependency-free: std + workspace crates only.

use rtm_bench::{emit_bench_report, json_row, quick_requested, time_us, JsonValue};
use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_tensor::Matrix;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use rtmobile::TraceConfig;

const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const RATE: usize = 10;

/// Zeroes a weight matrix down to a BSP pattern: every row kept, one in
/// `RATE` columns kept per stripe (the kept set shared stripe-wide, offset
/// per stripe so the layers don't all prune the same columns).
fn sparsify(m: &Matrix) -> Matrix {
    let stripe_h = m.rows().div_ceil(STRIPES);
    Matrix::from_fn(m.rows(), m.cols(), |r, c| {
        let s = r / stripe_h;
        if (c + s).is_multiple_of(RATE) {
            m[(r, c)]
        } else {
            0.0
        }
    })
}

fn main() {
    let quick = quick_requested();
    let (hidden, frames_n, iters, rounds) = if quick {
        (32, 4, 1, 1)
    } else {
        (256, 25, 10, 8)
    };
    let input_dim = 40;

    let mut net = GruNetwork::new(
        &NetworkConfig {
            input_dim,
            hidden_dims: vec![hidden, hidden],
            num_classes: 48,
        },
        2020,
    );
    for layer in &mut net.layers {
        layer.w_z = sparsify(&layer.w_z);
        layer.u_z = sparsify(&layer.u_z);
        layer.w_r = sparsify(&layer.w_r);
        layer.u_r = sparsify(&layer.u_r);
        layer.w_n = sparsify(&layer.w_n);
        layer.u_n = sparsify(&layer.u_n);
    }
    let compiled =
        CompiledNetwork::compile(&net, STRIPES, BLOCKS, RuntimePrecision::F16).expect("valid BSP");
    let exec = Executor::new(1);
    let frames: Vec<Vec<f32>> = (0..frames_n)
        .map(|t| {
            (0..input_dim)
                .map(|i| ((t * input_dim + i) as f32 * 0.73).sin())
                .collect()
        })
        .collect();

    let time_phase = |config: TraceConfig| -> f64 {
        rtm_trace::set_config(config);
        rtm_trace::global().reset();
        time_us(iters, || {
            std::hint::black_box(compiled.predict_with(&exec, &frames));
        })
    };

    let mut off_samples: Vec<f64> = Vec::with_capacity(rounds);
    let mut on_samples: Vec<f64> = Vec::with_capacity(rounds);
    let mut spmv_calls = 0u64;
    for round in 0..rounds {
        off_samples.push(time_phase(TraceConfig::off()));
        on_samples.push(time_phase(TraceConfig::on()));
        // Read before the next phase resets the registry: sanity evidence
        // the instrumentation actually ran during the traced rounds.
        spmv_calls = rtm_trace::global().counter(rtm_trace::key::SPMV_BSPC);
        eprintln!(
            "round {round}: off {:.1} us, on {:.1} us",
            off_samples[round], on_samples[round]
        );
    }

    let min_of = |s: &[f64]| s.iter().copied().fold(f64::INFINITY, f64::min);
    let max_of = |s: &[f64]| s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let off_us = min_of(&off_samples);
    let on_us = min_of(&on_samples);
    let overhead_on_pct = (on_us / off_us - 1.0) * 100.0;
    let off_noise_pct = (max_of(&off_samples) / off_us - 1.0) * 100.0;
    eprintln!(
        "best: off {off_us:.1} us, on {on_us:.1} us \
         (on overhead {overhead_on_pct:+.2}%, off noise {off_noise_pct:.2}%)"
    );

    let rows: Vec<String> = (0..rounds)
        .map(|i| {
            json_row(&[
                ("round", JsonValue::Int(i as i64)),
                ("off_us_per_inference", JsonValue::F64(off_samples[i], 2)),
                ("on_us_per_inference", JsonValue::F64(on_samples[i], 2)),
            ])
        })
        .collect();

    emit_bench_report(
        "trace_overhead",
        quick,
        &[
            ("hidden", JsonValue::Int(hidden as i64)),
            ("layers", JsonValue::Int(2)),
            ("frames", JsonValue::Int(frames_n as i64)),
            ("compression", JsonValue::Int(RATE as i64)),
            (
                "vector_isa",
                JsonValue::Str(rtm_tensor::simd::vector_isa().into()),
            ),
            ("rounds", JsonValue::Int(rounds as i64)),
            (
                "spmv_calls_per_traced_round",
                JsonValue::Int(spmv_calls as i64),
            ),
            ("off_us", JsonValue::F64(off_us, 2)),
            ("on_us", JsonValue::F64(on_us, 2)),
            ("overhead_on_pct", JsonValue::F64(overhead_on_pct, 3)),
            ("off_noise_pct", JsonValue::F64(off_noise_pct, 3)),
            (
                "notes",
                JsonValue::Str(
                    "Steady-state predict_with on a 10x BSP-sparse 2-layer GRU, timed in \
                     interleaved off/on rounds (best-of-5 min-estimator per round) so \
                     host drift hits both configurations equally. overhead_on_pct = \
                     min-across-rounds on vs min-across-rounds off; off_noise_pct is the \
                     spread of the off rounds, i.e. the host's noise floor. The disabled \
                     path's only cost is one relaxed atomic load per would-be recording."
                        .into(),
                ),
            ),
        ],
        &[("results", rows)],
    );
}
