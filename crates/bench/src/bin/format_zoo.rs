//! Sparse-format zoo benchmark: BSPC vs CSR vs BBS vs CSB kernels.
//!
//! Writes `BENCH_format_zoo.json` at the repository root (or under
//! `target/quick/` with `--quick`). Times the precision-dispatched serial
//! SpMV and batched SpMM entry points — exactly what the compiled runtime
//! calls — for every storage format at every precision, over two sparsity
//! families at the same compression rate:
//!
//! * `bsp` — the BSP-patterned matrix BSPC was designed for (kept columns
//!   shared per stripe): BSPC's home turf, where its dense stripe×block
//!   panels and reordered streams should win;
//! * `unstructured` — per-row random column survival at the same nnz
//!   budget: the stripe-wide column union approaches the full width, so
//!   BSPC degenerates toward dense compute while the nnz-exact formats
//!   (CSR, BBS, CSB) stream only the survivors.
//!
//! The `speedups` section divides the BSPC time by each rival format's
//! time per (family × kernel × compression × precision) — values above 1
//! are shapes where the zoo beats the paper's format at equal compression.
//!
//! The `tuner` section runs the real per-layer selector
//! ([`rtm_compiler::tuner::measure_format_costs`] /
//! [`select_format`](rtm_compiler::tuner::select_format)) over a reference
//! two-layer BiGRU whose first layer is BSP-pruned and whose second is
//! unstructured-pruned, and records the per-layer winner plus the summed
//! `auto` cost against the all-BSPC cost — `auto` picks the per-layer
//! minimum of a candidate set that includes BSPC, so it can never come out
//! slower than all-BSPC in the same sweep.
//!
//! Dependency-free: std + workspace crates only.

use rtm_bench::{bsp_matrix, emit_bench_report, json_row, quick_requested, time_us, JsonValue};
use rtm_compiler::plan::StorageFormat;
use rtm_sparse::{BbsMatrix, BspcMatrix, CsbMatrix, CsrMatrix, Footprint, Precision};
use rtm_tensor::rng::StdRng;
use rtm_tensor::Matrix;

const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const LANES: usize = 8;

/// Per-row random column survival at `1/rate` density: the structure BSP
/// pruning would have destroyed, and the worst case for a stripe-union
/// storage scheme.
fn unstructured_matrix(rows: usize, cols: usize, rate: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = ((cols as f64 / rate).round() as usize).clamp(1, cols);
    let mut kept = vec![false; rows * cols];
    for r in 0..rows {
        let mut chosen: Vec<usize> = (0..cols).collect();
        for i in 0..keep {
            let j = rng.gen_range(i..chosen.len());
            chosen.swap(i, j);
        }
        for &c in &chosen[..keep] {
            kept[r * cols + c] = true;
        }
    }
    Matrix::from_fn(rows, cols, |r, c| {
        if kept[r * cols + c] {
            0.05 + (((r * 29 + c * 13) % 89) as f32) / 100.0
        } else {
            0.0
        }
    })
}

struct Row {
    family: &'static str,
    kernel: &'static str,
    format: &'static str,
    compression: f64,
    precision: &'static str,
    bytes: usize,
    us: f64,
}

enum Encoded {
    Bspc(BspcMatrix),
    Csr(CsrMatrix),
    Bbs(BbsMatrix),
    Csb(CsbMatrix),
}

impl Encoded {
    fn tag(&self) -> &'static str {
        match self {
            Encoded::Bspc(_) => "bspc",
            Encoded::Csr(_) => "csr",
            Encoded::Bbs(_) => "bbs",
            Encoded::Csb(_) => "csb",
        }
    }

    fn bytes(&self, prec: Precision) -> usize {
        match self {
            Encoded::Bspc(m) => Footprint::bspc(m, prec).total(),
            Encoded::Csr(m) => Footprint::csr(m, prec).total(),
            Encoded::Bbs(m) => Footprint::bbs(m, prec).total(),
            Encoded::Csb(m) => Footprint::csb(m, prec).total(),
        }
    }

    fn spmv(&self, prec: Precision, x: &[f32], y: &mut [f32]) {
        match self {
            Encoded::Bspc(m) => m.spmv_prec_into(prec, x, y).expect("shapes match"),
            Encoded::Csr(m) => m.spmv_prec_into(prec, x, y).expect("shapes match"),
            Encoded::Bbs(m) => m.spmv_prec_into(prec, x, y).expect("shapes match"),
            Encoded::Csb(m) => m.spmv_prec_into(prec, x, y).expect("shapes match"),
        }
    }

    fn spmm(&self, prec: Precision, xs: &[f32], lanes: usize, ys: &mut [f32]) {
        match self {
            Encoded::Bspc(m) => m.spmm_prec_into(prec, xs, lanes, ys).expect("shapes match"),
            Encoded::Csr(m) => m.spmm_prec_into(prec, xs, lanes, ys).expect("shapes match"),
            Encoded::Bbs(m) => m.spmm_prec_into(prec, xs, lanes, ys).expect("shapes match"),
            Encoded::Csb(m) => m.spmm_prec_into(prec, xs, lanes, ys).expect("shapes match"),
        }
    }
}

fn encode_all(dense: &Matrix) -> Vec<Encoded> {
    let (rows, cols) = dense.shape();
    vec![
        Encoded::Bspc(BspcMatrix::from_dense(dense, STRIPES, BLOCKS).expect("valid partition")),
        Encoded::Csr(CsrMatrix::from_dense(dense)),
        Encoded::Bbs(BbsMatrix::from_dense(dense, BLOCKS.min(cols.max(1))).expect("valid banks")),
        Encoded::Csb(
            CsbMatrix::from_dense(dense, rows.div_ceil(STRIPES), cols.div_ceil(BLOCKS))
                .expect("valid blocks"),
        ),
    ]
}

fn main() {
    let quick = quick_requested();
    let (rows_dim, cols_dim) = if quick { (64, 64) } else { (1024, 1024) };
    let compressions: &[f64] = if quick { &[2.5] } else { &[2.5, 10.0] };
    let scale = |iters: usize| if quick { 1 } else { iters };

    let mut rows: Vec<Row> = Vec::new();

    for &rate in compressions {
        let families: [(&'static str, Matrix); 2] = [
            (
                "bsp",
                bsp_matrix(rows_dim, cols_dim, STRIPES, BLOCKS, rate, 42),
            ),
            (
                "unstructured",
                unstructured_matrix(rows_dim, cols_dim, rate, 43),
            ),
        ];
        for (family, dense) in families {
            let encoded = encode_all(&dense);
            let mut rng = StdRng::seed_from_u64(7);
            let x: Vec<f32> = (0..cols_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
            let xs: Vec<f32> = (0..cols_dim * LANES)
                .map(|_| rng.gen_f32() * 2.0 - 1.0)
                .collect();
            let mut y = vec![0.0f32; rows_dim];
            let mut ys = vec![0.0f32; rows_dim * LANES];

            for prec in [Precision::F32, Precision::F16, Precision::Int8] {
                for m in &encoded {
                    let bytes = m.bytes(prec);
                    let us = time_us(scale(200), || m.spmv(prec, &x, &mut y));
                    rows.push(Row {
                        family,
                        kernel: "spmv",
                        format: m.tag(),
                        compression: rate,
                        precision: prec.tag(),
                        bytes,
                        us,
                    });
                    let us = time_us(scale(40), || m.spmm(prec, &xs, LANES, &mut ys));
                    rows.push(Row {
                        family,
                        kernel: "spmm",
                        format: m.tag(),
                        compression: rate,
                        precision: prec.tag(),
                        bytes,
                        us,
                    });
                }
            }
            eprintln!("[{rate:>4}x] {family} family done");
        }
    }

    let us_of = |family: &str, kernel: &str, format: &str, rate: f64, prec: &str| -> Option<f64> {
        rows.iter()
            .find(|r| {
                r.family == family
                    && r.kernel == kernel
                    && r.format == format
                    && r.compression == rate
                    && r.precision == prec
            })
            .map(|r| r.us)
    };

    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            json_row(&[
                ("family", JsonValue::Str(r.family.into())),
                ("kernel", JsonValue::Str(r.kernel.into())),
                ("format", JsonValue::Str(r.format.into())),
                ("compression", JsonValue::Raw(r.compression.to_string())),
                ("precision", JsonValue::Str(r.precision.into())),
                ("bytes", JsonValue::Int(r.bytes as i64)),
                ("us", JsonValue::F64(r.us, 3)),
            ])
        })
        .collect();

    let mut speedups: Vec<String> = Vec::new();
    for family in ["bsp", "unstructured"] {
        for kernel in ["spmv", "spmm"] {
            for &rate in compressions {
                for prec in ["f32", "f16", "int8"] {
                    let Some(bspc_us) = us_of(family, kernel, "bspc", rate, prec) else {
                        continue;
                    };
                    let ratio = |fmt: &str| {
                        us_of(family, kernel, fmt, rate, prec)
                            .map(|us| JsonValue::F64(bspc_us / us, 3))
                            .unwrap_or(JsonValue::Raw("null".into()))
                    };
                    speedups.push(json_row(&[
                        ("family", JsonValue::Str(family.into())),
                        ("kernel", JsonValue::Str(kernel.into())),
                        ("compression", JsonValue::Raw(rate.to_string())),
                        ("precision", JsonValue::Str(prec.into())),
                        ("csr_over_bspc", ratio("csr")),
                        ("bbs_over_bspc", ratio("bbs")),
                        ("csb_over_bspc", ratio("csb")),
                    ]));
                }
            }
        }
    }

    // The real per-layer selector over a reference two-layer BiGRU: layer 0
    // BSP-pruned (BSPC's home turf), layer 1 unstructured-pruned (where the
    // nnz-exact formats win). `auto` = per-layer minimum over the candidate
    // set (which includes BSPC), so sum(auto) <= sum(bspc) by construction
    // in the same sweep.
    let tuner_rate = *compressions.last().expect("at least one rate");
    let layers = [
        (
            "bigru_l0_bsp",
            bsp_matrix(rows_dim, cols_dim, STRIPES, BLOCKS, tuner_rate, 17),
        ),
        (
            "bigru_l1_unstructured",
            unstructured_matrix(rows_dim, cols_dim, tuner_rate, 18),
        ),
    ];
    let candidates = [
        StorageFormat::Bspc,
        StorageFormat::Csr,
        StorageFormat::Bbs,
        StorageFormat::Csb,
    ];
    let mut tuner_rows: Vec<String> = Vec::new();
    let mut auto_total = 0.0f64;
    let mut bspc_total = 0.0f64;
    for (name, w) in &layers {
        let costs = rtm_compiler::tuner::measure_format_costs(
            w,
            &candidates,
            Precision::F16,
            STRIPES,
            BLOCKS,
            LANES,
            scale(20),
        );
        let winner = rtm_compiler::tuner::select_format(&costs);
        let us = |f: StorageFormat| {
            costs
                .iter()
                .find(|c| c.format == f)
                .map(|c| c.seconds * 1e6)
                .unwrap_or(f64::NAN)
        };
        let best = costs
            .iter()
            .filter(|c| c.seconds.is_finite())
            .map(|c| c.seconds * 1e6)
            .fold(f64::INFINITY, f64::min);
        auto_total += best;
        bspc_total += us(StorageFormat::Bspc);
        tuner_rows.push(json_row(&[
            ("layer", JsonValue::Str((*name).into())),
            ("compression", JsonValue::Raw(tuner_rate.to_string())),
            ("precision", JsonValue::Str("f16".into())),
            (
                "winner",
                JsonValue::Str(format!("{winner:?}").to_lowercase()),
            ),
            ("bspc_us", JsonValue::F64(us(StorageFormat::Bspc), 3)),
            ("csr_us", JsonValue::F64(us(StorageFormat::Csr), 3)),
            ("bbs_us", JsonValue::F64(us(StorageFormat::Bbs), 3)),
            ("csb_us", JsonValue::F64(us(StorageFormat::Csb), 3)),
        ]));
    }
    tuner_rows.push(json_row(&[
        ("layer", JsonValue::Str("total".into())),
        ("auto_us", JsonValue::F64(auto_total, 3)),
        ("all_bspc_us", JsonValue::F64(bspc_total, 3)),
        (
            "auto_over_bspc",
            JsonValue::F64(bspc_total / auto_total.max(f64::MIN_POSITIVE), 3),
        ),
    ]));
    eprintln!(
        "tuner: auto {auto_total:.1} us vs all-BSPC {bspc_total:.1} us over {} layers",
        layers.len()
    );

    emit_bench_report(
        "format_zoo",
        quick,
        &[
            (
                "matrix",
                JsonValue::Raw(format!(
                    "{{\"rows\": {rows_dim}, \"cols\": {cols_dim}, \
                     \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}, \"lanes\": {LANES}}}"
                )),
            ),
            (
                "vector_isa",
                JsonValue::Str(rtm_tensor::simd::vector_isa().into()),
            ),
            (
                "notes",
                JsonValue::Str(
                    "Single-thread, Auto SIMD policy, precision-dispatched serial entry \
                     points (what the compiled runtime calls). Both families hold nnz at \
                     1/compression of the dense size; `bsp` shares kept columns per \
                     stripe (BSPC's design target), `unstructured` survives columns per \
                     row at random, so the stripe-union makes BSPC store near-dense. \
                     speedup = bspc time / format time; above 1 the zoo wins at equal \
                     compression. tuner = the pipeline's per-layer selector at f16 over \
                     a reference BiGRU, batched at 8 lanes."
                        .into(),
                ),
            ),
        ],
        &[
            ("results", rendered),
            ("speedups", speedups),
            ("tuner", tuner_rows),
        ],
    );
}
