//! Parallel SpMV benchmark: threads × sparsity × format sweep.
//!
//! Writes `BENCH_parallel_spmv.json` at the repository root. Two speedup
//! figures are reported per configuration:
//!
//! * `speedup_wall` — serial wall time / parallel wall time. Only
//!   meaningful when the host actually has multiple cores; CI containers
//!   for this repo are often pinned to a single core, where parallel wall
//!   time can't beat serial.
//! * `speedup_critical_path` — serial wall time / (slowest chunk's busy
//!   time). Each chunk kernel is timed in isolation on the real data, so
//!   this measures what the engine's load balancing achieves when every
//!   chunk runs on its own core — the engine-quality metric the reorder
//!   machinery targets (§IV-B-a). `speedup` aliases this field.
//!
//! Dependency-free: std + workspace crates only.

use rtm_exec::{bspc_rows_into, csr_rows_into, dense_rows_into, Executor, Partition};
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::rng::StdRng;
use rtm_tensor::Matrix;
use std::fmt::Write as _;
use std::time::Instant;

const ROWS: usize = 1024;
const COLS: usize = 1024;
const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const COMPRESSIONS: [f64; 2] = [2.5, 10.0];

/// BSP-patterned dense matrix: every row kept, `1/rate` of each stripe's
/// columns kept (per-stripe random choice), nonzero uniform values.
fn bsp_matrix(rate: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let stripe_h = ROWS.div_ceil(STRIPES);
    let block_w = COLS.div_ceil(BLOCKS);
    let mut col_kept = vec![false; STRIPES * COLS];
    for s in 0..STRIPES {
        for b in 0..BLOCKS {
            let c0 = b * block_w;
            let c1 = ((b + 1) * block_w).min(COLS);
            let width = c1 - c0;
            let keep = ((width as f64 / rate).round() as usize).clamp(1, width);
            let mut chosen: Vec<usize> = (c0..c1).collect();
            for i in 0..keep {
                let j = rng.gen_range(i..chosen.len());
                chosen.swap(i, j);
            }
            for &c in &chosen[..keep] {
                col_kept[s * COLS + c] = true;
            }
        }
    }
    Matrix::from_fn(ROWS, COLS, |r, c| {
        let s = (r / stripe_h).min(STRIPES - 1);
        if col_kept[s * COLS + c] {
            0.05 + (((r * 31 + c * 17) % 97) as f32) / 100.0
        } else {
            0.0
        }
    })
}

fn time_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    // Warm-up, then best-of-5 batches: the minimum per-iteration time is
    // the standard scheduler-jitter-resistant microbenchmark estimator
    // (crucial on a shared single-core CI host).
    f();
    let reps = 5usize;
    let per = iters.div_ceil(reps).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..per {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / per as f64);
    }
    best
}

struct Row {
    format: &'static str,
    compression: f64,
    threads: usize,
    chunks: usize,
    imbalance: f64,
    serial_us: f64,
    wall_us: f64,
    critical_path_us: f64,
}

impl Row {
    fn speedup_wall(&self) -> f64 {
        self.serial_us / self.wall_us
    }
    fn speedup_critical(&self) -> f64 {
        self.serial_us / self.critical_path_us
    }
}

/// Times each chunk's kernel in isolation and returns the slowest (the
/// parallel critical path, free of single-core scheduling interference).
fn critical_path_us(partition: &Partition, iters: usize, mut run_chunk: impl FnMut(usize)) -> f64 {
    let mut worst = 0.0f64;
    for (i, _) in partition.chunks().iter().enumerate() {
        let us = time_us(iters, || run_chunk(i));
        worst = worst.max(us);
    }
    worst
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    for &rate in &COMPRESSIONS {
        let dense = bsp_matrix(rate, 42);
        let bspc = BspcMatrix::from_dense(&dense, STRIPES, BLOCKS).expect("valid partition");
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f32> = (0..COLS).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let mut y = vec![0.0f32; ROWS];

        let sparse_iters = 100usize;
        let dense_iters = 10usize;

        let bspc_serial = time_us(sparse_iters, || {
            bspc.spmv_into(&x, &mut y).expect("shapes match");
        });
        let csr_serial = time_us(sparse_iters, || {
            csr.spmv_into(&x, &mut y).expect("shapes match");
        });
        let dense_serial = time_us(dense_iters, || {
            dense_rows_into(&dense, &x, 0..ROWS, &mut y, 0);
        });
        eprintln!(
            "[{rate:>4}x] serial us: bspc {bspc_serial:.1} csr {csr_serial:.1} dense {dense_serial:.1}"
        );

        for &threads in &THREADS {
            let exec = Executor::new(threads);

            // BSPC.
            let wall = time_us(sparse_iters, || {
                exec.spmv_bspc_into(&bspc, &x, &mut y)
                    .expect("shapes match");
            });
            let part = exec.partition_bspc(&bspc);
            let kept = bspc.kept_rows().to_vec();
            let cp = critical_path_us(&part, sparse_iters, |i| {
                let c = &part.chunks()[i];
                let base = kept[c.start] as usize;
                bspc_rows_into(&bspc, &x, c.start..c.end, &mut y[base..], base);
            });
            rows.push(Row {
                format: "bspc",
                compression: rate,
                threads,
                chunks: part.len(),
                imbalance: part.imbalance(),
                serial_us: bspc_serial,
                wall_us: wall,
                critical_path_us: cp,
            });

            // CSR.
            let wall = time_us(sparse_iters, || {
                exec.spmv_csr_into(&csr, &x, &mut y).expect("shapes match");
            });
            let part = exec.partition_csr(&csr);
            let cp = critical_path_us(&part, sparse_iters, |i| {
                let c = &part.chunks()[i];
                csr_rows_into(&csr, &x, c.start..c.end, &mut y[c.start..], c.start);
            });
            rows.push(Row {
                format: "csr",
                compression: rate,
                threads,
                chunks: part.len(),
                imbalance: part.imbalance(),
                serial_us: csr_serial,
                wall_us: wall,
                critical_path_us: cp,
            });

            // Dense (compression applies only to the sparse formats; the
            // dense kernel is the same matrix with explicit zeros).
            let wall = time_us(dense_iters, || {
                exec.gemv_dense_into(&dense, &x, &mut y)
                    .expect("shapes match");
            });
            let costs = vec![COLS; ROWS];
            let part = Partition::balanced(&costs, threads);
            let cp = critical_path_us(&part, dense_iters, |i| {
                let c = &part.chunks()[i];
                dense_rows_into(&dense, &x, c.start..c.end, &mut y[c.start..], c.start);
            });
            rows.push(Row {
                format: "dense",
                compression: rate,
                threads,
                chunks: part.len(),
                imbalance: part.imbalance(),
                serial_us: dense_serial,
                wall_us: wall,
                critical_path_us: cp,
            });

            eprintln!("[{rate:>4}x] threads {threads} done");
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_spmv\",\n");
    let _ = writeln!(
        json,
        "  \"matrix\": {{\"rows\": {ROWS}, \"cols\": {COLS}, \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}}},"
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str(
        "  \"speedup_definition\": \"speedup = speedup_critical_path = serial_us / max \
         per-chunk busy time, measured per chunk in isolation; speedup_wall is raw wall-clock \
         and is core-count-bound on this host\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"format\": \"{}\", \"compression\": {}, \"threads\": {}, \"chunks\": {}, \
             \"imbalance\": {:.4}, \"serial_us\": {:.2}, \"wall_us\": {:.2}, \
             \"critical_path_us\": {:.2}, \"speedup_wall\": {:.3}, \
             \"speedup_critical_path\": {:.3}, \"speedup\": {:.3}}}",
            r.format,
            r.compression,
            r.threads,
            r.chunks,
            r.imbalance,
            r.serial_us,
            r.wall_us,
            r.critical_path_us,
            r.speedup_wall(),
            r.speedup_critical(),
            r.speedup_critical(),
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_parallel_spmv.json", &json).expect("write benchmark report");
    println!("{json}");
}
