//! Parallel SpMV benchmark: threads × sparsity × format sweep.
//!
//! Writes `BENCH_parallel_spmv.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). Two speedup figures are reported per configuration:
//!
//! * `speedup_wall` — serial wall time / parallel wall time. Only
//!   meaningful when the host actually has multiple cores; CI containers
//!   for this repo are often pinned to a single core, where parallel wall
//!   time can't beat serial.
//! * `speedup_critical_path` — serial wall time / (slowest chunk's busy
//!   time). Each chunk kernel is timed in isolation on the real data, so
//!   this measures what the engine's load balancing achieves when every
//!   chunk runs on its own core — the engine-quality metric the reorder
//!   machinery targets (§IV-B-a). `speedup` aliases this field.
//!
//! Dependency-free: std + workspace crates only.

use rtm_bench::{bsp_matrix, emit_bench_report, json_row, quick_requested, time_us, JsonValue};
use rtm_exec::{bspc_rows_into, csr_rows_into, dense_rows_into, Executor, Partition};
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::rng::StdRng;

const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    format: &'static str,
    compression: f64,
    threads: usize,
    chunks: usize,
    imbalance: f64,
    serial_us: f64,
    wall_us: f64,
    critical_path_us: f64,
}

impl Row {
    fn speedup_wall(&self) -> f64 {
        self.serial_us / self.wall_us
    }
    fn speedup_critical(&self) -> f64 {
        self.serial_us / self.critical_path_us
    }
}

/// Times each chunk's kernel in isolation and returns the slowest (the
/// parallel critical path, free of single-core scheduling interference).
fn critical_path_us(partition: &Partition, iters: usize, mut run_chunk: impl FnMut(usize)) -> f64 {
    let mut worst = 0.0f64;
    for (i, _) in partition.chunks().iter().enumerate() {
        let us = time_us(iters, || run_chunk(i));
        worst = worst.max(us);
    }
    worst
}

fn main() {
    let quick = quick_requested();
    let (rows_dim, cols_dim) = if quick { (64, 64) } else { (1024, 1024) };
    let compressions: &[f64] = if quick { &[2.5] } else { &[2.5, 10.0] };
    let (sparse_iters, dense_iters) = if quick { (1, 1) } else { (100, 10) };

    let mut rows: Vec<Row> = Vec::new();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    for &rate in compressions {
        let dense = bsp_matrix(rows_dim, cols_dim, STRIPES, BLOCKS, rate, 42);
        let bspc = BspcMatrix::from_dense(&dense, STRIPES, BLOCKS).expect("valid partition");
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f32> = (0..cols_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let mut y = vec![0.0f32; rows_dim];

        let bspc_serial = time_us(sparse_iters, || {
            bspc.spmv_into(&x, &mut y).expect("shapes match");
        });
        let csr_serial = time_us(sparse_iters, || {
            csr.spmv_into(&x, &mut y).expect("shapes match");
        });
        let dense_serial = time_us(dense_iters, || {
            dense_rows_into(&dense, &x, 0..rows_dim, &mut y, 0);
        });
        eprintln!(
            "[{rate:>4}x] serial us: bspc {bspc_serial:.1} csr {csr_serial:.1} dense {dense_serial:.1}"
        );

        for &threads in &THREADS {
            let exec = Executor::new(threads);

            // BSPC.
            let wall = time_us(sparse_iters, || {
                exec.spmv_bspc_into(&bspc, &x, &mut y)
                    .expect("shapes match");
            });
            let part = exec.partition_bspc(&bspc);
            let kept = bspc.kept_rows().to_vec();
            let cp = critical_path_us(&part, sparse_iters, |i| {
                let c = &part.chunks()[i];
                let base = kept[c.start] as usize;
                bspc_rows_into(&bspc, &x, c.start..c.end, &mut y[base..], base);
            });
            rows.push(Row {
                format: "bspc",
                compression: rate,
                threads,
                chunks: part.len(),
                imbalance: part.imbalance(),
                serial_us: bspc_serial,
                wall_us: wall,
                critical_path_us: cp,
            });

            // CSR.
            let wall = time_us(sparse_iters, || {
                exec.spmv_csr_into(&csr, &x, &mut y).expect("shapes match");
            });
            let part = exec.partition_csr(&csr);
            let cp = critical_path_us(&part, sparse_iters, |i| {
                let c = &part.chunks()[i];
                csr_rows_into(&csr, &x, c.start..c.end, &mut y[c.start..], c.start);
            });
            rows.push(Row {
                format: "csr",
                compression: rate,
                threads,
                chunks: part.len(),
                imbalance: part.imbalance(),
                serial_us: csr_serial,
                wall_us: wall,
                critical_path_us: cp,
            });

            // Dense (compression applies only to the sparse formats; the
            // dense kernel is the same matrix with explicit zeros).
            let wall = time_us(dense_iters, || {
                exec.gemv_dense_into(&dense, &x, &mut y)
                    .expect("shapes match");
            });
            let costs = vec![cols_dim; rows_dim];
            let part = Partition::balanced(&costs, threads);
            let cp = critical_path_us(&part, dense_iters, |i| {
                let c = &part.chunks()[i];
                dense_rows_into(&dense, &x, c.start..c.end, &mut y[c.start..], c.start);
            });
            rows.push(Row {
                format: "dense",
                compression: rate,
                threads,
                chunks: part.len(),
                imbalance: part.imbalance(),
                serial_us: dense_serial,
                wall_us: wall,
                critical_path_us: cp,
            });

            eprintln!("[{rate:>4}x] threads {threads} done");
        }
    }

    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            json_row(&[
                ("format", JsonValue::Str(r.format.into())),
                ("compression", JsonValue::Raw(r.compression.to_string())),
                ("threads", JsonValue::Int(r.threads as i64)),
                ("chunks", JsonValue::Int(r.chunks as i64)),
                ("imbalance", JsonValue::F64(r.imbalance, 4)),
                ("serial_us", JsonValue::F64(r.serial_us, 2)),
                ("wall_us", JsonValue::F64(r.wall_us, 2)),
                ("critical_path_us", JsonValue::F64(r.critical_path_us, 2)),
                ("speedup_wall", JsonValue::F64(r.speedup_wall(), 3)),
                (
                    "speedup_critical_path",
                    JsonValue::F64(r.speedup_critical(), 3),
                ),
                ("speedup", JsonValue::F64(r.speedup_critical(), 3)),
            ])
        })
        .collect();

    emit_bench_report(
        "parallel_spmv",
        quick,
        &[
            (
                "matrix",
                JsonValue::Raw(format!(
                    "{{\"rows\": {rows_dim}, \"cols\": {cols_dim}, \
                     \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}}}"
                )),
            ),
            ("host_cpus", JsonValue::Int(host_cpus as i64)),
            (
                "speedup_definition",
                JsonValue::Str(
                    "speedup = speedup_critical_path = serial_us / max per-chunk busy time, \
                     measured per chunk in isolation; speedup_wall is raw wall-clock and is \
                     core-count-bound on this host"
                        .into(),
                ),
            ),
        ],
        &[("results", rendered)],
    );
}
