//! Hot-swap benchmark: what a model republish costs the streams it lands on.
//!
//! Writes `BENCH_reload.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). The question the artifact answers is DESIGN.md §15's
//! zero-downtime claim: republishing a v5 bundle under `rtm serve
//! --reload` must swap generations **without dropping a single stream or
//! violating the real-time frame budget**, and every stream must stay
//! bit-identical to a serial forward on whichever generation admitted it.
//!
//! Method: paced loopback clients (one frame per 10 ms hop, as in
//! `serve_load`) replay seeded synthetic utterances back to back while
//! the bench publishes a retrained bundle mid-run via the crash-safe
//! writer (temp file + fsync + atomic rename). Three numbers fall out:
//!
//! * **swap latency** — atomic rename to the `serve.generation` gauge
//!   reading the new generation (detection poll + load + checksum and
//!   finiteness validation + canary forward pass + promotion);
//! * **frames at risk** — frames whose round trip overlapped that
//!   window, with their own p99 against the steady-state p99 (the
//!   swap happens on the serve thread, so validation is the only work
//!   that could stretch a frame);
//! * **per-generation bit-identity** — each stream's logits must match
//!   a serial forward on exactly one of the two generations (in-flight
//!   streams finish on the old one, later admissions ride the new one).
//!
//! Dependency-free: std + workspace crates only.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rtm_bench::{emit_bench_report, json_row, quick_requested, JsonValue};
use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_tensor::Matrix;
use rtm_trace::key;
use rtmobile::bundle;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use rtmobile::{
    BundleMeta, CompiledBundle, ReloadConfig, RuntimeConfig, ServeOptions, Server, StreamClient,
    TraceConfig,
};

const STRIPES: usize = 4;
const BLOCKS: usize = 4;
/// Keep one weight in 10 — the paper's ~10× compression point.
const RATE: usize = 10;
/// Real-time speech frame hop: 10 ms, i.e. 100 frames per second.
const PACE_US: u64 = 10_000;

/// Zeroes a weight matrix down to a BSP pattern (same scheme as
/// `serve_load`): every row kept, one in `RATE` columns kept per stripe.
fn sparsify(m: &Matrix) -> Matrix {
    let stripe_h = m.rows().div_ceil(STRIPES);
    Matrix::from_fn(m.rows(), m.cols(), |r, c| {
        let s = r / stripe_h;
        if (c + s).is_multiple_of(RATE) {
            m[(r, c)]
        } else {
            0.0
        }
    })
}

/// Trains nothing: the "retrained" generation is the same architecture
/// re-seeded, which is exactly what the swap machinery sees in the field
/// (same dims, different weights).
fn compiled(input_dim: usize, hidden: usize, classes: usize, seed: u64) -> CompiledNetwork {
    let mut net = GruNetwork::new(
        &NetworkConfig {
            input_dim,
            hidden_dims: vec![hidden, hidden],
            num_classes: classes,
        },
        seed,
    );
    for layer in &mut net.layers {
        layer.w_z = sparsify(&layer.w_z);
        layer.u_z = sparsify(&layer.u_z);
        layer.w_r = sparsify(&layer.w_r);
        layer.u_r = sparsify(&layer.u_r);
        layer.w_n = sparsify(&layer.w_n);
        layer.u_n = sparsify(&layer.u_n);
    }
    CompiledNetwork::compile(&net, STRIPES, BLOCKS, RuntimePrecision::F16).expect("valid BSP")
}

/// Seeded synthetic utterance `idx`: deterministic so serial references
/// can be recomputed for the bit-identity check.
fn utterance(idx: usize, frames: usize, input_dim: usize) -> Vec<Vec<f32>> {
    (0..frames)
        .map(|t| {
            (0..input_dim)
                .map(|i| {
                    let x = (idx * 131 + t * 17 + i) as f32;
                    (x * 0.37 + 0.11).sin() * 0.5
                })
                .collect()
        })
        .collect()
}

/// What one replayed stream observed, measured at the client.
struct StreamOutcome {
    idx: usize,
    logits: Vec<Vec<f32>>,
    /// (send instant, round trip µs) per steady-state frame.
    rtts: Vec<(Instant, f64)>,
}

/// Replays one utterance, closed-loop, pacing frames at the real-time
/// rate relative to its own admission.
fn replay_stream(addr: SocketAddr, idx: usize, frames: &[Vec<f32>]) -> StreamOutcome {
    let pace = Duration::from_micros(PACE_US);
    let mut client = StreamClient::connect(addr).expect("connect");
    client.start(idx as u32).expect("start");
    let mut logits = Vec::with_capacity(frames.len());
    logits.push(client.infer(&frames[0]).expect("first frame"));
    let mut rtts = Vec::with_capacity(frames.len() - 1);
    let base = Instant::now();
    for (t, frame) in frames.iter().enumerate().skip(1) {
        let due = base + pace * (t as u32);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sent = Instant::now();
        logits.push(client.infer(frame).expect("infer"));
        rtts.push((sent, sent.elapsed().as_secs_f64() * 1e6));
    }
    let served = client.finish().expect("finish");
    assert_eq!(served as usize, frames.len(), "server frame count");
    StreamOutcome { idx, logits, rtts }
}

/// Exact quantile of a sorted sample set (rank `⌈q·n⌉`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Polls the `serve.generation` gauge until it reads `want`; returns the
/// wait. The gauge is set by the serve loop at promotion, so this is the
/// rename→swap window as the server itself experienced it.
fn await_generation(want: f64, deadline: Duration) -> Duration {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if rtm_trace::global().gauge(key::SERVE_GENERATION) == Some(want) {
            return start.elapsed();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    panic!("generation gauge never reached {want}");
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = quick_requested();
    let (input_dim, hidden, classes, streams, frames_per_stream, capacity, workers) = if quick {
        (13, 16, 8, 8, 24, 8, 4)
    } else {
        (13, 64, 39, 48, 100, 32, 12)
    };

    let old = compiled(input_dim, hidden, classes, 2026);
    let new = compiled(input_dim, hidden, classes, 2027);
    let utterances: Vec<Vec<Vec<f32>>> = (0..streams)
        .map(|s| utterance(s, frames_per_stream, input_dim))
        .collect();
    let serial_old: Vec<Vec<Vec<f32>>> = utterances.iter().map(|u| old.forward(u)).collect();
    let serial_new: Vec<Vec<Vec<f32>>> = utterances.iter().map(|u| new.forward(u)).collect();

    let dir = std::env::temp_dir().join(format!("rtm-reload-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.rtm");
    bundle::write(&path, &old, &BundleMeta::default().with_generation(1)).expect("publish gen 1");

    rtm_trace::global().reset();
    rtm_trace::set_config(TraceConfig::on());
    let config = RuntimeConfig::default().with_batch(capacity).with_serve(
        ServeOptions::default()
            .with_max_conns(workers + 8)
            .with_max_streams(streams),
    );
    let reload = ReloadConfig::default().with_poll_ms(2);

    let stop = AtomicBool::new(false);
    let (stats, reload_stats, outcomes, swap, publish_at) = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let (stop, config, reload, path) = (&stop, &config, reload, path.as_path());
        let server = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let bundle = CompiledBundle::load(path).expect("load bundle");
            let mut server = Server::bind_bundle(bundle, &exec, config).expect("bind");
            server.enable_reload(path.to_path_buf(), reload);
            tx.send(server.local_addr()).expect("addr handoff");
            let stats = server.run_until(stop).expect("serve");
            (stats, server.reload_stats())
        });
        let addr = rx.recv().expect("server bound");

        let utts = &utterances;
        let clients: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_micros(
                        PACE_US * w as u64 / workers.max(1) as u64,
                    ));
                    (w..utts.len())
                        .step_by(workers)
                        .map(|k| replay_stream(addr, k, &utts[k]))
                        .collect::<Vec<StreamOutcome>>()
                })
            })
            .collect();

        // Publish the retrained generation once the load is mid-flight:
        // a third of the way through one stream replay.
        std::thread::sleep(Duration::from_micros(
            PACE_US * frames_per_stream as u64 / 3,
        ));
        bundle::write(path, &new, &BundleMeta::default().with_generation(2))
            .expect("publish gen 2");
        let publish_at = Instant::now();
        let swap = await_generation(2.0, Duration::from_secs(10));

        let mut outcomes: Vec<StreamOutcome> = Vec::with_capacity(utts.len());
        for handle in clients {
            outcomes.extend(handle.join().expect("client worker"));
        }
        stop.store(true, Ordering::Relaxed);
        let (stats, reload_stats) = server.join().expect("server thread");
        (stats, reload_stats, outcomes, swap, publish_at)
    });
    let _ = std::fs::remove_dir_all(&dir);

    // Per-generation bit-identity: every stream matches a serial forward
    // on exactly one generation, end to end — the swap never leaks mixed
    // generations into a stream.
    let same = |a: &[Vec<f32>], b: &[Vec<f32>]| {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()))
    };
    let (mut on_old, mut on_new) = (0usize, 0usize);
    for out in &outcomes {
        if same(&out.logits, &serial_old[out.idx]) {
            on_old += 1;
        } else if same(&out.logits, &serial_new[out.idx]) {
            on_new += 1;
        } else {
            panic!("stream {} matches neither generation bit-exactly", out.idx);
        }
    }
    assert_eq!(outcomes.len(), streams, "every stream must finish");
    assert_eq!(stats.completed, streams, "zero dropped streams");
    assert!(on_new > 0, "no stream ever reached the new generation");
    assert_eq!(reload_stats.successes, 1, "exactly one swap");
    assert_eq!(reload_stats.rollbacks, 0, "no rollback expected");
    assert_eq!(reload_stats.generation, 2, "serving the new generation");

    let swap_window = (publish_at, publish_at + swap);
    let mut all: Vec<f64> = Vec::new();
    let mut at_risk: Vec<f64> = Vec::new();
    for out in &outcomes {
        for &(sent, us) in &out.rtts {
            all.push(us);
            if sent >= swap_window.0 && sent <= swap_window.1 {
                at_risk.push(us);
            }
        }
    }
    all.sort_by(f64::total_cmp);
    at_risk.sort_by(f64::total_cmp);

    let swap_ms = swap.as_secs_f64() * 1e3;
    eprintln!(
        "swap latency {swap_ms:.1} ms (rename -> generation gauge); {} streams ({on_old} old gen, \
         {on_new} new gen), {} frames, {} at risk during the swap; rtt p99 {:.0} us overall, \
         {:.0} us at risk",
        streams,
        all.len() + streams,
        at_risk.len(),
        percentile(&all, 0.99),
        percentile(&at_risk, 0.99),
    );

    let rows = vec![json_row(&[
        ("streams", JsonValue::Int(streams as i64)),
        (
            "frames_per_stream",
            JsonValue::Int(frames_per_stream as i64),
        ),
        ("capacity", JsonValue::Int(capacity as i64)),
        ("client_workers", JsonValue::Int(workers as i64)),
        ("swap_latency_ms", JsonValue::F64(swap_ms, 2)),
        ("streams_on_old_generation", JsonValue::Int(on_old as i64)),
        ("streams_on_new_generation", JsonValue::Int(on_new as i64)),
        ("frames_at_risk", JsonValue::Int(at_risk.len() as i64)),
        (
            "frame_rtt_p50_us",
            JsonValue::F64(percentile(&all, 0.50), 0),
        ),
        (
            "frame_rtt_p99_us",
            JsonValue::F64(percentile(&all, 0.99), 0),
        ),
        (
            "at_risk_rtt_p99_us",
            JsonValue::F64(percentile(&at_risk, 0.99), 0),
        ),
        ("completed", JsonValue::Int(stats.completed as i64)),
        ("shed", JsonValue::Int(stats.shed as i64)),
        ("quarantined", JsonValue::Int(stats.quarantined as i64)),
        ("dropped_streams", JsonValue::Int(0)),
        (
            "reload_attempts",
            JsonValue::Int(reload_stats.attempts as i64),
        ),
        (
            "reload_successes",
            JsonValue::Int(reload_stats.successes as i64),
        ),
        (
            "reload_refusals",
            JsonValue::Int(reload_stats.refusals as i64),
        ),
        (
            "reload_rollbacks",
            JsonValue::Int(reload_stats.rollbacks as i64),
        ),
        ("generation", JsonValue::Int(reload_stats.generation as i64)),
    ])];

    emit_bench_report(
        "reload",
        quick,
        &[
            (
                "model",
                JsonValue::Raw(format!(
                    "{{\"input_dim\": {input_dim}, \"hidden\": [{hidden}, {hidden}], \
                     \"classes\": {classes}, \"compression\": {RATE}, \"precision\": \"f16\", \
                     \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}}}"
                )),
            ),
            (
                "host_cpus",
                JsonValue::Int(std::thread::available_parallelism().map_or(0, |n| n.get() as i64)),
            ),
            ("pace_us", JsonValue::Int(PACE_US as i64)),
            (
                "notes",
                JsonValue::Str(
                    "Paced loopback clients (100 fps per stream) replay seeded synthetic \
                     utterances while a retrained v5 bundle is atomically republished \
                     mid-run. swap_latency_ms spans the atomic rename to the \
                     serve.generation gauge flipping: detection poll, checksum + \
                     finiteness validation, canary forward pass, and promotion at the \
                     admission barrier. frames_at_risk counts round trips overlapping \
                     that window. Every stream is verified bit-identical to a serial \
                     forward on exactly one generation (in-flight streams finish on the \
                     old one) and zero streams are dropped (EXPERIMENTS.md Q4)."
                        .into(),
                ),
            ),
        ],
        &[("rows", rows)],
    );
}
