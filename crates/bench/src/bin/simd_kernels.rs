//! SIMD kernel benchmark: scalar-vs-vector speedups per format × compression.
//!
//! Writes `BENCH_simd_kernels.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). Every kernel in the `rtm_tensor::simd` dispatch layer is timed
//! single-threaded under each [`Variant`] by pinning the process-global
//! policy (`SimdPolicy::Fixed(variant)`) and then calling the *normal
//! dispatched entry points* — exactly what inference runs. The JSON records
//! both the requested variant and the variant that actually ran
//! (`active_variant`), because on a host without the vector ISA a `vector`
//! request honestly downgrades to `scalar-u8`.
//!
//! Sweep: dense gemv, BSPC `spmv_into` and CSR `spmv_into` on the
//! 1024×1024 BSP-patterned matrix at 2.5× and 10× compression, plus the
//! n=1024 micro-kernels (dot, axpy, sigmoid sweep). The headline
//! `speedups` section divides the scalar-u1 reference time by the vector
//! time per kernel × compression.
//!
//! Dependency-free: std + workspace crates only.

use rtm_bench::{bsp_matrix, emit_bench_report, json_row, quick_requested, time_us, JsonValue};
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::gemm;
use rtm_tensor::rng::StdRng;
use rtm_tensor::simd::{self, SimdPolicy, Variant};
use std::hint::black_box;

const STRIPES: usize = 8;
const BLOCKS: usize = 8;

struct Row {
    kernel: &'static str,
    compression: f64,
    requested: &'static str,
    ran: &'static str,
    us: f64,
}

fn main() {
    let quick = quick_requested();
    let (rows_dim, cols_dim) = if quick { (64, 64) } else { (1024, 1024) };
    let compressions: &[f64] = if quick { &[2.5] } else { &[2.5, 10.0] };
    let scale = |iters: usize| if quick { 1 } else { iters };

    let mut rows: Vec<Row> = Vec::new();

    // Micro-kernel operands (mixed-sign, the differential suite's regime).
    let mut rng = StdRng::seed_from_u64(3);
    let a: Vec<f32> = (0..cols_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let b: Vec<f32> = (0..cols_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();

    for &rate in compressions {
        let dense = bsp_matrix(rows_dim, cols_dim, STRIPES, BLOCKS, rate, 42);
        let bspc = BspcMatrix::from_dense(&dense, STRIPES, BLOCKS).expect("valid partition");
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f32> = (0..cols_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let mut y = vec![0.0f32; rows_dim];

        for &variant in &Variant::ALL {
            simd::set_policy(SimdPolicy::Fixed(variant));
            let requested = variant.name();
            let ran = simd::active_variant().name();

            let us = time_us(scale(20), || {
                gemm::gemv_into(&dense, &x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "dense_gemv",
                compression: rate,
                requested,
                ran,
                us,
            });

            let us = time_us(scale(200), || {
                bspc.spmv_into(&x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "bspc_spmv",
                compression: rate,
                requested,
                ran,
                us,
            });

            let us = time_us(scale(200), || {
                csr.spmv_into(&x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "csr_spmv",
                compression: rate,
                requested,
                ran,
                us,
            });
        }
        eprintln!("[{rate:>4}x] matrix kernels done");
    }

    // Size-independent micro-kernels (n = 1024), reported at compression 1.
    let mut acc = vec![0.0f32; cols_dim];
    let mut gates: Vec<f32> = a.clone();
    for &variant in &Variant::ALL {
        simd::set_policy(SimdPolicy::Fixed(variant));
        let requested = variant.name();
        let ran = simd::active_variant().name();

        let us = time_us(scale(2000), || {
            black_box(simd::dot(&a, &b));
        });
        rows.push(Row {
            kernel: "dot",
            compression: 1.0,
            requested,
            ran,
            us,
        });

        let us = time_us(scale(2000), || {
            simd::axpy(1e-3, &a, &mut acc);
        });
        rows.push(Row {
            kernel: "axpy",
            compression: 1.0,
            requested,
            ran,
            us,
        });

        let us = time_us(scale(500), || {
            simd::sigmoid_sweep(&mut gates);
        });
        rows.push(Row {
            kernel: "sigmoid_sweep",
            compression: 1.0,
            requested,
            ran,
            us,
        });
    }
    simd::set_policy(SimdPolicy::Auto);
    eprintln!("micro kernels done");

    let us_of = |kernel: &str, rate: f64, requested: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.kernel == kernel && r.compression == rate && r.requested == requested)
            .map(|r| r.us)
    };

    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            json_row(&[
                ("kernel", JsonValue::Str(r.kernel.into())),
                ("compression", JsonValue::Raw(r.compression.to_string())),
                ("variant_requested", JsonValue::Str(r.requested.into())),
                ("variant_ran", JsonValue::Str(r.ran.into())),
                ("us", JsonValue::F64(r.us, 3)),
            ])
        })
        .collect();

    let mut speedups: Vec<String> = Vec::new();
    for kernel in ["dense_gemv", "bspc_spmv", "csr_spmv", "dot", "axpy"] {
        let rates: &[f64] = if kernel == "dot" || kernel == "axpy" {
            &[1.0]
        } else {
            compressions
        };
        for &rate in rates {
            let (Some(u1), Some(vec_us)) = (
                us_of(kernel, rate, "scalar-u1"),
                us_of(kernel, rate, "vector"),
            ) else {
                continue;
            };
            let u8_us = us_of(kernel, rate, "scalar-u8").unwrap_or(u1);
            speedups.push(json_row(&[
                ("kernel", JsonValue::Str(kernel.into())),
                ("compression", JsonValue::Raw(rate.to_string())),
                ("vector_over_scalar_u1", JsonValue::F64(u1 / vec_us, 3)),
                ("vector_over_scalar_u8", JsonValue::F64(u8_us / vec_us, 3)),
            ]));
        }
    }

    emit_bench_report(
        "simd_kernels",
        quick,
        &[
            (
                "matrix",
                JsonValue::Raw(format!(
                    "{{\"rows\": {rows_dim}, \"cols\": {cols_dim}, \
                     \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}}}"
                )),
            ),
            ("vector_isa", JsonValue::Str(simd::vector_isa().into())),
            ("lane_width", JsonValue::Int(simd::lane_width() as i64)),
            (
                "notes",
                JsonValue::Str(
                    "Single-thread. Each variant is timed through the normal dispatched \
                     entry points with the global policy pinned; variant_ran records what \
                     actually executed (a vector request downgrades to scalar-u8 without \
                     the ISA). Sweeps apply the same scalar activation in every variant, \
                     so their variants only differ in loop structure. speedup = scalar-u1 \
                     time / vector time."
                        .into(),
                ),
            ),
        ],
        &[("results", rendered), ("speedups", speedups)],
    );
}
