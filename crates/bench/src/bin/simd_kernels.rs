//! SIMD kernel benchmark: scalar-vs-vector speedups per format × compression.
//!
//! Writes `BENCH_simd_kernels.json` at the repository root. Every kernel in
//! the `rtm_tensor::simd` dispatch layer is timed single-threaded under each
//! [`Variant`] by pinning the process-global policy
//! (`SimdPolicy::Fixed(variant)`) and then calling the *normal dispatched
//! entry points* — exactly what inference runs. The JSON records both the
//! requested variant and the variant that actually ran (`active_variant`),
//! because on a host without the vector ISA a `vector` request honestly
//! downgrades to `scalar-u8`.
//!
//! Sweep: dense gemv, BSPC `spmv_into` and CSR `spmv_into` on the
//! 1024×1024 BSP-patterned matrix at 2.5× and 10× compression, plus the
//! n=1024 micro-kernels (dot, axpy, sigmoid sweep). The headline
//! `speedups` section divides the scalar-u1 reference time by the vector
//! time per kernel × compression.
//!
//! Dependency-free: std + workspace crates only.

use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::rng::StdRng;
use rtm_tensor::simd::{self, SimdPolicy, Variant};
use rtm_tensor::{gemm, Matrix};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 1024;
const COLS: usize = 1024;
const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const COMPRESSIONS: [f64; 2] = [2.5, 10.0];

/// BSP-patterned dense matrix: every row kept, `1/rate` of each stripe's
/// columns kept (per-stripe random choice), nonzero uniform values.
fn bsp_matrix(rate: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let stripe_h = ROWS.div_ceil(STRIPES);
    let block_w = COLS.div_ceil(BLOCKS);
    let mut col_kept = vec![false; STRIPES * COLS];
    for s in 0..STRIPES {
        for b in 0..BLOCKS {
            let c0 = b * block_w;
            let c1 = ((b + 1) * block_w).min(COLS);
            let width = c1 - c0;
            let keep = ((width as f64 / rate).round() as usize).clamp(1, width);
            let mut chosen: Vec<usize> = (c0..c1).collect();
            for i in 0..keep {
                let j = rng.gen_range(i..chosen.len());
                chosen.swap(i, j);
            }
            for &c in &chosen[..keep] {
                col_kept[s * COLS + c] = true;
            }
        }
    }
    Matrix::from_fn(ROWS, COLS, |r, c| {
        let s = (r / stripe_h).min(STRIPES - 1);
        if col_kept[s * COLS + c] {
            0.05 + (((r * 31 + c * 17) % 97) as f32) / 100.0
        } else {
            0.0
        }
    })
}

fn time_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    // Warm-up, then best-of-5 batches: the minimum per-iteration time is
    // the standard scheduler-jitter-resistant microbenchmark estimator.
    f();
    let reps = 5usize;
    let per = iters.div_ceil(reps).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..per {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / per as f64);
    }
    best
}

struct Row {
    kernel: &'static str,
    compression: f64,
    requested: &'static str,
    ran: &'static str,
    us: f64,
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Micro-kernel operands (mixed-sign, the differential suite's regime).
    let mut rng = StdRng::seed_from_u64(3);
    let a: Vec<f32> = (0..COLS).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let b: Vec<f32> = (0..COLS).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();

    for &rate in &COMPRESSIONS {
        let dense = bsp_matrix(rate, 42);
        let bspc = BspcMatrix::from_dense(&dense, STRIPES, BLOCKS).expect("valid partition");
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f32> = (0..COLS).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let mut y = vec![0.0f32; ROWS];

        for &variant in &Variant::ALL {
            simd::set_policy(SimdPolicy::Fixed(variant));
            let requested = variant.name();
            let ran = simd::active_variant().name();

            let us = time_us(20, || {
                gemm::gemv_into(&dense, &x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "dense_gemv",
                compression: rate,
                requested,
                ran,
                us,
            });

            let us = time_us(200, || {
                bspc.spmv_into(&x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "bspc_spmv",
                compression: rate,
                requested,
                ran,
                us,
            });

            let us = time_us(200, || {
                csr.spmv_into(&x, &mut y).expect("shapes match");
            });
            rows.push(Row {
                kernel: "csr_spmv",
                compression: rate,
                requested,
                ran,
                us,
            });
        }
        eprintln!("[{rate:>4}x] matrix kernels done");
    }

    // Size-independent micro-kernels (n = 1024), reported at compression 1.
    let mut acc = vec![0.0f32; COLS];
    let mut gates: Vec<f32> = a.clone();
    for &variant in &Variant::ALL {
        simd::set_policy(SimdPolicy::Fixed(variant));
        let requested = variant.name();
        let ran = simd::active_variant().name();

        let us = time_us(2000, || {
            black_box(simd::dot(&a, &b));
        });
        rows.push(Row {
            kernel: "dot",
            compression: 1.0,
            requested,
            ran,
            us,
        });

        let us = time_us(2000, || {
            simd::axpy(1e-3, &a, &mut acc);
        });
        rows.push(Row {
            kernel: "axpy",
            compression: 1.0,
            requested,
            ran,
            us,
        });

        let us = time_us(500, || {
            simd::sigmoid_sweep(&mut gates);
        });
        rows.push(Row {
            kernel: "sigmoid_sweep",
            compression: 1.0,
            requested,
            ran,
            us,
        });
    }
    simd::set_policy(SimdPolicy::Auto);
    eprintln!("micro kernels done");

    let us_of = |kernel: &str, rate: f64, requested: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.kernel == kernel && r.compression == rate && r.requested == requested)
            .map(|r| r.us)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"simd_kernels\",\n");
    let _ = writeln!(
        json,
        "  \"matrix\": {{\"rows\": {ROWS}, \"cols\": {COLS}, \"stripes\": {STRIPES}, \"blocks\": {BLOCKS}}},"
    );
    let _ = writeln!(json, "  \"vector_isa\": \"{}\",", simd::vector_isa());
    let _ = writeln!(json, "  \"lane_width\": {},", simd::lane_width());
    json.push_str(
        "  \"notes\": \"Single-thread. Each variant is timed through the normal dispatched \
         entry points with the global policy pinned; variant_ran records what actually \
         executed (a vector request downgrades to scalar-u8 without the ISA). Sweeps apply \
         the same scalar activation in every variant, so their variants only differ in \
         loop structure. speedup = scalar-u1 time / vector time.\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"compression\": {}, \"variant_requested\": \"{}\", \
             \"variant_ran\": \"{}\", \"us\": {:.3}}}",
            r.kernel, r.compression, r.requested, r.ran, r.us,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedups\": [\n");
    let mut speedups: Vec<String> = Vec::new();
    for kernel in ["dense_gemv", "bspc_spmv", "csr_spmv", "dot", "axpy"] {
        let rates: &[f64] = if kernel == "dot" || kernel == "axpy" {
            &[1.0]
        } else {
            &COMPRESSIONS
        };
        for &rate in rates {
            let (Some(u1), Some(vec_us)) = (
                us_of(kernel, rate, "scalar-u1"),
                us_of(kernel, rate, "vector"),
            ) else {
                continue;
            };
            let u8_us = us_of(kernel, rate, "scalar-u8").unwrap_or(u1);
            speedups.push(format!(
                "    {{\"kernel\": \"{}\", \"compression\": {}, \
                 \"vector_over_scalar_u1\": {:.3}, \"vector_over_scalar_u8\": {:.3}}}",
                kernel,
                rate,
                u1 / vec_us,
                u8_us / vec_us,
            ));
        }
    }
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write("BENCH_simd_kernels.json", &json).expect("write benchmark report");
    println!("{json}");
}
