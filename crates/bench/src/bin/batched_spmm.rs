//! Batched SpMM benchmark: per-stream cost vs batch width.
//!
//! Writes `BENCH_batched_spmm.json` at the repository root (or under
//! `target/quick/` with `--quick`, which runs a tiny smoke configuration
//! for CI). The sweep is the multi-stream inference question: with `b`
//! independent input columns sharing one weight pass, how far does the
//! per-stream cost of a sparse matvec fall below running `b` serial SpMVs?
//!
//! For each format (BSPC, CSR, dense) × thread count {1, 4} × batch width
//! b ∈ {1, 2, 4, 8, 16}, the 1024×1024 BSP-patterned matrix at 10×
//! compression is applied to a lane-major `[cols × b]` input through the
//! parallel engine's SpMM path (`spmm_bspc_into` / `spmm_csr_into` /
//! `gemm_dense_into`). Reported per row:
//!
//! * `wall_us` — one batched pass over all `b` lanes;
//! * `per_stream_us` — `wall_us / b`, the effective per-utterance cost;
//! * `per_stream_speedup` — per-stream time at `b = 1` divided by
//!   `per_stream_us`: how much weight/index amortization buys. The weight
//!   values and index structure are walked once per row regardless of `b`,
//!   so this climbs toward the arithmetic-only limit as `b` grows.
//!
//! Batched results are bit-identical to per-lane serial SpMV (the engine's
//! lane contract), so these speedups come with no numerics caveat.
//!
//! Dependency-free: std + workspace crates only.

use rtm_bench::{bsp_matrix, emit_bench_report, json_row, quick_requested, time_us, JsonValue};
use rtm_exec::Executor;
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::rng::StdRng;

const STRIPES: usize = 8;
const BLOCKS: usize = 8;
const RATE: f64 = 10.0;
const BATCHES: [usize; 5] = [1, 2, 4, 8, 16];
const THREADS: [usize; 2] = [1, 4];

struct Row {
    format: &'static str,
    threads: usize,
    b: usize,
    wall_us: f64,
}

fn main() {
    let quick = quick_requested();
    let (rows_dim, cols_dim) = if quick { (64, 64) } else { (1024, 1024) };
    // Keep total work per timing roughly flat across batch widths.
    let iters = |b: usize| if quick { 1 } else { (160 / b).max(10) };
    let dense_iters = |b: usize| if quick { 1 } else { (16 / b).max(2) };

    let dense = bsp_matrix(rows_dim, cols_dim, STRIPES, BLOCKS, RATE, 42);
    let bspc = BspcMatrix::from_dense(&dense, STRIPES, BLOCKS).expect("valid partition");
    let csr = CsrMatrix::from_dense(&dense);

    let max_b = *BATCHES.last().expect("non-empty sweep");
    let mut rng = StdRng::seed_from_u64(7);
    let xs_all: Vec<f32> = (0..cols_dim * max_b)
        .map(|_| rng.gen_f32() * 2.0 - 1.0)
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &THREADS {
        let exec = Executor::new(threads);
        for &b in &BATCHES {
            let xs = &xs_all[..cols_dim * b];
            let mut ys = vec![0.0f32; rows_dim * b];

            let wall = time_us(iters(b), || {
                exec.spmm_bspc_into(&bspc, xs, b, &mut ys)
                    .expect("shapes match");
            });
            rows.push(Row {
                format: "bspc",
                threads,
                b,
                wall_us: wall,
            });

            let wall = time_us(iters(b), || {
                exec.spmm_csr_into(&csr, xs, b, &mut ys)
                    .expect("shapes match");
            });
            rows.push(Row {
                format: "csr",
                threads,
                b,
                wall_us: wall,
            });

            let wall = time_us(dense_iters(b), || {
                exec.gemm_dense_into(&dense, xs, b, &mut ys)
                    .expect("shapes match");
            });
            rows.push(Row {
                format: "dense",
                threads,
                b,
                wall_us: wall,
            });

            eprintln!("[threads {threads}] b {b:>2} done");
        }
    }

    let base_per_stream = |format: &str, threads: usize| -> f64 {
        rows.iter()
            .find(|r| r.format == format && r.threads == threads && r.b == 1)
            .map(|r| r.wall_us)
            .expect("b=1 row present")
    };

    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            let per_stream = r.wall_us / r.b as f64;
            let base = base_per_stream(r.format, r.threads);
            json_row(&[
                ("format", JsonValue::Str(r.format.into())),
                ("threads", JsonValue::Int(r.threads as i64)),
                ("b", JsonValue::Int(r.b as i64)),
                ("wall_us", JsonValue::F64(r.wall_us, 2)),
                ("per_stream_us", JsonValue::F64(per_stream, 2)),
                ("per_stream_speedup", JsonValue::F64(base / per_stream, 3)),
            ])
        })
        .collect();

    emit_bench_report(
        "batched_spmm",
        quick,
        &[
            (
                "matrix",
                JsonValue::Raw(format!(
                    "{{\"rows\": {rows_dim}, \"cols\": {cols_dim}, \"stripes\": {STRIPES}, \
                     \"blocks\": {BLOCKS}, \"compression\": {RATE}}}"
                )),
            ),
            (
                "host_cpus",
                JsonValue::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
            ),
            (
                "vector_isa",
                JsonValue::Str(rtm_tensor::simd::vector_isa().into()),
            ),
            (
                "notes",
                JsonValue::Str(
                    "Lane-major batched SpMM through the parallel engine; per_stream_us = \
                     wall_us / b, per_stream_speedup = per-stream time at b=1 / per-stream \
                     time at b. Weight values and index structure are read once per row \
                     regardless of b, so per-stream cost falls as the batch widens. Lane j \
                     of every result is bit-identical to the serial SpMV of input column j."
                        .into(),
                ),
            ),
        ],
        &[("results", rendered)],
    );
}
