//! Regenerates **Table I**: PER and compression of BSP at the paper's ten
//! `(column, row)` targets, plus the five baseline schemes.
//!
//! ```text
//! cargo run -p rtm-bench --bin table1 --release
//! ```
//!
//! One dense GRU is trained on the synthetic TIMIT-like task, then each
//! compression point starts from a fresh clone of it and runs the
//! corresponding pruning scheme with ADMM retraining. Columns mirror the
//! paper's: baseline/pruned PER, PER degradation, compression rate,
//! surviving parameters. Paper numbers are printed alongside for the shape
//! comparison (absolute PERs are task-specific; orderings and trends are
//! the reproduction target).
//!
//! Pass `--seeds N` to repeat the whole experiment over N corpus/model
//! seeds and report mean ± std PER per point — retraining a model this
//! small after aggressive pruning has real seed variance, and the
//! multi-seed view separates trend from noise (runtime scales with N).

use rtm_bench::{
    admm_config, rule, speech_task, write_csv, ACC_HIDDEN, DENSE_EPOCHS, DENSE_LR, SEED,
};
use std::sync::Mutex;

/// CSV rows mirroring the printed table (collected by [`print_row`]).
static CSV_ROWS: Mutex<Vec<String>> = Mutex::new(Vec::new());
use rtm_pruning::baselines;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::table1_targets;

fn main() {
    let seeds: usize = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--seeds")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    };
    if seeds > 1 {
        run_multi_seed(seeds);
        return;
    }
    let task = speech_task();
    println!("Training the dense baseline GRU (hidden {ACC_HIDDEN}, 2 layers)...");
    let mut dense = task.new_network(ACC_HIDDEN, SEED);
    let loss = task.train(&mut dense, DENSE_EPOCHS, DENSE_LR);
    let baseline = task.evaluate(&dense);
    println!(
        "Dense baseline: PER {:.2}%, frame accuracy {:.1}%, final loss {:.4}",
        baseline.per_percent(),
        100.0 * baseline.frame_accuracy(),
        loss
    );
    println!();

    let w = 118;
    println!("{}", rule(w));
    println!(
        "{:<30} {:>9} {:>9} {:>9} {:>10} {:>10} | {:>11} {:>12}",
        "Method", "PER base", "PER prun", "Degrad.", "Rate", "Params", "paper Degr.", "paper Rate"
    );
    println!("{}", rule(w));

    let data = task.training_data();
    let admm = admm_config();

    // --- BSP sweep (the paper's ten rows). ---
    for point in table1_targets() {
        let label = format!(
            "BSP (ours) {}x{}",
            point.target.col_rate, point.target.row_rate
        );
        if point.target.is_dense() {
            print_row(
                &label,
                baseline.per_percent(),
                baseline.per_percent(),
                1.0,
                dense.total_prunable_params(),
                point.paper_per_degradation,
                point.paper_overall,
            );
            continue;
        }
        let mut net = dense.clone();
        // Finer partition than the performance side: 8 stripes x 1 block
        // gives each stripe a free column selection — the accuracy end of
        // the tuner's accuracy/performance trade-off (§IV-B).
        let pruner = BspPruner::new(BspConfig {
            num_stripes: 8,
            num_blocks: 1,
            target: point.target,
            admm,
        });
        let report = pruner.prune(&mut net, &data);
        let eval = task.evaluate(&net);
        print_row(
            &label,
            baseline.per_percent(),
            eval.per_percent(),
            report.achieved_rate,
            report.kept_params,
            point.paper_per_degradation,
            point.paper_overall,
        );
    }
    println!("{}", rule(w));

    // --- Baselines (one row per comparison method of Table I). ---
    {
        let mut net = dense.clone();
        let r = baselines::prune_unstructured(&mut net, &data, 8.0, admm);
        let eval = task.evaluate(&net);
        print_row(
            "ESE (unstructured) 8x",
            baseline.per_percent(),
            eval.per_percent(),
            r.achieved_rate,
            r.kept_params,
            0.30,
            8.0,
        );
    }
    for block in [8usize, 16] {
        let mut net = dense.clone();
        let r = baselines::prune_block_circulant(&mut net, &data, block, admm);
        let eval = task.evaluate(&net);
        let (paper_degr, paper_rate) = if block == 8 {
            (0.42, 8.0)
        } else {
            (1.33, 16.0)
        };
        print_row(
            &format!("C-LSTM (circulant) {block}x"),
            baseline.per_percent(),
            eval.per_percent(),
            r.achieved_rate,
            r.kept_params,
            paper_degr,
            paper_rate,
        );
    }
    {
        let mut net = dense.clone();
        let r = baselines::prune_bank_balanced(&mut net, &data, 8.0, 4, admm);
        let eval = task.evaluate(&net);
        print_row(
            "BBS (bank-balanced) 8x",
            baseline.per_percent(),
            eval.per_percent(),
            r.achieved_rate,
            r.kept_params,
            0.25,
            8.0,
        );
    }
    {
        let mut net = dense.clone();
        let r = baselines::prune_column_row(&mut net, &data, 2.0, 2.0, admm);
        let eval = task.evaluate(&net);
        print_row(
            "Wang (col+row struct) 4x",
            baseline.per_percent(),
            eval.per_percent(),
            r.achieved_rate,
            r.kept_params,
            0.91,
            4.0,
        );
    }
    println!("{}", rule(w));

    // Capacity reference: a *dense* model with roughly the parameter budget
    // of the BSP 10x point, to separate capacity effects from
    // pruning-algorithm effects (the paper's 10x point keeps 0.96M of 9.6M
    // parameters — far above its task's capacity floor; ours is near it).
    {
        let narrow = {
            let mut n = task.new_network(30, SEED.wrapping_add(9));
            task.train(&mut n, DENSE_EPOCHS, DENSE_LR);
            n
        };
        let eval = task.evaluate(&narrow);
        println!(
            "{:<30} {:>8} {:>8.2}% {:>9} {:>10} {:>10} | (capacity reference)",
            "Dense h=30 (~BSP-10x params)",
            "-",
            eval.per_percent(),
            "-",
            "-",
            narrow.total_prunable_params(),
        );
    }
    println!("{}", rule(w));
    match write_csv(
        "table1",
        "method,per_baseline,per_pruned,degradation,achieved_rate,params_kept,paper_degradation,paper_rate",
        &CSV_ROWS.lock().expect("csv mutex"),
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!();
    println!("Shape expectations vs the paper (see EXPERIMENTS.md E1):");
    println!("  * BSP degradation ~0 up to ~10x and monotone-increasing with rate;");
    println!("  * at comparable rates BSP degrades less than the coarse structured schemes;");
    println!("  * absolute PERs are not comparable (synthetic corpus vs TIMIT).");
}

fn print_row(
    label: &str,
    per_base: f64,
    per_pruned: f64,
    rate: f64,
    params: usize,
    paper_degr: f64,
    paper_rate: f64,
) {
    println!(
        "{:<30} {:>8.2}% {:>8.2}% {:>8.2}p {:>9.1}x {:>10} | {:>10.2}p {:>11.0}x",
        label,
        per_base,
        per_pruned,
        per_pruned - per_base,
        rate,
        params,
        paper_degr,
        paper_rate
    );
    CSV_ROWS.lock().expect("csv mutex").push(format!(
        "{label},{per_base:.2},{per_pruned:.2},{:.2},{rate:.1},{params},{paper_degr:.2},{paper_rate:.0}",
        per_pruned - per_base
    ));
}

/// Repeats the BSP sweep over several seeds and prints mean ± std PER
/// degradation per compression point.
fn run_multi_seed(seeds: usize) {
    use rtm_speech::task::SpeechTask;
    println!("Multi-seed Table I: {seeds} corpus/model seeds (mean +/- std degradation)");
    let points = table1_targets();
    // degradations[point][seed]
    let mut degradations = vec![Vec::with_capacity(seeds); points.len()];
    for s in 0..seeds {
        let seed = SEED.wrapping_add(s as u64 * 101);
        let task = SpeechTask::new(&rtm_bench::corpus_config(), seed);
        let mut dense = task.new_network(ACC_HIDDEN, seed);
        task.train(&mut dense, DENSE_EPOCHS, DENSE_LR);
        let base = task.evaluate(&dense).per_percent();
        let data = task.training_data();
        let admm = admm_config();
        for (i, point) in points.iter().enumerate() {
            if point.target.is_dense() {
                degradations[i].push(0.0);
                continue;
            }
            let mut net = dense.clone();
            BspPruner::new(BspConfig {
                num_stripes: 8,
                num_blocks: 1,
                target: point.target,
                admm,
            })
            .prune(&mut net, &data);
            degradations[i].push(task.evaluate(&net).per_percent() - base);
        }
        println!("  seed {seed}: done");
    }
    println!();
    println!(
        "{:<16} {:>12} {:>10} | {:>11}",
        "BSP target", "mean degr.", "std", "paper degr."
    );
    println!("{}", rule(56));
    for (i, point) in points.iter().enumerate() {
        let xs = &degradations[i];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        println!(
            "{:<16} {:>11.2}p {:>9.2}p | {:>10.2}p",
            format!("{}x{}", point.target.col_rate, point.target.row_rate),
            mean,
            var.sqrt(),
            point.paper_per_degradation
        );
    }
}
