//! Ablation studies A1–A4 (DESIGN.md): the contribution of each compiler
//! optimization and the block-size search.
//!
//! ```text
//! cargo run -p rtm-bench --bin ablation --release            # all four
//! cargo run -p rtm-bench --bin ablation --release -- reorder # just A1
//! ```
//!
//! * `reorder` — matrix reorder on/off (divergence + simulated time);
//! * `rle`     — redundant load elimination on/off (input loads + time);
//! * `format`  — dense vs CSR vs BSPC storage (bytes + time);
//! * `tuner`   — the auto-tuner's block-size search against a simulated-
//!   latency cost;
//! * `int8`    — the DESIGN.md §6 what-if: int8 weight-only quantization on
//!   the CPU path (simulated latency + functional accuracy proxy).

use rtm_bench::{rule, SEED, SIM_HIDDEN};
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_compiler::profile::KernelProfile;
use rtm_compiler::rle::analyze_loads;
use rtm_compiler::tuner;
use rtm_sim::{GruWorkload, InferenceSim};
use rtm_sparse::footprint::{Footprint, Precision};
use rtm_sparse::{BspcMatrix, CsrMatrix};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let wants = |name: &str| all || which.iter().any(|w| w == name);

    if wants("reorder") {
        ablate_reorder();
    }
    if wants("rle") {
        ablate_rle();
    }
    if wants("format") {
        ablate_format();
    }
    if wants("tuner") {
        ablate_tuner();
    }
    if wants("int8") {
        ablate_int8();
    }
    if wants("trace") {
        ablate_trace();
    }
    if wants("sensitivity") {
        ablate_sensitivity();
    }
}

/// The pruned workload shared by the ablations: paper-scale GRU at 29x
/// (16 cols x 2 rows), the mid-table operating point.
fn workload() -> GruWorkload {
    GruWorkload::with_bsp_pattern(40, SIM_HIDDEN, 2, 16.0, 2.0, 8, 8, SEED)
}

fn ablate_reorder() {
    println!("== A1: matrix reorder ==");
    println!("{}", rule(72));
    let sim = InferenceSim::new();
    let w = workload();
    // Shuffle the stripe structure away by interleaving: simulate the
    // un-reordered execution by disabling the pass.
    for (label, use_reorder) in [("with reorder", true), ("without reorder", false)] {
        let mut plan = ExecutionPlan::gpu_default(StorageFormat::Csr);
        plan.use_reorder = use_reorder;
        let divergence: f64 = w
            .matrices
            .iter()
            .map(|m| KernelProfile::analyze(m, &plan).divergence_factor)
            .sum::<f64>()
            / w.matrices.len() as f64;
        let frame = sim.run_frame(&w, &plan);
        println!(
            "{label:<18}: mean warp divergence {divergence:>6.3}, frame {:>8.1} us",
            frame.time_us
        );
    }
    println!("Expected: reorder lowers divergence toward 1.0 and cuts frame time.");
    println!();
}

fn ablate_rle() {
    println!("== A2: redundant load elimination ==");
    println!("{}", rule(72));
    let sim = InferenceSim::new();
    let w = workload();
    for (label, use_rle) in [("with RLE", true), ("without RLE", false)] {
        let mut plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        plan.use_rle = use_rle;
        let loads: usize = w
            .matrices
            .iter()
            .map(|m| KernelProfile::analyze(m, &plan).input_loads)
            .sum();
        let frame = sim.run_frame(&w, &plan);
        println!(
            "{label:<18}: input loads/step {loads:>9}, frame {:>8.1} us",
            frame.time_us
        );
    }
    // Per-thread-run sharing statistics on one matrix, the microscopic view.
    let m = &workload().matrices[1];
    let stats = analyze_loads(m, None, 4);
    println!(
        "per-run sharing on layer0.Uh: naive {} loads -> {} after union ({}x eliminated)",
        stats.naive_loads,
        stats.rle_loads,
        stats.elimination_ratio().round()
    );
    println!("Expected: RLE shrinks input loads by ~the stripe sharing factor.");
    println!();
}

fn ablate_format() {
    println!("== A3: storage format (dense vs CSR vs BSPC) ==");
    println!("{}", rule(72));
    let sim = InferenceSim::new();
    let w = workload();
    // Bytes.
    let dense_bytes: usize = w
        .matrices
        .iter()
        .map(|m| Footprint::dense(m, Precision::F16).total())
        .sum();
    let csr_bytes: usize = w
        .matrices
        .iter()
        .map(|m| Footprint::csr(&CsrMatrix::from_dense(m), Precision::F16).total())
        .sum();
    let bspc_bytes: usize = w
        .matrices
        .iter()
        .map(|m| {
            Footprint::bspc(
                &BspcMatrix::from_dense(m, 8, 8).expect("partition fits"),
                Precision::F16,
            )
            .total()
        })
        .sum();
    println!(
        "bytes  : dense {:>9} | csr {:>9} | bspc {:>9}",
        dense_bytes, csr_bytes, bspc_bytes
    );
    // Time.
    let t = |plan: ExecutionPlan| sim.run_frame(&w, &plan).time_us;
    let dense = t(ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations());
    let csr = t(ExecutionPlan::gpu_default(StorageFormat::Csr));
    let bspc = t(ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8));
    println!("time us: dense {dense:>9.1} | csr {csr:>9.1} | bspc {bspc:>9.1}");
    println!("Expected: bspc < csr (< dense) in both bytes and time on the pruned model.");
    println!();
}

fn ablate_int8() {
    use rtm_sparse::footprint::Precision;
    println!("== Int8 what-if: CPU weight-only quantization ==");
    println!("{}", rule(72));
    let sim = InferenceSim::new();
    let w = workload();
    for (label, precision) in [("fp32 CPU", Precision::F32), ("int8 CPU", Precision::Int8)] {
        let mut plan = ExecutionPlan::cpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        plan.precision = precision;
        let frame = sim.run_frame(&w, &plan);
        println!(
            "{label:<10}: frame {:>8.1} us, {:>6.1} GOP/s, {:>5.2}x ESE efficiency",
            frame.time_us, frame.gop_per_s, frame.efficiency_vs_ese
        );
    }
    // Functional accuracy proxy: int8 weight roundtrip error on one tensor.
    let q = rtm_tensor::QuantizedMatrix::quantize(&w.matrices[1]);
    let d = q.dequantize();
    let mut max_err = 0.0f32;
    for (a, b) in w.matrices[1].as_slice().iter().zip(d.as_slice()) {
        max_err = max_err.max((a - b).abs());
    }
    println!(
        "weight roundtrip: max |err| {:.5} (bound {:.5}), storage {:.1} KiB vs {:.1} KiB fp32",
        max_err,
        q.error_bound(),
        q.storage_bytes() as f64 / 1024.0,
        (w.matrices[1].len() * 4) as f64 / 1024.0
    );
    println!("Expected: int8 cuts weight traffic 4x over fp32 at bounded weight error.");
    println!();
}

fn ablate_sensitivity() {
    use rtm_sim::sensitivity::{analyze, Verdict};
    println!("== Sensitivity: do the Table II shapes survive perturbed constants? ==");
    println!("{}", rule(72));
    let factors = [0.25, 0.5, 2.0, 4.0];
    let verdicts = analyze(&factors, SEED);
    println!(
        "{:<20} {:>7} {:>14} {:>14} {:>11}",
        "knob", "factor", "time monotone", "eff monotone", "saturates"
    );
    for v in &verdicts {
        println!(
            "{:<20} {:>6}x {:>14} {:>14} {:>11}",
            v.knob.label(),
            v.factor,
            v.time_monotone,
            v.efficiency_monotone,
            v.saturates
        );
    }
    let holding = verdicts.iter().filter(|v| Verdict::all_hold(v)).count();
    println!(
        "{holding}/{} perturbations preserve all three shape claims (saturation is
         overhead-driven, so shrinking the launch overhead legitimately weakens it).",
        verdicts.len()
    );
    println!();
}

fn ablate_trace() {
    println!("== Trace: per-kernel cost breakdown at 29x ==");
    println!("{}", rule(72));
    let sim = InferenceSim::new();
    let w = workload();
    for (label, plan) in [
        (
            "GPU/BSPC",
            ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
        ),
        (
            "CPU/BSPC",
            ExecutionPlan::cpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
        ),
    ] {
        let (report, trace) = sim.run_frame_traced(&w, &plan);
        println!("{label}: frame {:.1} us", report.time_us);
        print!("{}", trace.render());
        println!();
    }
}

fn ablate_tuner() {
    println!("== A4: auto-tuner block-size search ==");
    println!("{}", rule(72));
    let sim = InferenceSim::new();
    // Cost = simulated GPU latency of the 29x workload pruned with that
    // partition.
    let partitions: Vec<(usize, usize)> = vec![(2, 2), (4, 4), (8, 8), (16, 8), (16, 16), (32, 16)];
    for &(s, b) in &partitions {
        let w = GruWorkload::with_bsp_pattern(40, SIM_HIDDEN, 2, 16.0, 2.0, s, b, SEED);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(s, b);
        let frame = sim.run_frame(&w, &plan);
        println!(
            "partition {s:>2}x{b:<2}: frame {:>8.1} us, achieved rate {:>5.1}x",
            frame.time_us,
            w.compression_rate()
        );
    }
    let ((s, b), cost) = tuner::tune_block_size(&partitions, |s, b| {
        let w = GruWorkload::with_bsp_pattern(40, SIM_HIDDEN, 2, 16.0, 2.0, s, b, SEED);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(s, b);
        sim.run_frame(&w, &plan).time_us
    });
    println!("tuner pick: {s}x{b} at {cost:.1} us");

    // Full plan-space search over the GPU grid on one matrix.
    let w = workload();
    let m = w.matrices[1].clone();
    let space = tuner::TuningSpace::gpu_default();
    let result = tuner::tune(&space, |plan| {
        let profile = KernelProfile::analyze(&m, plan);
        rtm_sim::GpuModel::adreno640()
            .kernel_cost(&profile, plan)
            .total_us()
    });
    println!(
        "plan-space search over {} candidates: best format {}, tile {}x{}, {} threads ({:.2} us)",
        result.trace.len(),
        result.best.format,
        result.best.tile_rows,
        result.best.tile_cols,
        result.best.threads,
        result.best_cost
    );
    println!("Expected: the tuner lands on BSPC and a partition matching the prune pattern.");
    println!();
}
