//! Regenerates **Figure 4**: inference speedup over the dense CPU/GPU
//! baselines versus compression rate, with an ASCII rendering of the two
//! series.
//!
//! ```text
//! cargo run -p rtm-bench --bin fig4 --release
//! ```
//!
//! The paper's observations to reproduce: the speedup grows with
//! compression rate and becomes stable once the rate reaches ~250×, where
//! the GPU's inference time matches ESE's.

use rtm_bench::{rule, write_csv, SEED, SIM_HIDDEN};
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_sim::{EseReference, GruWorkload, InferenceSim, RealTimeReport};

/// The sweep of Figure 4's x-axis: `(overall rate, row rate)` pairs from
/// Table II.
const SWEEP: [(f64, f64); 10] = [
    (1.0, 1.0),
    (10.0, 1.0),
    (19.0, 1.25),
    (29.0, 2.0),
    (43.0, 5.0),
    (80.0, 8.0),
    (103.0, 16.0),
    (153.0, 10.0),
    (245.0, 16.0),
    (301.0, 20.0),
];

fn main() {
    let sim = InferenceSim::new();

    let run = |overall: f64, row_rate: f64| -> (f64, f64, f64) {
        let col_rate = (overall / row_rate).max(1.0);
        let w = GruWorkload::with_bsp_pattern(40, SIM_HIDDEN, 2, col_rate, row_rate, 8, 8, SEED);
        let (gp, cp) = if overall <= 1.0 {
            (
                ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations(),
                ExecutionPlan::cpu_default(StorageFormat::Dense).without_optimizations(),
            )
        } else {
            (
                ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
                ExecutionPlan::cpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
            )
        };
        (
            w.compression_rate(),
            sim.run_frame(&w, &gp).time_us,
            sim.run_frame(&w, &cp).time_us,
        )
    };

    let (_, gpu_dense, cpu_dense) = run(1.0, 1.0);
    println!(
        "Dense baselines: GPU {:.1} us/frame, CPU {:.1} us/frame",
        gpu_dense, cpu_dense
    );
    println!();
    println!("{}", rule(74));
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Rate", "GPU us", "GPU speedup", "CPU us", "CPU speedup", "GPU/ESE"
    );
    println!("{}", rule(74));

    let ese = EseReference::paper().time_per_frame_us;
    let mut rows = Vec::new();
    let mut csv_rows: Vec<String> = Vec::new();
    for &(overall, row_rate) in &SWEEP {
        let (rate, g, c) = run(overall, row_rate);
        println!(
            "{:>7.0}x {:>12.1} {:>11.1}x {:>12.1} {:>11.1}x {:>11.2}x",
            rate,
            g,
            gpu_dense / g,
            c,
            cpu_dense / c,
            g / ese
        );
        rows.push((rate, gpu_dense / g, cpu_dense / c));
        csv_rows.push(format!(
            "{:.1},{:.1},{:.2},{:.1},{:.2},{:.3}",
            rate,
            g,
            gpu_dense / g,
            c,
            cpu_dense / c,
            g / ese
        ));
    }
    println!("{}", rule(74));
    match write_csv(
        "fig4",
        "rate,gpu_us,gpu_speedup,cpu_us,cpu_speedup,gpu_over_ese",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    // ASCII rendering of the two speedup series.
    println!();
    println!("Speedup vs compression rate (G = GPU series, C = CPU series):");
    let max_speedup = rows.iter().map(|r| r.1.max(r.2)).fold(1.0f64, f64::max);
    let height = 16usize;
    for level in (1..=height).rev() {
        let threshold = max_speedup * level as f64 / height as f64;
        let mut line = format!("{threshold:>7.1}x |");
        for &(_, g, c) in &rows {
            let gs = g >= threshold;
            let cs = c >= threshold;
            line.push_str(match (gs, cs) {
                (true, true) => "  GC ",
                (true, false) => "  G  ",
                (false, true) => "   C ",
                (false, false) => "     ",
            });
        }
        println!("{line}");
    }
    let mut axis = String::from("         +");
    let mut labels = String::from("          ");
    for &(rate, _, _) in &rows {
        axis.push_str("-----");
        labels.push_str(&format!("{rate:>4.0}x"));
    }
    println!("{axis}");
    println!("{labels}");
    // Real-time factor at the headline point — the title's "beyond
    // real-time" claim in numbers.
    let w = GruWorkload::with_bsp_pattern(40, SIM_HIDDEN, 2, 245.0 / 16.0, 16.0, 8, 8, SEED);
    let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
    let frame = sim.run_frame(&w, &plan);
    let rt = RealTimeReport::analyze(&w, &frame);
    println!();
    println!(
        "Real-time factor at ~245x on the GPU: {:.5} ({}x beyond real time; {} concurrent streams)",
        rt.rtf,
        rt.headroom.round(),
        rt.concurrent_streams
    );
    println!();
    println!("Shape expectations (EXPERIMENTS.md E3): both series grow with compression and");
    println!("flatten near ~250x; at that point the GPU time is within ~2x of ESE's 82.7 us.");
}
