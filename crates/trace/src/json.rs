//! Hand-rolled JSON rendering (no serde in the offline workspace).
//!
//! One spot in the workspace knows how each value type renders: the
//! registry's exporters, the pipeline's [`Report`]-trait emission and the
//! benchmark binaries' artifact writers all build their documents from
//! these three helpers, so every JSON the stack emits shares one escaping
//! and formatting policy.
//!
//! [`Report`]: https://docs.rs/rtmobile (the `rtmobile::report::Report` trait)

/// One value in a [`json_row`].
pub enum JsonValue {
    /// A quoted, escaped string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float printed with the given number of decimals.
    F64(f64, usize),
    /// Pre-rendered JSON spliced verbatim (nested objects, bare literals).
    Raw(String),
}

impl JsonValue {
    /// Renders this value as a JSON fragment.
    pub fn render(&self) -> String {
        match self {
            JsonValue::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            JsonValue::Int(i) => i.to_string(),
            JsonValue::F64(v, prec) => format!("{v:.prec$}"),
            JsonValue::Raw(r) => r.clone(),
        }
    }
}

/// Renders one single-line JSON object from `(key, value)` pairs.
pub fn json_row(fields: &[(&str, JsonValue)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{k}\": {}", v.render()))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders a JSON array of pre-rendered rows, one per line at `indent`,
/// with correct comma placement.
pub fn json_array(indent: &str, rows: &[String]) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> = rows.iter().map(|r| format!("{indent}{r}")).collect();
    format!(
        "[\n{}\n{}]",
        body.join(",\n"),
        &indent[..indent.len().saturating_sub(2)]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_helpers_render_valid_rows() {
        let row = json_row(&[
            ("kernel", JsonValue::Str("bspc \"q\"".into())),
            ("threads", JsonValue::Int(4)),
            ("us", JsonValue::F64(1.23456, 3)),
            ("nested", JsonValue::Raw("{\"a\": 1}".into())),
        ]);
        assert_eq!(
            row,
            "{\"kernel\": \"bspc \\\"q\\\"\", \"threads\": 4, \"us\": 1.235, \
             \"nested\": {\"a\": 1}}"
        );
        assert_eq!(json_array("    ", &[]), "[]");
        assert_eq!(
            json_array("    ", &["{}".into(), "{}".into()]),
            "[\n    {},\n    {}\n  ]"
        );
    }
}
