#![warn(missing_docs)]

//! # rtm-trace
//!
//! Zero-dependency observability for the RTMobile serving stack: counters,
//! gauges, latency histograms with p50/p95/p99 and hierarchical spans with
//! monotonic timing, behind one process-global [`Registry`].
//!
//! The paper's compiler half *runs on* measured execution behaviour — the
//! auto-tuner picks unroll factors from observed kernel cost and the matrix
//! reorder exists to fix observable thread imbalance — so the runtime needs
//! a way to observe itself that every layer can reach. This crate sits at
//! the bottom of the workspace (no dependencies, like `rtm-tensor`), so the
//! kernel layer, the execution engine, the batched scheduler and the
//! pipeline all record into the *same* registry the tuner reads.
//!
//! # Switching it on
//!
//! Tracing is **off by default** and the disabled path is near-free: every
//! recording entry point is gated on [`enabled`], a single relaxed atomic
//! load plus a branch (verified by the `trace_overhead` bench bin). The
//! knob mirrors `RTM_SIMD`: programmatic [`set_config`] wins, otherwise the
//! `RTM_TRACE` environment variable is read once on first use.
//!
//! ```
//! rtm_trace::set_config(rtm_trace::TraceConfig::on());
//! {
//!     let _span = rtm_trace::span("work");
//!     rtm_trace::count(rtm_trace::key::SPMV_BSPC, 1);
//! }
//! let metrics = rtm_trace::global().metrics_json();
//! assert!(metrics.contains("kernel.spmv.bspc"));
//! # rtm_trace::set_config(rtm_trace::TraceConfig::off());
//! # rtm_trace::global().reset();
//! ```
//!
//! # Exports
//!
//! [`Registry::metrics_json`] dumps every counter, gauge and histogram
//! (with quantiles) as a JSON document; [`Registry::chrome_trace_json`]
//! renders the recorded spans as a Chrome `trace_event` file loadable in
//! `chrome://tracing` / Perfetto. Both are built on the same hand-rolled
//! [`json`] helpers the benchmark harness uses (no serde in the offline
//! workspace).

pub mod env;
pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use json::{json_array, json_row, JsonValue};

// ---------------------------------------------------------------------------
// Configuration: the process-global on/off switch.
// ---------------------------------------------------------------------------

/// Whether the registry records anything. Off by default; the disabled
/// path costs one relaxed atomic load per would-be recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Record counters, gauges, histograms and spans when `true`.
    pub enabled: bool,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> TraceConfig {
        TraceConfig { enabled: false }
    }

    /// Tracing enabled.
    pub fn on() -> TraceConfig {
        TraceConfig { enabled: true }
    }

    /// The deployment-side default: `RTM_TRACE` if set and parseable,
    /// otherwise off.
    pub fn from_env() -> TraceConfig {
        env::raw("RTM_TRACE")
            .as_deref()
            .and_then(parse_config)
            .unwrap_or_default()
    }
}

impl std::fmt::Display for TraceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.enabled { "on" } else { "off" })
    }
}

/// Parses an `RTM_TRACE` value (or a `--trace`-style CLI knob). Recognized:
/// `on`/`1`/`true`, `off`/`0`/`false` (case-insensitive). Returns `None`
/// for anything else.
pub fn parse_config(s: &str) -> Option<TraceConfig> {
    match s.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" => Some(TraceConfig::on()),
        "off" | "0" | "false" | "" => Some(TraceConfig::off()),
        _ => None,
    }
}

const T_UNSET: u8 = 0;
const T_OFF: u8 = 1;
const T_ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(T_UNSET);

/// Overrides the process-global trace switch (wins over `RTM_TRACE`).
pub fn set_config(c: TraceConfig) {
    ENABLED.store(if c.enabled { T_ON } else { T_OFF }, Ordering::Relaxed);
}

/// The currently resolved configuration (see [`enabled`]).
pub fn config() -> TraceConfig {
    TraceConfig { enabled: enabled() }
}

/// Whether recording is on. On first use (before any [`set_config`]) the
/// `RTM_TRACE` environment variable is consulted once; unset or
/// unparseable values mean off. This is the hot-path gate: one relaxed
/// atomic load once the switch has settled.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        T_ON => true,
        T_OFF => false,
        _ => enabled_slow(),
    }
}

#[cold]
fn enabled_slow() -> bool {
    let c = TraceConfig::from_env();
    let encoded = if c.enabled { T_ON } else { T_OFF };
    let _ = ENABLED.compare_exchange(T_UNSET, encoded, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed) == T_ON
}

// ---------------------------------------------------------------------------
// Well-known metric names.
// ---------------------------------------------------------------------------

/// Names of the metrics the stack's instrumentation records, in one place
/// so exporters, tests and dashboards agree on spelling.
///
/// Kernel-dispatch counters (`kernel.*`) are exact: each counts one call of
/// the corresponding kernel entry point, whether it ran through a serial
/// matrix method or a parallel `rtm_exec::Executor` front-end (the two
/// never nest — the executor's serial fast path calls the chunk kernels
/// directly).
pub mod key {
    /// BSPC SpMV calls (serial `spmv_into` + parallel `spmv_bspc_into`).
    pub const SPMV_BSPC: &str = "kernel.spmv.bspc";
    /// CSR SpMV calls (serial + parallel).
    pub const SPMV_CSR: &str = "kernel.spmv.csr";
    /// BSPC SpMM calls (serial `spmm_into` + parallel `spmm_bspc_into`).
    pub const SPMM_BSPC: &str = "kernel.spmm.bspc";
    /// CSR SpMM calls (serial + parallel).
    pub const SPMM_CSR: &str = "kernel.spmm.csr";
    /// BBS (bank-balanced) SpMV calls (serial + parallel).
    pub const SPMV_BBS: &str = "kernel.spmv.bbs";
    /// BBS SpMM calls (serial + parallel).
    pub const SPMM_BBS: &str = "kernel.spmm.bbs";
    /// CSB (compressed structured blocks) SpMV calls (serial + parallel).
    pub const SPMV_CSB: &str = "kernel.spmv.csb";
    /// CSB SpMM calls (serial + parallel).
    pub const SPMM_CSB: &str = "kernel.spmm.csb";
    /// Dense GEMV calls (serial `gemv_into` + parallel `gemv_dense_into`).
    pub const GEMV_DENSE: &str = "kernel.gemv.dense";
    /// Dense batched GEMV/GEMM calls (`gemv_batch_into` + `gemm_dense_into`).
    pub const GEMM_DENSE: &str = "kernel.gemm.dense";
    /// Output rows touched across all counted kernel calls.
    pub const KERNEL_ROWS: &str = "kernel.rows";
    /// Stored nonzeros (dense: elements) touched across all counted calls.
    pub const KERNEL_NNZ: &str = "kernel.nnz";
    /// Tasks executed by the execution engine's worker pool.
    pub const EXEC_TASKS: &str = "exec.pool.tasks";
    /// Task batches submitted to the worker pool.
    pub const EXEC_BATCHES: &str = "exec.pool.batches";
    /// Gauge: live per-worker busy-time imbalance (max/mean over cumulative
    /// busy nanoseconds) — the measured counterpart of
    /// `rtm_sim::measured_imbalance`'s cost-model prediction.
    pub const EXEC_IMBALANCE: &str = "exec.pool.imbalance";
    /// Gauge: the simulator's predicted thread imbalance for the workload
    /// it last priced (`rtm_sim::measured_imbalance`).
    pub const SIM_IMBALANCE: &str = "sim.measured_imbalance";
    /// Histogram: per-batched-frame forward latency in microseconds.
    pub const SERVE_FRAME_US: &str = "serve.frame_us";
    /// Gauge: parked streams awaiting a lane at the latest scheduling round.
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Streams admitted to a lane by the batched scheduler.
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Streams shed by admission control.
    pub const SERVE_SHED: &str = "serve.shed";
    /// Lanes retired by the health policy.
    pub const SERVE_QUARANTINED: &str = "serve.quarantined";
    /// Streams admitted after their deadline budget elapsed.
    pub const SERVE_DEADLINE_MISSED: &str = "serve.deadline_missed";
    /// Gauge: open TCP connections on the serve front end.
    pub const SERVE_CONNS: &str = "serve.conns";
    /// Bytes read from serve connections.
    pub const SERVE_BYTES_IN: &str = "serve.bytes_in";
    /// Bytes written to serve connections.
    pub const SERVE_BYTES_OUT: &str = "serve.bytes_out";
    /// Connections that vanished mid-stream (EOF/reset before `End`).
    pub const SERVE_DISCONNECTS: &str = "serve.disconnects";
    /// Connections dropped for a malformed or oversized wire message.
    pub const SERVE_PROTOCOL_ERRORS: &str = "serve.protocol_errors";
    /// Histogram: client-observed per-frame round-trip latency in
    /// microseconds (recorded by the loopback load generator).
    pub const SERVE_CLIENT_RTT_US: &str = "serve.client_rtt_us";
    /// Histogram: per-stream real-time factor in milli-RTF (RTF × 1000,
    /// so sub-real-time values survive the integer histogram): a stream's
    /// inference+decode wall time over its audio time, recorded when the
    /// stream completes.
    pub const RTF_STREAM: &str = "rtf.stream";
    /// Bundle-change detections that started a background reload.
    pub const SERVE_RELOAD_ATTEMPT: &str = "serve.reload.attempt";
    /// Hot swaps promoted to serving.
    pub const SERVE_RELOAD_SUCCESS: &str = "serve.reload.success";
    /// Candidate bundles refused before promotion (checksum, decode,
    /// dimension or canary failure).
    pub const SERVE_RELOAD_REFUSED: &str = "serve.reload.refused";
    /// Post-swap reversions to the previous generation.
    pub const SERVE_RELOAD_ROLLBACK: &str = "serve.reload.rollback";
    /// Gauge: generation of the bundle admitting new streams.
    pub const SERVE_GENERATION: &str = "serve.generation";
    /// Unroll candidates timed by the tuner's measured-cost hook.
    pub const TUNER_MEASUREMENTS: &str = "tuner.unroll_measurements";
    /// Precision candidates timed by the tuner's per-layer precision hook.
    pub const TUNER_PRECISION_MEASUREMENTS: &str = "tuner.precision_measurements";
    /// (format × precision) candidates timed by the tuner's per-layer
    /// format hook.
    pub const TUNER_FORMAT_MEASUREMENTS: &str = "tuner.format_measurements";

    /// The precision-suffixed companion of a sparse kernel-dispatch key.
    ///
    /// The base keys above count every call of a kernel entry point
    /// regardless of value precision; the suffixed keys split that count by
    /// the precision that actually ran (`f32`, `f16` or `int8`), shared by
    /// the serial and pooled paths exactly like the base keys. Unknown
    /// `(base, precision)` pairs return the base key unchanged, so callers
    /// never manufacture unregistered metric names.
    pub fn with_precision(base: &'static str, precision: &'static str) -> &'static str {
        match (base, precision) {
            (SPMV_BSPC, "f32") => "kernel.spmv.bspc.f32",
            (SPMV_BSPC, "f16") => "kernel.spmv.bspc.f16",
            (SPMV_BSPC, "int8") => "kernel.spmv.bspc.int8",
            (SPMV_CSR, "f32") => "kernel.spmv.csr.f32",
            (SPMV_CSR, "f16") => "kernel.spmv.csr.f16",
            (SPMV_CSR, "int8") => "kernel.spmv.csr.int8",
            (SPMM_BSPC, "f32") => "kernel.spmm.bspc.f32",
            (SPMM_BSPC, "f16") => "kernel.spmm.bspc.f16",
            (SPMM_BSPC, "int8") => "kernel.spmm.bspc.int8",
            (SPMM_CSR, "f32") => "kernel.spmm.csr.f32",
            (SPMM_CSR, "f16") => "kernel.spmm.csr.f16",
            (SPMM_CSR, "int8") => "kernel.spmm.csr.int8",
            (SPMV_BBS, "f32") => "kernel.spmv.bbs.f32",
            (SPMV_BBS, "f16") => "kernel.spmv.bbs.f16",
            (SPMV_BBS, "int8") => "kernel.spmv.bbs.int8",
            (SPMM_BBS, "f32") => "kernel.spmm.bbs.f32",
            (SPMM_BBS, "f16") => "kernel.spmm.bbs.f16",
            (SPMM_BBS, "int8") => "kernel.spmm.bbs.int8",
            (SPMV_CSB, "f32") => "kernel.spmv.csb.f32",
            (SPMV_CSB, "f16") => "kernel.spmv.csb.f16",
            (SPMV_CSB, "int8") => "kernel.spmv.csb.int8",
            (SPMM_CSB, "f32") => "kernel.spmm.csb.f32",
            (SPMM_CSB, "f16") => "kernel.spmm.csb.f16",
            (SPMM_CSB, "int8") => "kernel.spmm.csb.int8",
            _ => base,
        }
    }
}

// ---------------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------------

/// Log₂ buckets: bucket `i` holds values `v ≤ 2^(i-10)` (so the range runs
/// from ~1 ms-precision-of-a-nanosecond to ~2⁵³ for microsecond inputs);
/// the last bucket holds everything larger.
const BUCKETS: usize = 64;

fn bucket_upper(i: usize) -> f64 {
    2f64.powi(i as i32 - 10)
}

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let i = v.log2().ceil() + 10.0;
    if i <= 0.0 {
        0
    } else {
        (i as usize).min(BUCKETS - 1)
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// The value at quantile `q` (0..=1): the upper bound of the bucket
    /// containing the rank-`⌈q·count⌉` sample, clamped to the observed
    /// `[min, max]`. Deterministic for a given multiset of recorded values
    /// — quantiles of a fixed-seed run never wobble.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: if self.count == 0 { 0.0 } else { self.sum },
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time view of one histogram, quantiles included.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median (bucket upper bound, clamped to `[min, max]`).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// One closed span: a named interval on the registry's monotonic clock,
/// with its parent (the span open on the same thread when it started).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Unique id (process-wide, monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static name (e.g. `"pipeline.compile"`).
    pub name: &'static str,
    /// Start, microseconds since the registry's epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Small per-thread id (0 for the first thread that recorded a span).
    pub tid: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: std::cell::OnceCell<u64> = const { std::cell::OnceCell::new() };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn thread_id() -> u64 {
    THREAD_ID.with(|c| *c.get_or_init(|| NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed)))
}

/// RAII guard returned by [`span`]: the interval closes (and is appended to
/// the registry) when the guard drops. Inert — no clock read, no
/// allocation — when tracing is disabled at open time.
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_us: f64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let reg = global();
        let end_us = reg.now_us();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == open.id) {
                s.remove(pos);
            }
        });
        reg.push_span(SpanEvent {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_us: open.start_us,
            dur_us: end_us - open.start_us,
            tid: thread_id(),
        });
    }
}

/// Opens a span named `name`, parented to the span currently open on this
/// thread. Returns an inert guard (and records nothing) when tracing is
/// disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let reg = global();
    let id = reg.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    SpanGuard {
        open: Some(OpenSpan {
            id,
            parent,
            name,
            start_us: reg.now_us(),
        }),
    }
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// The process-global metric store: counters, gauges, histograms and closed
/// spans, plus the monotonic epoch all span timestamps are relative to.
///
/// Recording methods are unconditional — the cheap [`enabled`] gate lives
/// in the free-function wrappers ([`count`], [`gauge`], [`record`],
/// [`span`]) that the instrumentation calls on hot paths.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    next_span_id: AtomicU64,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
    spans: Mutex<Vec<SpanEvent>>,
}

/// The process-global [`Registry`] (created on first use).
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(0),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(Vec::new()),
    })
}

/// Locks a registry mutex, shrugging off poison: a panic elsewhere (the
/// exec pool deliberately catches task panics) must not take the metrics
/// down with it — plain numeric state cannot be left inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// Microseconds since the registry's monotonic epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Adds `delta` to counter `name` (created at 0 on first touch).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        *lock(&self.counters).entry(name).or_insert(0) += delta;
    }

    /// Adds several counter deltas under one lock (the hot kernel entry
    /// points record call/rows/nnz together).
    pub fn counter_add_many(&self, deltas: &[(&'static str, u64)]) {
        let mut c = lock(&self.counters);
        for &(name, delta) in deltas {
            *c.entry(name).or_insert(0) += delta;
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut g = lock(&self.gauges);
        match g.get_mut(name) {
            Some(slot) => *slot = v,
            None => {
                g.insert(name.to_string(), v);
            }
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        lock(&self.gauges).get(name).copied()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        lock(&self.gauges)
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Records sample `v` into histogram `name`.
    pub fn hist_record(&self, name: &'static str, v: f64) {
        lock(&self.hists)
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(v);
    }

    /// Snapshot of histogram `name`, if it has ever been recorded into.
    pub fn hist(&self, name: &str) -> Option<HistogramSnapshot> {
        lock(&self.hists).get(name).map(Histogram::snapshot)
    }

    /// Appends a closed span (normally via [`SpanGuard`]'s drop).
    pub fn push_span(&self, ev: SpanEvent) {
        lock(&self.spans).push(ev);
    }

    /// All closed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        lock(&self.spans).clone()
    }

    /// Clears every counter, gauge, histogram and span (the epoch and the
    /// on/off switch are untouched). Tests and per-run exports use this to
    /// start from a clean slate.
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.hists).clear();
        lock(&self.spans).clear();
    }

    /// Renders every counter, gauge and histogram (count/sum/min/max and
    /// p50/p95/p99) plus the closed-span count as one JSON document — the
    /// metrics half of `rtm pipeline --trace`.
    pub fn metrics_json(&self) -> String {
        let counter_rows: Vec<String> = self
            .counters()
            .iter()
            .map(|(k, v)| {
                json_row(&[
                    ("name", JsonValue::Str(k.clone())),
                    ("value", JsonValue::Int(*v as i64)),
                ])
            })
            .collect();
        let gauge_rows: Vec<String> = self
            .gauges()
            .iter()
            .map(|(k, v)| {
                json_row(&[
                    ("name", JsonValue::Str(k.clone())),
                    ("value", JsonValue::F64(*v, 6)),
                ])
            })
            .collect();
        let hist_rows: Vec<String> = {
            let hists = lock(&self.hists);
            hists
                .iter()
                .map(|(&k, h)| {
                    let s = h.snapshot();
                    json_row(&[
                        ("name", JsonValue::Str(k.to_string())),
                        ("count", JsonValue::Int(s.count as i64)),
                        ("sum", JsonValue::F64(s.sum, 3)),
                        ("min", JsonValue::F64(s.min, 3)),
                        ("max", JsonValue::F64(s.max, 3)),
                        ("p50", JsonValue::F64(s.p50, 3)),
                        ("p95", JsonValue::F64(s.p95, 3)),
                        ("p99", JsonValue::F64(s.p99, 3)),
                    ])
                })
                .collect()
        };
        let span_count = lock(&self.spans).len();
        format!(
            "{{\n  \"schema\": \"rtm-metrics-v1\",\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"spans\": {}\n}}\n",
            json_array("    ", &counter_rows),
            json_array("    ", &gauge_rows),
            json_array("    ", &hist_rows),
            span_count
        )
    }

    /// Renders the closed spans as a Chrome `trace_event` JSON file
    /// (complete `"X"` events; open it in `chrome://tracing` or Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        let rows: Vec<String> = self
            .spans()
            .iter()
            .map(|ev| {
                json_row(&[
                    ("name", JsonValue::Str(ev.name.to_string())),
                    ("cat", JsonValue::Str("rtm".to_string())),
                    ("ph", JsonValue::Str("X".to_string())),
                    ("ts", JsonValue::F64(ev.start_us, 3)),
                    ("dur", JsonValue::F64(ev.dur_us, 3)),
                    ("pid", JsonValue::Int(1)),
                    ("tid", JsonValue::Int(ev.tid as i64)),
                    (
                        "args",
                        JsonValue::Raw(json_row(&[
                            ("id", JsonValue::Int(ev.id as i64)),
                            ("parent", JsonValue::Int(ev.parent.map_or(0, |p| p as i64))),
                        ])),
                    ),
                ])
            })
            .collect();
        format!("{{\"traceEvents\": {}}}\n", json_array("  ", &rows))
    }
}

// ---------------------------------------------------------------------------
// Gated hot-path wrappers.
// ---------------------------------------------------------------------------

/// Adds `delta` to counter `name` when tracing is enabled; a relaxed load
/// and a branch otherwise.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if enabled() {
        global().counter_add(name, delta);
    }
}

/// Adds several counter deltas under one lock when tracing is enabled.
#[inline]
pub fn count_many(deltas: &[(&'static str, u64)]) {
    if enabled() {
        global().counter_add_many(deltas);
    }
}

/// Sets gauge `name` when tracing is enabled.
#[inline]
pub fn gauge(name: &str, v: f64) {
    if enabled() {
        global().gauge_set(name, v);
    }
}

/// Records a histogram sample when tracing is enabled.
#[inline]
pub fn record(name: &'static str, v: f64) {
    if enabled() {
        global().hist_record(name, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and the on/off switch are process-global; the unit tests
    // in this crate serialize on one lock so cargo's parallel test runner
    // cannot interleave their mutations.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guarded() -> MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_config(TraceConfig::on());
        global().reset();
        g
    }

    #[test]
    fn parse_config_recognizes_known_values() {
        assert_eq!(parse_config("on"), Some(TraceConfig::on()));
        assert_eq!(parse_config("1"), Some(TraceConfig::on()));
        assert_eq!(parse_config("TRUE"), Some(TraceConfig::on()));
        assert_eq!(parse_config("off"), Some(TraceConfig::off()));
        assert_eq!(parse_config("0"), Some(TraceConfig::off()));
        assert_eq!(parse_config("nope"), None);
        assert_eq!(TraceConfig::on().to_string(), "on");
        assert_eq!(TraceConfig::off().to_string(), "off");
        assert_eq!(TraceConfig::default(), TraceConfig::off());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = guarded();
        count("test.counter", 2);
        count("test.counter", 3);
        count_many(&[("test.counter", 1), ("test.other", 7)]);
        assert_eq!(global().counter("test.counter"), 6);
        assert_eq!(global().counter("test.other"), 7);
        assert_eq!(global().counter("test.never"), 0);
        global().reset();
        assert_eq!(global().counter("test.counter"), 0);
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = guarded();
        set_config(TraceConfig::off());
        count("test.off", 5);
        gauge("test.off.gauge", 1.0);
        record("test.off.hist", 1.0);
        let s = span("test.off.span");
        drop(s);
        set_config(TraceConfig::on());
        assert_eq!(global().counter("test.off"), 0);
        assert_eq!(global().gauge("test.off.gauge"), None);
        assert_eq!(global().hist("test.off.hist"), None);
        assert!(global().spans().is_empty());
    }

    #[test]
    fn gauges_keep_last_write() {
        let _g = guarded();
        gauge("test.gauge", 1.5);
        gauge("test.gauge", 2.5);
        assert_eq!(global().gauge("test.gauge"), Some(2.5));
    }

    #[test]
    fn histogram_quantiles_are_deterministic_and_ordered() {
        let _g = guarded();
        for i in 1..=1000u64 {
            record("test.hist", i as f64);
        }
        let s1 = global().hist("test.hist").unwrap();
        assert_eq!(s1.count, 1000);
        assert_eq!(s1.min, 1.0);
        assert_eq!(s1.max, 1000.0);
        assert!(s1.p50 <= s1.p95 && s1.p95 <= s1.p99, "{s1:?}");
        assert!(s1.p99 <= s1.max);
        // Same multiset again → identical snapshot, including quantiles.
        global().reset();
        for i in (1..=1000u64).rev() {
            record("test.hist", i as f64);
        }
        let s2 = global().hist("test.hist").unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!((s.sum, s.min, s.max, s.p50), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn bucket_index_is_monotonic() {
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        let mut last = 0;
        for e in -12..40 {
            let i = bucket_index(2f64.powi(e) * 1.001);
            assert!(i >= last, "index regressed at 2^{e}");
            last = i;
        }
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn spans_nest_by_thread_stack() {
        let _g = guarded();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        let spans = global().spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert!(inner.start_us >= outer.start_us);
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn exports_render_parseable_shapes() {
        let _g = guarded();
        count(key::SPMV_BSPC, 3);
        gauge(key::EXEC_IMBALANCE, 1.25);
        record(key::SERVE_FRAME_US, 42.0);
        {
            let _s = span("export.test");
        }
        let metrics = global().metrics_json();
        assert!(metrics.contains("\"rtm-metrics-v1\""));
        assert!(metrics.contains("kernel.spmv.bspc"));
        assert!(metrics.contains("exec.pool.imbalance"));
        assert!(metrics.contains("\"p99\""));
        let trace = global().chrome_trace_json();
        assert!(trace.starts_with("{\"traceEvents\": ["));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("export.test"));
        assert!(trace.trim_end().ends_with("]}"));
    }
}
