//! Typed environment-variable access.
//!
//! The deployment-side knobs (`RTM_SIMD`, `RTM_HEALTH`, `RTM_TRACE`,
//! `RTM_FUZZ_ITERS`) all flow through these two helpers, so "unset",
//! "set and valid" and "set but garbage" are distinguished in one place
//! with one error type instead of scattered `std::env::var(..).ok()`
//! chains that silently swallow typos. `rtmobile::env` builds its
//! per-variable accessors on top.

use std::fmt;

/// A set-but-unparseable environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The variable's name.
    pub var: String,
    /// The rejected value.
    pub value: String,
    /// Human-readable description of what would have been accepted.
    pub expected: &'static str,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={:?} is invalid (expected {})",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// The raw value of `var`, or `None` when unset (or not valid UTF-8).
pub fn raw(var: &str) -> Option<String> {
    std::env::var(var).ok()
}

/// Reads and parses `var`: `Ok(None)` when unset, `Ok(Some(v))` when
/// `parse` accepts the value, and a typed [`EnvError`] naming `expected`
/// when the variable is set but `parse` rejects it.
pub fn parsed<T>(
    var: &str,
    expected: &'static str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<Option<T>, EnvError> {
    match raw(var) {
        None => Ok(None),
        Some(s) => match parse(&s) {
            Some(v) => Ok(Some(v)),
            None => Err(EnvError {
                var: var.to_string(),
                value: s,
                expected,
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsed_distinguishes_unset_valid_and_garbage() {
        // The variable name is unique to this test, so the mutation cannot
        // race any other test in this binary.
        let var = "RTM_TRACE_TEST_ENV_VAR";
        std::env::remove_var(var);
        assert_eq!(parsed(var, "a digit", |s| s.parse::<u32>().ok()), Ok(None));
        std::env::set_var(var, "42");
        assert_eq!(
            parsed(var, "a digit", |s| s.parse::<u32>().ok()),
            Ok(Some(42))
        );
        std::env::set_var(var, "nope");
        let err = parsed(var, "a digit", |s| s.parse::<u32>().ok()).unwrap_err();
        assert_eq!(err.var, var);
        assert_eq!(err.value, "nope");
        assert!(err.to_string().contains("expected a digit"));
        std::env::remove_var(var);
    }
}
