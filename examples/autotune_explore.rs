//! Auto-tuner exploration: the offline execution-configuration search of
//! §IV-B, driven by the simulator's cost model.
//!
//! ```text
//! cargo run --release --example autotune_explore
//! ```
//!
//! Tunes one pruned paper-scale GRU kernel over the full GPU plan grid,
//! prints the best plan and a top-5 leaderboard, then runs the paper's
//! "best block size" search with a combined accuracy/latency objective.

use rtm_compiler::profile::KernelProfile;
use rtm_compiler::tuner::{tune, tune_block_size, TuningSpace};
use rtm_sim::{GpuModel, GruWorkload, InferenceSim};

fn main() {
    // The layer-0 recurrent matrix of the paper-scale model, pruned 29x.
    let workload = GruWorkload::with_bsp_pattern(40, 1024, 2, 16.0, 2.0, 8, 8, 3);
    let matrix = workload.matrices[1].clone();
    let gpu = GpuModel::adreno640();

    println!(
        "Tuning a {}x{} kernel at {:.1}x compression over the GPU plan grid...",
        matrix.rows(),
        matrix.cols(),
        workload.compression_rate()
    );
    let space = TuningSpace::gpu_default();
    let result = tune(&space, |plan| {
        gpu.kernel_cost(&KernelProfile::analyze(&matrix, plan), plan)
            .total_us()
    });

    let mut ranked = result.trace.clone();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    println!("evaluated {} candidate plans; top 5:", ranked.len());
    for (plan, cost) in ranked.iter().take(5) {
        println!(
            "  {:>7.2} us  fmt {:<5} tile {:>3}x{:<3} unroll {} threads {:>3} placement {:?} bsp {}x{}",
            cost,
            plan.format.to_string(),
            plan.tile_rows,
            plan.tile_cols,
            plan.unroll,
            plan.threads,
            plan.input_placement,
            plan.bsp_stripes,
            plan.bsp_blocks,
        );
    }
    println!(
        "best: {} at {:.2} us ({}x faster than the worst candidate)\n",
        result.best.format,
        result.best_cost,
        (ranked.last().expect("nonempty").1 / result.best_cost).round()
    );

    // "In particular, we employ it to find the best block size that results
    // in an optimal combination of accuracy and performance" — latency from
    // the simulator plus a coarseness penalty standing in for the accuracy
    // loss of coarser partitions (coarser blocks constrain the mask more).
    let sim = InferenceSim::new();
    let partitions: Vec<(usize, usize)> = vec![(2, 2), (4, 4), (8, 8), (16, 8), (16, 16)];
    println!("block-size search with a combined accuracy+latency objective:");
    let ((s, b), cost) = tune_block_size(&partitions, |s, b| {
        let w = GruWorkload::with_bsp_pattern(40, 1024, 2, 16.0, 2.0, s, b, 3);
        let plan =
            rtm_compiler::plan::ExecutionPlan::gpu_default(rtm_compiler::plan::StorageFormat::Bspc)
                .with_bsp_partition(s, b);
        let latency = sim.run_frame(&w, &plan).time_us;
        // Coarseness proxy: fewer, larger blocks = stiffer masks = more
        // accuracy loss. Weighted to trade ~1 us per granularity step.
        let coarseness_penalty = 120.0 / (s * b) as f64;
        latency + coarseness_penalty
    });
    for &(ps, pb) in &partitions {
        let w = GruWorkload::with_bsp_pattern(40, 1024, 2, 16.0, 2.0, ps, pb, 3);
        let plan =
            rtm_compiler::plan::ExecutionPlan::gpu_default(rtm_compiler::plan::StorageFormat::Bspc)
                .with_bsp_partition(ps, pb);
        println!(
            "  {}x{:<2} -> latency {:>6.1} us + accuracy-proxy {:>5.1}",
            ps,
            pb,
            sim.run_frame(&w, &plan).time_us,
            120.0 / (ps * pb) as f64
        );
    }
    println!("tuner pick: {s}x{b} at combined cost {cost:.1}");
}
