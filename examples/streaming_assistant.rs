//! Streaming assistant: the paper's application scenario end-to-end.
//!
//! ```text
//! cargo run --release --example streaming_assistant
//! ```
//!
//! A voice assistant must transcribe *live* audio: frames arrive every 10 ms
//! and the recognizer must keep up ("real-time RNN inference on mobile
//! platforms", §I). This example:
//!
//! 1. trains and BSP-prunes a recognizer on the synthetic task;
//! 2. decodes a held-out utterance with the Viterbi-smoothed decoder;
//! 3. prices the paper-scale workload as a *stream* on the simulated GPU —
//!    queueing latency, real-time factor and sustainable concurrent streams
//!    at the dense and 29× operating points.

use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_sim::{GruWorkload, RealTimeReport, StreamingSim};
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::decode::viterbi_decode;
use rtm_speech::phones;
use rtm_speech::task::SpeechTask;

fn spell(seq: &[usize]) -> String {
    seq.iter()
        .map(|&p| phones::label(p))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    // --- Accuracy side: a pruned recognizer that still transcribes. ---
    let task = SpeechTask::new(
        &CorpusConfig {
            speakers: 16,
            noise: 0.4,
            ..CorpusConfig::default_scaled()
        },
        21,
    );
    println!("Training + BSP-pruning the recognizer (4x cols)...");
    let mut net = task.new_network(64, 21);
    task.train(&mut net, 20, 8e-3);
    BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 2,
        target: CompressionTarget::new(4.0, 1.0),
        admm: AdmmConfig {
            rho: 2.0,
            admm_iterations: 2,
            epochs_per_iteration: 5,
            finetune_epochs: 15,
            lr: 3e-3,
            clip: Some(rtm_rnn::GradClip::new(5.0)),
        },
    })
    .prune(&mut net, &task.training_data());

    let utterance = task.test_utterances()[0];
    let logits = net.forward(&utterance.frames);
    println!("  reference : {}", spell(&utterance.phones));
    println!("  decoded   : {}", spell(&viterbi_decode(&logits, 2.5)));
    println!();

    // --- Performance side: stream the paper-scale model. ---
    let sim = StreamingSim::new();
    for (label, col, row, dense) in [
        ("dense 1x", 1.0, 1.0, true),
        ("pruned 29x", 16.0, 2.0, false),
    ] {
        let w = GruWorkload::with_bsp_pattern(40, 1024, 2, col, row, 8, 8, 21);
        let plan = if dense {
            ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations()
        } else {
            ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8)
        };
        let stream = sim.run(&w, &plan, 100);
        let frame = sim.inner.run_frame(&w, &plan);
        let rt = RealTimeReport::analyze(&w, &frame);
        println!(
            "{label:<11}: {} | service {:.1} us per {:.0} us of audio | RTF {:.5} | \
             max latency {:.1} us | {} concurrent streams",
            if stream.stable {
                "stable"
            } else {
                "OVERLOADED"
            },
            stream.service_us,
            stream.period_us,
            rt.rtf,
            stream.max_latency_us,
            rt.concurrent_streams,
        );
    }
    println!();
    println!("Both operating points are real-time on the simulated GPU; compression turns");
    println!("single-stream headroom into three-orders-of-magnitude concurrency — the");
    println!("sense in which RTMobile is 'beyond real-time'.");
}
