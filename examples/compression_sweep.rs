//! Compression sweep: a condensed Table-I + Figure-4 view from the public
//! API — accuracy and simulated mobile performance at several `(col, row)`
//! targets.
//!
//! ```text
//! cargo run --release --example compression_sweep
//! ```

use rtm_speech::corpus::CorpusConfig;
use rtmobile::RtMobile;

fn main() {
    let sweep = [(1.0, 1.0), (4.0, 1.0), (8.0, 2.0), (16.0, 4.0)];
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>11} {:>11} {:>10}",
        "target", "achieved", "PER dense", "PER pruned", "GPU us", "CPU us", "GPU/ESE"
    );
    for (col, row) in sweep {
        let report = RtMobile::builder()
            .corpus(CorpusConfig {
                speakers: 16,
                noise: 0.4,
                ..CorpusConfig::default_scaled()
            })
            .hidden(48)
            .dense_training(18, 8e-3)
            .compression(col, row)
            .partition(4, 4)
            .seed(11)
            .run();
        let a = &report.accuracy;
        let p = &report.performance;
        println!(
            "{:<10} {:>8.1}x {:>9.2}% {:>9.2}% {:>11.1} {:>11.1} {:>9.2}x",
            format!("{col}x{row}"),
            a.achieved_rate,
            a.baseline_per,
            a.pruned_per,
            p.gpu.time_us,
            p.cpu.time_us,
            p.gpu.efficiency_vs_ese,
        );
    }
    println!();
    println!("Expected shape: PER degradation grows and simulated latency falls as the");
    println!("target rate rises; GPU energy efficiency over ESE climbs throughout.");
}
