//! Kernel code generation showcase: print the OpenCL-C kernels the compiler
//! emits for a BSP-pruned layer under the three storage formats.
//!
//! ```text
//! cargo run --release --example codegen_dump
//! ```

use rtm_compiler::codegen::generate;
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_tensor::Matrix;

fn main() {
    // A small BSP-pruned matrix so the emitted source stays readable:
    // 4 stripes of 4 rows; stripe s keeps the columns congruent to s mod 4.
    let w = Matrix::from_fn(16, 16, |r, c| {
        let stripe = r / 4;
        if r != 9 && c % 4 == stripe {
            0.1 + (r * 16 + c) as f32 * 0.01
        } else {
            0.0
        }
    });

    for (title, plan) in [
        (
            "BSPC (reorder + RLE, fp16)",
            ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(4, 4),
        ),
        ("CSR (fp16)", ExecutionPlan::gpu_default(StorageFormat::Csr)),
        (
            "dense (fp16)",
            ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations(),
        ),
    ] {
        let kernel = generate(&w, &plan, "gru_spmv");
        println!("=== {title} ===");
        println!(
            "launch: global {} / local {}",
            kernel.global_work_size, kernel.local_work_size
        );
        println!("{}", kernel.source);
    }
}
