//! Speech recognition end-to-end: train, prune, and *decode* — showing the
//! per-utterance phone transcripts the PER metric scores.
//!
//! ```text
//! cargo run --release --example speech_recognition
//! ```
//!
//! This is the workload the paper's introduction motivates: GRU-based
//! automatic speech recognition on a mobile budget. The example prints a
//! reference phone string next to the dense and the pruned+compiled-f16
//! decodings for a few held-out utterances.

use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::per::{collapse_frames, PerReport};
use rtm_speech::phones;
use rtm_speech::task::SpeechTask;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};

fn spell(seq: &[usize]) -> String {
    seq.iter()
        .map(|&p| phones::label(p))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let cfg = CorpusConfig {
        speakers: 24,
        noise: 0.4,
        ..CorpusConfig::default_scaled()
    };
    let task = SpeechTask::new(&cfg, 7);

    println!("Training a 2-layer GRU frame classifier (39 phones)...");
    let mut net = task.new_network(96, 7);
    task.train(&mut net, 25, 8e-3);
    let dense_eval = task.evaluate(&net);
    println!(
        "dense: PER {:.2}%, frame accuracy {:.1}%",
        dense_eval.per_percent(),
        100.0 * dense_eval.frame_accuracy()
    );

    println!("BSP-pruning 4x (4x cols) with ADMM retraining...");
    let pruner = BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 2,
        target: CompressionTarget::new(4.0, 1.0),
        admm: AdmmConfig {
            rho: 2.0,
            admm_iterations: 3,
            epochs_per_iteration: 6,
            finetune_epochs: 25,
            lr: 3e-3,
            clip: Some(rtm_rnn::GradClip::new(5.0)),
        },
    });
    let report = pruner.prune(&mut net, &task.training_data());
    let pruned_eval = task.evaluate(&net);
    println!(
        "pruned: {:.1}x compression, PER {:.2}% ({:+.2} pts)",
        report.achieved_rate,
        pruned_eval.per_percent(),
        pruned_eval.per_percent() - dense_eval.per_percent()
    );

    let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16)
        .expect("partition fits the model");
    let mut f16_eval = PerReport::default();
    for u in task.test_utterances() {
        let preds = compiled.predict(&u.frames);
        f16_eval.add(&preds, &u.labels, &u.phones);
    }
    println!(
        "compiled f16 runtime: PER {:.2}%, model storage {:.1} KiB\n",
        f16_eval.per_percent(),
        compiled.storage_bytes() as f64 / 1024.0
    );

    println!("Sample decodings (held-out speakers):");
    for u in task.test_utterances().into_iter().take(3) {
        println!("  reference : {}", spell(&u.phones));
        println!(
            "  compiled  : {}",
            spell(&collapse_frames(&compiled.predict(&u.frames)))
        );
        println!();
    }
}
