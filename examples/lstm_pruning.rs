//! LSTM extension: the same BSP/ADMM pruning machinery on an LSTM network.
//!
//! ```text
//! cargo run --release --example lstm_pruning
//! ```
//!
//! The paper evaluates GRU, but all of its comparison systems (ESE, C-LSTM,
//! BBS, Wang) are LSTM accelerators; DESIGN.md §6 lists LSTM support as an
//! extension. Because the pruning engine only sees named weight matrices
//! and a train-step ([`rtm_pruning::PrunableNetwork`]), the identical
//! `BspPruner` drives an [`rtm_rnn::LstmNetwork`] with no changes.

use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_rnn::{Adam, GradClip, LstmNetwork};
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::per::PerReport;
use rtm_speech::task::SpeechTask;

fn evaluate(task: &SpeechTask, net: &LstmNetwork) -> PerReport {
    let mut report = PerReport::default();
    for u in task.test_utterances() {
        report.add(&net.predict(&u.frames), &u.labels, &u.phones);
    }
    report
}

fn main() {
    let cfg = CorpusConfig {
        speakers: 16,
        noise: 0.4,
        ..CorpusConfig::default_scaled()
    };
    let task = SpeechTask::new(&cfg, 7);

    println!("Training a 2-layer LSTM frame classifier...");
    let mut net = LstmNetwork::new(&task.network_config(72), 7);
    let mut opt = Adam::new(8e-3);
    let data = task.training_data();
    for _ in 0..20 {
        for (frames, targets) in &data {
            net.train_step(frames, targets, &mut opt, Some(GradClip::new(5.0)));
        }
    }
    let dense = evaluate(&task, &net);
    println!(
        "dense LSTM: PER {:.2}%, frame accuracy {:.1}%, {} prunable params",
        dense.per_percent(),
        100.0 * dense.frame_accuracy(),
        net.total_prunable_params()
    );

    println!("BSP-pruning the LSTM 4x (4x cols) with ADMM retraining...");
    let report = BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 2,
        target: CompressionTarget::new(4.0, 1.0),
        admm: AdmmConfig {
            rho: 2.0,
            admm_iterations: 3,
            epochs_per_iteration: 6,
            finetune_epochs: 25,
            lr: 3e-3,
            clip: Some(GradClip::new(5.0)),
        },
    })
    .prune(&mut net, &data);
    let pruned = evaluate(&task, &net);
    println!(
        "pruned LSTM: {:.1}x compression ({} params kept), PER {:.2}% ({:+.2} pts)",
        report.achieved_rate,
        report.kept_params,
        pruned.per_percent(),
        pruned.per_percent() - dense.per_percent()
    );
    println!();
    println!("The identical BspPruner call drives both GruNetwork and LstmNetwork —");
    println!("the pruning machinery is architecture-agnostic via PrunableNetwork.");
}
