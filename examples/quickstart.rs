//! Quickstart: the whole RTMobile pipeline in one call.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Trains a small GRU on the synthetic speech task, prunes it 10× with BSP
//! (the paper's headline "10× without losing accuracy" point), compiles it
//! to the BSPC runtime, and prices one inference frame of the paper-scale
//! model on the simulated Snapdragon 855.

use rtm_pruning::admm::AdmmConfig;
use rtm_speech::corpus::CorpusConfig;
use rtmobile::RtMobile;

fn main() {
    // Optional CLI seed: `cargo run --release --example quickstart -- 42`.
    // Retraining an aggressively pruned model this small has real seed
    // variance (roughly 15-40 PER points of degradation at 10x across
    // seeds); 7 is a representative median-or-better draw.
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let report = RtMobile::builder()
        .corpus(CorpusConfig {
            speakers: 32,
            noise: 0.4,
            ..CorpusConfig::default_scaled()
        })
        .hidden(96)
        .dense_training(25, 8e-3)
        .compression(10.0, 1.0)
        .partition(8, 1)
        .admm(AdmmConfig {
            rho: 2.0,
            admm_iterations: 3,
            epochs_per_iteration: 6,
            finetune_epochs: 30,
            lr: 3e-3,
            clip: Some(rtm_rnn::GradClip::new(5.0)),
        })
        .seed(seed)
        .run();
    println!("{}", report.render());

    let a = &report.accuracy;
    println!(
        "=> compressed {:.0}x at {:+.2} PER points degradation.",
        a.achieved_rate,
        a.degradation()
    );
    println!("   (The paper's 10x point loses nothing at 9.6M parameters; this demo model is");
    println!("   ~110x smaller, so part of the degradation is pure capacity — see the");
    println!("   capacity-reference row of `cargo run -p rtm-bench --bin table1`.)");
}
